"""Communication-analysis paradigm (paper §2.2, Fig. 2, Listing 1).

filter("MPI_*") → hotspot detection → imbalance analysis → breakdown
analysis → report.  The report carries the key attributes of detected
communication calls: function name, communication info, debug info, and
execution time.
"""

from __future__ import annotations

from typing import Tuple

from repro.dataflow.api import PerFlow
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet
from repro.passes.report import Report


def communication_analysis_paradigm(
    pflow: PerFlow,
    pag: PAG,
    top: int = 10,
    imbalance_threshold: float = 1.2,
) -> Tuple[VertexSet, VertexSet, Report]:
    """Listing 1, as a reusable paradigm.

    Returns ``(V_imb, V_bd, report)``: the imbalanced communication
    vertices, the same set annotated with breakdowns, and the rendered
    report.
    """
    # comm_filter generalizes Listing 1's "MPI_*" glob to Fortran bindings
    # (mpi_waitall_ etc.), which the ZeusMP case study needs.
    V_comm = pflow.comm_filter(pag.V)
    V_hot = pflow.hotspot_detection(V_comm, n=top)
    V_imb = pflow.imbalance_analysis(V_hot, threshold=imbalance_threshold)
    V_bd = pflow.breakdown_analysis(V_imb)
    attrs = ["name", "comm-info", "debug-info", "time", "imbalance", "breakdown"]
    report = pflow.report(V_imb, V_bd, attrs=attrs, title="communication analysis")
    return V_imb, V_bd, report

"""Scalability-analysis paradigm (paper §4.4, Fig. 8, Listing 7).

Two runs at different scales feed a differential-analysis pass (every
vertex annotated with its scaling loss); hotspot detection keeps the
worst scalers, imbalance analysis keeps the unevenly distributed ones;
their union is backtracked through the large run's parallel view to the
root causes of the scaling loss (ScalAna's task, in a PerFlowGraph).

``_user_backtracking`` below is the paper's user-defined pass,
transcribed from Listing 7 lines 5-26 against this library's low-level
API: neighbor acquisition (``v.es``), edge selection (``select``),
attribute access (``v[...]``), and source-vertex acquisition
(``e.src``).  The LoC/API-count claim of §5.3 ("27 lines of code with 7
high-level APIs and 5 low-level APIs") is benchmarked against this
paradigm's source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.dataflow.api import PerFlow
from repro.pag.graph import PAG
from repro.pag.sets import IN_EDGE, EdgeSet, VertexSet
from repro.pag.vertex import Vertex
from repro.passes.report import Report


@dataclass
class ScalabilityResult:
    """Outputs of the scalability paradigm, one field per Fig. 8 edge."""

    V_diff: VertexSet
    V_hot: VertexSet
    V_imb: VertexSet
    V_union: VertexSet
    V_bt: VertexSet
    E_bt: EdgeSet
    #: deepest vertices reached by backtracking — root-cause candidates
    roots: List[Vertex] = field(default_factory=list)
    report: Optional[Report] = None


def _user_backtracking(pflow: PerFlow, V: VertexSet) -> Tuple[VertexSet, EdgeSet]:
    """Listing 7's user-defined backtracking pass, transcribed."""
    V_bt, E_bt, S = [], [], set()  # S for scanned vertices
    for v in V:
        if v.id not in S:
            S.add(v.id)
            in_es = v.es.select(IN_EDGE, of=v)
            while len(in_es) != 0 and v["name"] not in pflow.COLL_COMM:
                if v["type"] == pflow.MPI:
                    e = in_es.select(type=pflow.COMM) or in_es
                elif v["type"] in (pflow.LOOP, pflow.BRANCH):
                    e = in_es.select(type=pflow.CTRL_FLOW) or in_es
                else:
                    e = in_es.select(type=pflow.DATA_FLOW) or in_es
                V_bt.append(v)
                E_bt.append(e[0])
                v = e[0].src
                if v.id in S:
                    break
                S.add(v.id)
                in_es = v.es.select(IN_EDGE, of=v)
            else:
                V_bt.append(v)
                v["backtrack_root"] = True
    return VertexSet(V_bt), EdgeSet(E_bt)


def build_scalability_graph(
    pflow: PerFlow,
    pag_large: PAG,
    top: int = 10,
    imbalance_threshold: float = 1.2,
    max_ranks: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Any = None,
    backend: Optional[str] = None,
):
    """Fig. 8's pipeline as an explicit PerFlowGraph.

    Node names are the result keys (``differential`` … ``backtracking``).
    ``differential`` creates the difference PAG, ``instances``
    materializes the parallel view, and ``backtracking`` annotates
    ``backtrack_root`` on its vertices — all three carry hidden state
    (fresh graphs, the facade's view cache, in-place annotation), so
    they are ``cacheable=False``: never skipped by the result cache and
    always executed in the coordinator process under the multiprocessing
    backend.
    """
    g = pflow.perflowgraph(
        "scalability", jobs=jobs, cache=cache, backend=backend
    )
    V1 = g.input("V1", VertexSet)
    V2 = g.input("V2", VertexSet)
    n_diff = g.add_pass(
        lambda a, b: pflow.differential_analysis(a, b),
        V1,
        V2,
        name="differential",
        signature=((VertexSet, VertexSet), (VertexSet,)),
        cacheable=False,
    )
    n_hot = g.add_pass(
        lambda s: pflow.hotspot_detection(s, n=top),
        n_diff,
        name="hotspot",
        signature=((VertexSet,), (VertexSet,)),
    )
    n_imb = g.add_pass(
        lambda s: pflow.imbalance_analysis(s, threshold=imbalance_threshold),
        n_diff,
        name="imbalance",
        signature=((VertexSet,), (VertexSet,)),
    )
    n_union = g.add_pass(
        lambda a, b: pflow.union(a, b),
        n_hot,
        n_imb,
        name="union",
        signature=((VertexSet, VertexSet), (VertexSet,)),
    )
    n_inst = g.add_pass(
        lambda s: pflow.instances(s, pag_large, max_ranks=max_ranks),
        n_union,
        name="instances",
        signature=((VertexSet,), (VertexSet,)),
        cacheable=False,
    )
    g.add_pass(
        lambda s: _user_backtracking(pflow, s),
        n_inst,
        name="backtracking",
        signature=((VertexSet,), (VertexSet, EdgeSet)),
        cacheable=False,
    )
    return g


def scalability_analysis_paradigm(
    pflow: PerFlow,
    pag_small: PAG,
    pag_large: PAG,
    top: int = 10,
    imbalance_threshold: float = 1.2,
    max_ranks: Optional[int] = None,
    attrs: Tuple[str, ...] = ("name", "time", "debug-info", "cycles"),
    jobs: Optional[int] = None,
    cache: Any = None,
    backend: Optional[str] = None,
) -> ScalabilityResult:
    """Listing 7's paradigm body (Part 2), parameterized.

    ``pag_small``/``pag_large`` are the two runs' PAGs (e.g. 4 vs 64
    ranks in Listing 7, 16 vs 2,048 in case study A).  ``max_ranks``
    caps the materialized parallel view for backtracking (the paper
    plots partial views for the same reason).  ``jobs`` / ``cache`` /
    ``backend`` configure the underlying
    :meth:`~repro.dataflow.graph.PerFlowGraph.run`.
    """
    g = build_scalability_graph(
        pflow,
        pag_large,
        top=top,
        imbalance_threshold=imbalance_threshold,
        max_ranks=max_ranks,
        jobs=jobs,
        cache=cache,
        backend=backend,
    )
    out = g.run(V1=pag_large.vs, V2=pag_small.vs)
    V_diff = out["differential"]
    V_hot = out["hotspot"]
    V_imb = out["imbalance"]
    V_union = out["union"]
    V_bt, E_bt = out["backtracking"]
    roots = [v for v in V_bt if v["backtrack_root"]]
    # Walks that merely stopped AT a collective are weaker evidence than
    # walks that reached actual code; surface the latter first.
    roots.sort(key=lambda v: v["name"] in pflow.COLL_COMM)
    report = pflow.report([V_bt, E_bt], attrs=list(attrs), title="scalability analysis")
    return ScalabilityResult(V_diff, V_hot, V_imb, V_union, V_bt, E_bt, roots, report)

"""MPI profiler paradigm (inspired by mpiP [62]; artifact appendix A.3.1).

Produces the statistical communication profile mpiP prints: one row per
MPI call site with aggregate time, percentage of total application time,
call count, message bytes, and per-rank min/mean/max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.dataflow.api import PerFlow
from repro.dataflow.graph import PerFlowGraph
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet
from repro.passes.filters import comm_filter
from repro.passes.hotspot import hotspot_detection


@dataclass(frozen=True)
class MPIProfileRow:
    """One mpiP-style profile row."""

    name: str
    site: str
    time: float
    app_pct: float
    count: int
    total_bytes: float
    min_rank_time: float
    mean_rank_time: float
    max_rank_time: float


def build_mpi_profiler_graph(
    pflow: PerFlow, total: float, top: int = 20
) -> PerFlowGraph:
    """The mpiP pipeline as an explicit PerFlowGraph.

    Three nodes: ``comm_filter`` keeps communication vertices,
    ``hotspot`` ranks them by aggregate time, and ``profile_rows``
    formats the ranked set into :class:`MPIProfileRow` records.
    Running the pipeline with tracing enabled therefore yields one
    ``node:<name>`` span per stage with ``in_size``/``out_size`` args.
    """
    g = pflow.perflowgraph("mpi-profiler")
    V = g.input("V", VertexSet)
    V_comm = g.add_pass(comm_filter, V, name="comm_filter")
    # The lambdas close over plain parameters only (top, total) — not the
    # PerFlow facade — so the result cache can key them by source +
    # closure values and skip them on warm reruns.
    V_hot = g.add_pass(
        lambda s: hotspot_detection(s, metric="time", n=top),
        V_comm,
        name="hotspot",
        signature=((VertexSet,), (VertexSet,)),
    )
    g.add_pass(
        lambda s: _profile_rows(s, total),
        V_hot,
        name="profile_rows",
        signature=((VertexSet,), ("any",)),
    )
    return g


def mpi_profiler_paradigm(
    pflow: PerFlow,
    pag: PAG,
    top: int = 20,
    jobs: Optional[int] = None,
    cache: Any = None,
    backend: Optional[str] = None,
) -> List[MPIProfileRow]:
    """Statistical MPI profile of a run, hottest sites first.

    ``app_pct`` is the site's share of total aggregate time (the root
    vertex's inclusive time across ranks) — the quantity mpiP reports as
    "% of total time" and that case study A quotes for mpi_allreduce_
    (0.06% at 16 ranks vs 7.93% at 2,048).  ``jobs``, ``cache``, and
    ``backend`` are forwarded to :meth:`PerFlowGraph.run` (parallel
    wavefront execution, the content-addressed result cache, and the
    thread/process pool choice).
    """
    total = float(pag.vertex(0)["time"] or 0.0)
    g = build_mpi_profiler_graph(pflow, total, top=top)
    return g.run(jobs=jobs, cache=cache, backend=backend, V=pag.vs)["profile_rows"]


def _profile_rows(V_hot: VertexSet, total: float) -> List[MPIProfileRow]:
    rows: List[MPIProfileRow] = []
    for v in V_hot:
        t = float(v["time"] or 0.0)
        if t <= 0.0:
            continue
        per_rank = v["time_per_rank"]
        if isinstance(per_rank, np.ndarray) and per_rank.size:
            mn, mean, mx = float(per_rank.min()), float(per_rank.mean()), float(per_rank.max())
        else:
            mn = mean = mx = t
        info = v["comm-info"] or {}
        rows.append(
            MPIProfileRow(
                name=v.name,
                site=str(v["debug-info"]),
                time=t,
                app_pct=100.0 * t / total if total > 0 else 0.0,
                count=int(v["count"] or 0),
                total_bytes=float(info.get("bytes", 0.0)),
                min_rank_time=mn,
                mean_rank_time=mean,
                max_rank_time=mx,
            )
        )
    return rows

"""Critical-path paradigm (inspired by Böhme et al. [19] and Schmitt et
al. [54]; artifact appendix A.3.2).

Builds the parallel view and extracts the longest weighted activity
chain.  The returned path names which code snippets bound the execution
time — the snippet whose reduction actually shortens the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dataflow.api import PerFlow
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet


@dataclass
class CriticalPathResult:
    vertices: VertexSet
    edges: EdgeSet
    weight: float
    #: (name, process, thread, weight contribution) per path hop
    summary: List[tuple]


def critical_path_paradigm(
    pflow: PerFlow,
    pag: PAG,
    max_ranks: Optional[int] = None,
    expand_threads: bool = False,
) -> CriticalPathResult:
    """Critical path of a run, over its parallel view."""
    pv = pflow.parallel_view(pag, max_ranks=max_ranks, expand_threads=expand_threads)
    vertices, edges, weight = pflow.critical_path(pv.vs)
    summary = []
    for v in vertices:
        t = max(0.0, float(v["time"] or 0.0) - float(v["wait"] or 0.0))
        if t > 0:
            summary.append((v.name, v["process"], v["thread"], t))
    return CriticalPathResult(vertices, edges, weight, summary)

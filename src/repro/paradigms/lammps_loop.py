"""The LAMMPS-style PerFlowGraph (paper §5.4, Fig. 11).

hotspot detection → communication filter → imbalance analysis → causal
analysis, with the imbalance→causal stage *repeated until the output
set no longer changes*; the final outputs are identified as the root
causes.  Built on :class:`~repro.dataflow.graph.PerFlowGraph` with a
fixpoint node, exactly the shape Fig. 11 draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.dataflow.api import PerFlow
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet
from repro.passes.report import Report


@dataclass
class LoopCausalResult:
    V_hot: VertexSet
    V_comm: VertexSet
    V_imb: VertexSet
    #: fixpoint of repeated causal analysis — the root causes
    V_causes: VertexSet
    E_paths: EdgeSet
    report: Optional[Report] = None


def loop_causal_paradigm(
    pflow: PerFlow,
    pag: PAG,
    top: int = 40,
    imbalance_threshold: float = 1.2,
    max_ranks: Optional[int] = None,
    max_iters: int = 5,
    jobs: Optional[int] = None,
    cache: Any = None,
    backend: Optional[str] = None,
) -> LoopCausalResult:
    """Fig. 11's PerFlowGraph, executed.

    The causal stage maps the current suspect set onto the parallel
    view, finds common ancestors, and feeds them back in; the fixpoint
    is reached when an iteration adds no new cause vertices.  ``jobs``,
    ``cache``, and ``backend`` are forwarded to :meth:`PerFlowGraph.run`; this graph
    is one chain, so parallel execution changes scheduling overhead
    only, never results.
    """
    state = {"edges": EdgeSet([])}

    def hotspots(V: VertexSet) -> VertexSet:
        return pflow.hotspot_detection(V, n=top)

    def comm(V: VertexSet) -> VertexSet:
        return pflow.comm_filter(V)

    def imbalance(V: VertexSet) -> VertexSet:
        return pflow.imbalance_analysis(V, threshold=imbalance_threshold)

    def causal_step(V: VertexSet) -> VertexSet:
        """One causal-analysis round on the parallel view."""
        if not V:
            return V
        if V[0]["process"] is None:
            inst = pflow.instances(V, pag, max_ranks=max_ranks)
        else:
            inst = V
        causes, paths = pflow.causal_analysis(inst)
        state["edges"] = state["edges"].union(paths)
        merged = inst.union(causes)
        return merged

    g = pflow.perflowgraph("lammps-loop")
    V_in = g.input("V")
    n_hot = g.add_pass(hotspots, V_in, name="hotspot")
    n_comm = g.add_pass(comm, n_hot, name="comm_filter")
    n_imb = g.add_pass(imbalance, n_comm, name="imbalance")
    # causal_step accumulates propagation paths into ``state["edges"]``
    # — hidden output the result cache cannot see — so it must execute
    # on every run, never be satisfied from cache.
    n_fix = g.add_fixpoint(
        causal_step, n_imb, max_iters=max_iters, name="causal", cacheable=False
    )
    outputs = g.run(jobs=jobs, cache=cache, backend=backend, V=pag.vs)

    V_fix: VertexSet = outputs["causal"]
    # Root causes: vertices that entered via causal analysis (annotated
    # with `causes`) or that every propagation path converges on.
    V_causes = VertexSet([v for v in V_fix if v["causes"]]) or V_fix
    report = pflow.report(
        V_causes,
        attrs=["name", "time", "debug-info", "process", "causes"],
        title="loop causal analysis",
    )
    del n_fix  # node handles are positional; kept for graph readability
    return LoopCausalResult(
        V_hot=outputs["hotspot"],
        V_comm=outputs["comm_filter"],
        V_imb=outputs["imbalance"],
        V_causes=V_causes,
        E_paths=state["edges"],
        report=report,
    )

"""The Vite-style branching PerFlowGraph (paper §5.5, Fig. 14).

A comprehensive diagnosis with parallel branches off the same run:

* branch 1 — hotspot detection on the top-down view (Fig. 15a),
* branch 2 — differential analysis against a second run at a different
  thread count (Fig. 15b), isolating the vertices that *degrade* with
  threads,
* branch 3 — causal analysis of the degrading vertices on the parallel
  view (thread flows expanded),
* branch 4 — contention detection around the suspects (Fig. 16).

The union of branch outputs, with contention embeddings, is the
diagnosis: for Vite, ``_M_realloc_insert``/``_M_emplace`` allocator
vertices serializing on the process-wide allocator lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dataflow.api import PerFlow
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet
from repro.passes.report import Report


@dataclass
class BranchingDiagnosis:
    V_hot: VertexSet
    V_diff: VertexSet
    V_causes: VertexSet
    E_causal: EdgeSet
    V_contention: VertexSet
    E_contention: EdgeSet
    report: Optional[Report] = None


def branching_diagnosis_paradigm(
    pflow: PerFlow,
    pag_base: PAG,
    pag_scaled: PAG,
    top: int = 10,
    min_delta_fraction: float = 0.01,
    max_ranks: Optional[int] = None,
) -> BranchingDiagnosis:
    """Fig. 14's PerFlowGraph, executed.

    ``pag_base`` is the small-thread-count run, ``pag_scaled`` the run
    that scales badly (more threads).  Differential analysis finds what
    got *worse* as threads grew; causal analysis and contention
    detection run on the scaled run's thread-expanded parallel view.
    """
    # branch 1: hotspots of the scaled run
    V_hot = pflow.hotspot_detection(pag_scaled.vs, n=top)

    # branch 2: differential — what grew when threads grew
    total = float(pag_scaled.vertex(0)["time"] or 0.0)
    V_diff_all = pflow.differential_analysis(pag_scaled.vs, pag_base.vs)
    V_diff = pflow.hotspot_detection(
        V_diff_all.filter(lambda v: (v["time"] or 0.0) > min_delta_fraction * total),
        n=top,
    )

    # branch 3: causal analysis on the thread-expanded parallel view
    suspects_td = VertexSet([pag_scaled.vertex(v.id) for v in V_diff])
    inst = pflow.instances(
        suspects_td, pag_scaled, max_ranks=max_ranks, expand_threads=True, all_ranks=True
    )
    V_causes, E_causal = pflow.causal_analysis(inst)

    # branch 4: contention detection around suspects + causes
    around = inst.union(V_causes)
    V_cont, E_cont = pflow.contention_detection(around)

    report = pflow.report(
        V_hot,
        V_diff,
        V_causes,
        V_cont,
        attrs=["name", "time", "wait", "debug-info", "process", "thread", "contention_hub"],
        title="branching diagnosis",
    )
    return BranchingDiagnosis(V_hot, V_diff, V_causes, E_causal, V_cont, E_cont, report)

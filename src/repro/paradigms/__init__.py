"""Built-in performance-analysis paradigms (paper §4.4).

A paradigm is a pre-built PerFlowGraph for a complete analysis task:

* :mod:`~repro.paradigms.mpi_profiler` — statistical MPI profile
  (inspired by mpiP), used by the artifact appendix A.3.1.
* :mod:`~repro.paradigms.communication` — the communication-analysis
  task of Fig. 2 / Listing 1.
* :mod:`~repro.paradigms.scalability` — the scalability-analysis
  paradigm of Fig. 8 / Listing 7 (differential + hotspot + imbalance →
  union → backtracking), used by case study A.
* :mod:`~repro.paradigms.critical_path` — critical-path detection, used
  by the artifact appendix A.3.2.
* :mod:`~repro.paradigms.lammps_loop` — Fig. 11's hotspot → comm filter
  → imbalance → repeated causal analysis (case study B).
* :mod:`~repro.paradigms.vite_branching` — Fig. 14's multi-branch
  diagnosis (case study C).
"""

from repro.paradigms.mpi_profiler import MPIProfileRow, mpi_profiler_paradigm
from repro.paradigms.communication import communication_analysis_paradigm
from repro.paradigms.scalability import ScalabilityResult, scalability_analysis_paradigm
from repro.paradigms.critical_path import critical_path_paradigm
from repro.paradigms.lammps_loop import loop_causal_paradigm
from repro.paradigms.vite_branching import branching_diagnosis_paradigm
from repro.paradigms.differential import RegressionReport, differential_paradigm

__all__ = [
    "mpi_profiler_paradigm",
    "MPIProfileRow",
    "communication_analysis_paradigm",
    "scalability_analysis_paradigm",
    "ScalabilityResult",
    "critical_path_paradigm",
    "loop_causal_paradigm",
    "branching_diagnosis_paradigm",
    "differential_paradigm",
    "RegressionReport",
]

"""Performance-regression paradigm (paper §4.3.2-B, Fig. 7).

Compare two executions of the same program — different inputs,
parameters, library versions — and rank what changed.  Fig. 7's point:
the vertex whose *difference* dominates need not be a hotspot in either
run (MPI_Reduce there), so regressions hide from plain profiles; graph
difference surfaces them directly.

The paradigm reports regressions (got slower) and improvements (got
faster) separately, each with its share of the total delta, plus the
imbalance annotation when the regression concentrates on few ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dataflow.api import PerFlow
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet
from repro.passes.report import Report


@dataclass
class RegressionReport:
    """Ranked performance changes between two runs."""

    total_delta: float
    #: vertices that got slower, worst first (annotated: `delta_share`)
    regressions: VertexSet = field(default_factory=lambda: VertexSet([]))
    #: vertices that got faster, best first
    improvements: VertexSet = field(default_factory=lambda: VertexSet([]))
    report: Optional[Report] = None


def differential_paradigm(
    pflow: PerFlow,
    pag_new: PAG,
    pag_old: PAG,
    top: int = 10,
    min_share: float = 0.01,
) -> RegressionReport:
    """Rank regressions/improvements of ``pag_new`` relative to ``pag_old``.

    Only *leaf-exclusive* changes are ranked (``excl_time`` deltas):
    inclusive deltas would list every ancestor of one regressed leaf
    (exactly the main/loop/function noise a human filters out of Fig. 7
    mentally).  ``min_share`` drops changes below that fraction of the
    total absolute delta.
    """
    V_diff = pflow.differential_analysis(pag_new.vs, pag_old.vs)
    deltas: List = []
    for v in V_diff:
        d = v["excl_time"]
        if d is None:
            continue
        deltas.append((float(d), v))
    total_abs = sum(abs(d) for d, _v in deltas) or 1.0
    reg, imp = [], []
    for d, v in deltas:
        share = abs(d) / total_abs
        if share < min_share:
            continue
        v["delta_share"] = share
        (reg if d > 0 else imp).append((d, v))
    reg.sort(key=lambda item: -item[0])
    imp.sort(key=lambda item: item[0])
    regressions = VertexSet([v for _d, v in reg[:top]])
    improvements = VertexSet([v for _d, v in imp[:top]])
    report = pflow.report(
        regressions,
        improvements,
        attrs=["name", "excl_time", "debug-info", "delta_share"],
        title="performance differential",
    )
    return RegressionReport(
        total_delta=sum(d for d, _v in deltas),
        regressions=regressions,
        improvements=improvements,
        report=report,
    )

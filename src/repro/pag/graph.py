"""The Program Abstraction Graph container.

A :class:`PAG` is a directed multigraph with labeled, attributed vertices
and edges (paper §3.1).  It is the *environment* of every pass in a
PerFlowGraph: passes receive sets of its vertices/edges, run graph
algorithms on it, and emit new sets (§2.1).

The container uses adjacency indices (per-vertex in/out edge-id lists)
so that the traversal-heavy passes (backtracking, LCA, subgraph
matching) are O(degree) per step, and keeps vertices/edges in dense
lists so Table-2-scale graphs (10M+ vertices for LAMMPS's parallel
view at 128 ranks) stay compact.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.pag.edge import CommKind, Edge, EdgeLabel
from repro.pag.vertex import CallKind, Vertex, VertexLabel

VertexRef = Union[int, Vertex]


def _vid(ref: VertexRef) -> int:
    return ref.id if isinstance(ref, Vertex) else ref


class PAG:
    """A Program Abstraction Graph.

    Parameters
    ----------
    name:
        Human-readable identifier, usually the program name plus the view
        (e.g. ``"zeusmp/top-down"``).
    metadata:
        Free-form run information: ``view`` ("top-down" | "parallel"),
        ``nprocs``, ``nthreads``, ``program``, run parameters, …
    """

    def __init__(self, name: str = "pag", metadata: Optional[Dict[str, Any]] = None):
        self.name = name
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self._vertices: List[Vertex] = []
        self._edges: List[Edge] = []
        self._out: List[List[int]] = []  # vertex id -> outgoing edge ids
        self._in: List[List[int]] = []  # vertex id -> incoming edge ids

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        label: VertexLabel,
        name: str,
        call_kind: Optional[CallKind] = None,
        properties: Optional[Dict[str, Any]] = None,
    ) -> Vertex:
        """Create a vertex and return it. Ids are dense and stable."""
        v = Vertex(len(self._vertices), label, name, call_kind, properties, pag=self)
        self._vertices.append(v)
        self._out.append([])
        self._in.append([])
        return v

    def add_edge(
        self,
        src: VertexRef,
        dst: VertexRef,
        label: EdgeLabel,
        comm_kind: Optional[CommKind] = None,
        properties: Optional[Dict[str, Any]] = None,
    ) -> Edge:
        """Create a directed edge ``src -> dst`` and return it."""
        sid, did = _vid(src), _vid(dst)
        for vid in (sid, did):
            if not (0 <= vid < len(self._vertices)):
                raise KeyError(f"no vertex with id {vid}")
        e = Edge(len(self._edges), sid, did, label, comm_kind, properties, pag=self)
        self._edges.append(e)
        self._out[sid].append(e.id)
        self._in[did].append(e.id)
        return e

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def vertex(self, vid: int) -> Vertex:
        return self._vertices[vid]

    def edge(self, eid: int) -> Edge:
        return self._edges[eid]

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._vertices)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    @property
    def vs(self):
        """All vertices as a :class:`~repro.pag.sets.VertexSet` (paper's ``pag.vs``)."""
        from repro.pag.sets import VertexSet

        return VertexSet(self._vertices)

    @property
    def V(self):
        """Alias of :attr:`vs` (Listing 1 uses ``pag.V``)."""
        return self.vs

    @property
    def es_all(self):
        """All edges as an :class:`~repro.pag.sets.EdgeSet`."""
        from repro.pag.sets import EdgeSet

        return EdgeSet(self._edges)

    @property
    def E(self):
        """Alias of :attr:`es_all`."""
        return self.es_all

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_edges(self, v: VertexRef):
        from repro.pag.sets import EdgeSet

        return EdgeSet([self._edges[eid] for eid in self._out[_vid(v)]])

    def in_edges(self, v: VertexRef):
        from repro.pag.sets import EdgeSet

        return EdgeSet([self._edges[eid] for eid in self._in[_vid(v)]])

    def incident(self, v: VertexRef):
        from repro.pag.sets import EdgeSet

        vid = _vid(v)
        return EdgeSet(
            [self._edges[eid] for eid in self._in[vid]]
            + [self._edges[eid] for eid in self._out[vid]]
        )

    def successors(self, v: VertexRef) -> List[Vertex]:
        return [self._vertices[self._edges[eid].dst_id] for eid in self._out[_vid(v)]]

    def predecessors(self, v: VertexRef) -> List[Vertex]:
        return [self._vertices[self._edges[eid].src_id] for eid in self._in[_vid(v)]]

    def neighbors(self, v: VertexRef) -> List[Vertex]:
        seen: Dict[int, None] = {}
        for u in self.predecessors(v):
            seen.setdefault(u.id)
        for u in self.successors(v):
            seen.setdefault(u.id)
        return [self._vertices[vid] for vid in seen]

    def out_degree(self, v: VertexRef) -> int:
        return len(self._out[_vid(v)])

    def in_degree(self, v: VertexRef) -> int:
        return len(self._in[_vid(v)])

    def degree(self, v: VertexRef) -> int:
        vid = _vid(v)
        return len(self._out[vid]) + len(self._in[vid])

    # ------------------------------------------------------------------
    # whole-graph operations
    # ------------------------------------------------------------------
    def copy(self) -> "PAG":
        """Deep structural copy (properties shallow-copied per element)."""
        g = PAG(self.name, dict(self.metadata))
        for v in self._vertices:
            g.add_vertex(v.label, v.name, v.call_kind, dict(v.properties))
        for e in self._edges:
            g.add_edge(e.src_id, e.dst_id, e.label, e.comm_kind, dict(e.properties))
        return g

    def subgraph(self, vertex_ids: Iterable[int]) -> Tuple["PAG", Dict[int, int]]:
        """Induced subgraph on ``vertex_ids``.

        Returns the new PAG and a mapping old-id -> new-id.  Edges are kept
        iff both endpoints are in the vertex set.
        """
        keep = sorted(set(vertex_ids))
        g = PAG(f"{self.name}/sub", dict(self.metadata))
        remap: Dict[int, int] = {}
        for old in keep:
            v = self._vertices[old]
            nv = g.add_vertex(v.label, v.name, v.call_kind, dict(v.properties))
            remap[old] = nv.id
        for e in self._edges:
            if e.src_id in remap and e.dst_id in remap:
                g.add_edge(remap[e.src_id], remap[e.dst_id], e.label, e.comm_kind, dict(e.properties))
        return g, remap

    def find_vertices(self, **criteria: Any) -> List[Vertex]:
        """Linear scan for vertices matching all criteria.

        Criteria may be ``label=``, ``call_kind=``, ``name=`` (exact), or any
        property key.
        """
        out = []
        for v in self._vertices:
            ok = True
            for key, want in criteria.items():
                if key == "label":
                    got: Any = v.label
                elif key == "call_kind":
                    got = v.call_kind
                elif key == "name":
                    got = v.name
                else:
                    got = v.properties.get(key)
                if got != want:
                    ok = False
                    break
            if ok:
                out.append(v)
        return out

    def __repr__(self) -> str:
        return f"PAG({self.name!r}, |V|={self.num_vertices}, |E|={self.num_edges})"

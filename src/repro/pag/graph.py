"""The Program Abstraction Graph container.

A :class:`PAG` is a directed multigraph with labeled, attributed vertices
and edges (paper §3.1).  It is the *environment* of every pass in a
PerFlowGraph: passes receive sets of its vertices/edges, run graph
algorithms on it, and emit new sets (§2.1).

Storage is struct-of-arrays: vertex labels/call-kinds and edge
endpoints/labels live in dense typed ``array`` buffers, names are
interned once in a shared :class:`~repro.pag.columns.StringTable`, and
properties live in typed columns (:mod:`repro.pag.columns`) with a
spill column for odd-typed values.  :class:`~repro.pag.vertex.Vertex`
and :class:`~repro.pag.edge.Edge` are flyweight handles over this
storage, so Table-2-scale graphs (10M+ vertices for LAMMPS's parallel
view at 128 ranks) cost a few dozen bytes per element instead of a full
Python object + dict.

Adjacency indices (per-vertex in/out edge-id lists) are built lazily on
first traversal access, so set-algebra pipelines that never walk edges
(hotspot, imbalance) skip that cost entirely; once built they are kept
incrementally up to date.
"""

from __future__ import annotations

import itertools
from array import array
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.pag.columns import ColumnStore, StringTable
from repro.pag.edge import (
    COMMKIND_CODE,
    ELABEL_CODE,
    ELABELS,
    CommKind,
    Edge,
    EdgeLabel,
)
from repro.pag.vertex import (
    CALLKIND_CODE,
    CALLKINDS,
    NO_KIND,
    VLABEL_CODE,
    VLABELS,
    CallKind,
    Vertex,
    VertexLabel,
)

VertexRef = Union[int, Vertex]

#: Monotonic identity tokens — unlike ``id(pag)``, never reused after a
#: graph is garbage-collected.  Token 0 is reserved for detached elements.
_TOKENS = itertools.count(1)


def _vid(ref: VertexRef) -> int:
    return ref.id if isinstance(ref, Vertex) else ref


class PAG:
    """A Program Abstraction Graph.

    Parameters
    ----------
    name:
        Human-readable identifier, usually the program name plus the view
        (e.g. ``"zeusmp/top-down"``).
    metadata:
        Free-form run information: ``view`` ("top-down" | "parallel"),
        ``nprocs``, ``nthreads``, ``program``, run parameters, …
    """

    def __init__(self, name: str = "pag", metadata: Optional[Dict[str, Any]] = None):
        self.name = name
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self.token = next(_TOKENS)
        self.strings = StringTable()
        # structural vertex columns
        self._v_label = array("b")
        self._v_kind = array("b")  # CallKind code, NO_KIND if none
        self._v_name = array("q")  # interned string id
        # structural edge columns
        self._e_src = array("q")
        self._e_dst = array("q")
        self._e_label = array("b")
        self._e_kind = array("b")  # CommKind code, NO_KIND if none
        # property columns
        self._vprops = ColumnStore(self.strings)
        self._eprops = ColumnStore(self.strings)
        # lazy adjacency: (out, in) per-vertex edge-id lists
        self._adj: Optional[Tuple[List[List[int]], List[List[int]]]] = None
        # out-of-core support: when loaded with load_pag(..., mmap=True)
        # the structural arrays above are read-only numpy views into an
        # mmap-ed file and this holds the keep-alive SegmentBacking;
        # _thaw_structure() promotes them to heap before any structural
        # mutation (property columns promote themselves per column)
        self._backing: Optional[Any] = None
        # fingerprint support: structural mutations not visible through
        # element counts or ColumnStore versions (vertex renames) bump
        # this counter; the cached content digest is keyed on all of them
        self._struct_version = 0
        self._fp_cache: Optional[Tuple[Tuple[int, ...], str]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    _STRUCT_ARRAYS = (
        ("_v_label", "b"),
        ("_v_kind", "b"),
        ("_v_name", "q"),
        ("_e_src", "q"),
        ("_e_dst", "q"),
        ("_e_label", "b"),
        ("_e_kind", "b"),
    )

    def _thaw_structure(self) -> None:
        """Promote mmap-backed structural arrays to heap before mutation.

        No-op for ordinary heap-owned graphs.  The backing file is never
        written through; property columns have their own per-column
        copy-on-write (:meth:`~repro.pag.columns._TypedColumn._materialize`).
        """
        if not isinstance(self._v_label, np.ndarray):
            return
        for attr, typecode in self._STRUCT_ARRAYS:
            heap = array(typecode)
            heap.frombytes(np.ascontiguousarray(getattr(self, attr)).tobytes())
            setattr(self, attr, heap)

    def add_vertex(
        self,
        label: VertexLabel,
        name: str,
        call_kind: Optional[CallKind] = None,
        properties: Optional[Dict[str, Any]] = None,
    ) -> Vertex:
        """Create a vertex and return it. Ids are dense and stable."""
        if label is not VertexLabel.CALL and call_kind is not None:
            raise ValueError("call_kind is only meaningful for CALL vertices")
        self._thaw_structure()
        vid = len(self._v_label)
        self._v_label.append(VLABEL_CODE[label])
        self._v_kind.append(NO_KIND if call_kind is None else CALLKIND_CODE[call_kind])
        self._v_name.append(self.strings.intern(name))
        self._vprops.add_rows(1)
        if properties:
            vset = self._vprops.set
            for key, value in properties.items():
                vset(vid, key, value)
        if self._adj is not None:
            self._adj[0].append([])
            self._adj[1].append([])
        return Vertex._attached(self, vid)

    def add_edge(
        self,
        src: VertexRef,
        dst: VertexRef,
        label: EdgeLabel,
        comm_kind: Optional[CommKind] = None,
        properties: Optional[Dict[str, Any]] = None,
    ) -> Edge:
        """Create a directed edge ``src -> dst`` and return it."""
        if label is not EdgeLabel.INTER_PROCESS and comm_kind is not None:
            raise ValueError("comm_kind is only meaningful for INTER_PROCESS edges")
        self._thaw_structure()
        sid, did = _vid(src), _vid(dst)
        nv = len(self._v_label)
        for vid in (sid, did):
            if not (0 <= vid < nv):
                raise KeyError(f"no vertex with id {vid}")
        eid = len(self._e_src)
        self._e_src.append(sid)
        self._e_dst.append(did)
        self._e_label.append(ELABEL_CODE[label])
        self._e_kind.append(NO_KIND if comm_kind is None else COMMKIND_CODE[comm_kind])
        self._eprops.add_rows(1)
        if properties:
            eset = self._eprops.set
            for key, value in properties.items():
                eset(eid, key, value)
        if self._adj is not None:
            self._adj[0][sid].append(eid)
            self._adj[1][did].append(eid)
        return Edge._attached(self, eid)

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def vertex(self, vid: int) -> Vertex:
        n = len(self._v_label)
        if vid < 0:
            vid += n
        if not (0 <= vid < n):
            raise IndexError("vertex id out of range")
        return Vertex._attached(self, vid)

    def edge(self, eid: int) -> Edge:
        n = len(self._e_src)
        if eid < 0:
            eid += n
        if not (0 <= eid < n):
            raise IndexError("edge id out of range")
        return Edge._attached(self, eid)

    @property
    def num_vertices(self) -> int:
        return len(self._v_label)

    @property
    def num_edges(self) -> int:
        return len(self._e_src)

    def __len__(self) -> int:
        return len(self._v_label)

    def vertices(self) -> Iterator[Vertex]:
        attached = Vertex._attached
        for vid in range(len(self._v_label)):
            yield attached(self, vid)

    def edges(self) -> Iterator[Edge]:
        attached = Edge._attached
        for eid in range(len(self._e_src)):
            yield attached(self, eid)

    @property
    def vs(self):
        """All vertices as a :class:`~repro.pag.sets.VertexSet` (paper's ``pag.vs``)."""
        from repro.pag.sets import VertexSet

        return VertexSet._from_ids(self, np.arange(len(self._v_label), dtype=np.int64))

    @property
    def V(self):
        """Alias of :attr:`vs` (Listing 1 uses ``pag.V``)."""
        return self.vs

    @property
    def es_all(self):
        """All edges as an :class:`~repro.pag.sets.EdgeSet`."""
        from repro.pag.sets import EdgeSet

        return EdgeSet._from_ids(self, np.arange(len(self._e_src), dtype=np.int64))

    @property
    def E(self):
        """Alias of :attr:`es_all`."""
        return self.es_all

    # ------------------------------------------------------------------
    # adjacency (built lazily, kept incrementally once built)
    # ------------------------------------------------------------------
    def _ensure_adj(self) -> Tuple[List[List[int]], List[List[int]]]:
        if self._adj is None:
            out: List[List[int]] = [[] for _ in range(len(self._v_label))]
            inn: List[List[int]] = [[] for _ in range(len(self._v_label))]
            e_src, e_dst = self._e_src, self._e_dst
            for eid in range(len(e_src)):
                out[e_src[eid]].append(eid)
                inn[e_dst[eid]].append(eid)
            self._adj = (out, inn)
        return self._adj

    def out_edges(self, v: VertexRef):
        from repro.pag.sets import EdgeSet

        return EdgeSet._from_ids(
            self, np.asarray(self._ensure_adj()[0][_vid(v)], dtype=np.int64)
        )

    def in_edges(self, v: VertexRef):
        from repro.pag.sets import EdgeSet

        return EdgeSet._from_ids(
            self, np.asarray(self._ensure_adj()[1][_vid(v)], dtype=np.int64)
        )

    def incident(self, v: VertexRef):
        from repro.pag.sets import EdgeSet

        vid = _vid(v)
        out, inn = self._ensure_adj()
        return EdgeSet._from_ids(
            self, np.asarray(inn[vid] + out[vid], dtype=np.int64)
        )

    def successors(self, v: VertexRef) -> List[Vertex]:
        out = self._ensure_adj()[0][_vid(v)]
        e_dst = self._e_dst
        return [Vertex._attached(self, e_dst[eid]) for eid in out]

    def predecessors(self, v: VertexRef) -> List[Vertex]:
        inn = self._ensure_adj()[1][_vid(v)]
        e_src = self._e_src
        return [Vertex._attached(self, e_src[eid]) for eid in inn]

    def neighbors(self, v: VertexRef) -> List[Vertex]:
        seen: Dict[int, None] = {}
        for u in self.predecessors(v):
            seen.setdefault(u.id)
        for u in self.successors(v):
            seen.setdefault(u.id)
        return [Vertex._attached(self, vid) for vid in seen]

    def out_degree(self, v: VertexRef) -> int:
        return len(self._ensure_adj()[0][_vid(v)])

    def in_degree(self, v: VertexRef) -> int:
        return len(self._ensure_adj()[1][_vid(v)])

    def degree(self, v: VertexRef) -> int:
        vid = _vid(v)
        out, inn = self._ensure_adj()
        return len(out[vid]) + len(inn[vid])

    # ------------------------------------------------------------------
    # whole-graph operations
    # ------------------------------------------------------------------
    def copy(self) -> "PAG":
        """Deep structural copy (properties shallow-copied per element).

        The string table is shared with the original — it is append-only,
        so both graphs can keep interning without affecting each other's
        existing ids.
        """
        g = PAG(self.name, dict(self.metadata))
        g.strings = self.strings
        # frombytes works on heap arrays and mmap-backed numpy views
        # alike, so a copy is always heap-owned
        for attr, typecode in self._STRUCT_ARRAYS:
            heap = array(typecode)
            heap.frombytes(np.ascontiguousarray(getattr(self, attr)).tobytes())
            setattr(g, attr, heap)
        g._vprops = self._vprops.copy()
        g._eprops = self._eprops.copy()
        return g

    def subgraph(self, vertex_ids: Iterable[int]) -> Tuple["PAG", Dict[int, int]]:
        """Induced subgraph on ``vertex_ids``.

        Returns the new PAG and a mapping old-id -> new-id.  Edges are kept
        iff both endpoints are in the vertex set.
        """
        keep = sorted(set(int(v) for v in vertex_ids))
        g = PAG(f"{self.name}/sub", dict(self.metadata))
        g.strings = self.strings
        g._v_label = array("b", (self._v_label[i] for i in keep))
        g._v_kind = array("b", (self._v_kind[i] for i in keep))
        g._v_name = array("q", (self._v_name[i] for i in keep))
        g._vprops = self._vprops.gather(keep)
        remap = {old: new for new, old in enumerate(keep)}
        e_src, e_dst = self._e_src, self._e_dst
        kept_eids = [
            eid
            for eid in range(len(e_src))
            if e_src[eid] in remap and e_dst[eid] in remap
        ]
        g._e_src = array("q", (remap[e_src[eid]] for eid in kept_eids))
        g._e_dst = array("q", (remap[e_dst[eid]] for eid in kept_eids))
        g._e_label = array("b", (self._e_label[eid] for eid in kept_eids))
        g._e_kind = array("b", (self._e_kind[eid] for eid in kept_eids))
        g._eprops = self._eprops.gather(kept_eids)
        return g, remap

    def find_vertices(self, **criteria: Any) -> List[Vertex]:
        """Linear scan for vertices matching all criteria.

        Criteria may be ``label=``, ``call_kind=``, ``name=`` (exact), or any
        property key.
        """
        out = []
        vprops = self._vprops
        for vid in range(len(self._v_label)):
            ok = True
            for key, want in criteria.items():
                if key == "label":
                    got: Any = VLABELS[self._v_label[vid]]
                elif key == "call_kind":
                    code = self._v_kind[vid]
                    got = None if code == NO_KIND else CALLKINDS[code]
                elif key == "name":
                    got = self.strings.value(self._v_name[vid])
                else:
                    got = vprops.get(vid, key)
                if got != want:
                    ok = False
                    break
            if ok:
                out.append(Vertex._attached(self, vid))
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Deterministic content fingerprint of this graph (hex string).

        Equal fingerprints mean equal content: structure, labels/kinds,
        names, property columns, graph name, and metadata — independent
        of string intern order, column layout, or identity ``token``.
        Floats are canonicalized to 9 decimals, matching serialization,
        so the fingerprint survives a ``save_pag``/``load_pag``
        round-trip (with ``include_per_rank=True`` for per-rank
        vectors).  It is the input key of the pass-result cache
        (:mod:`repro.cache`).

        The expensive content digest is cached and recomputed only
        after a mutation (tracked via element counts, the property
        stores' version counters, and vertex renames); the metadata
        dict is untracked, so its (cheap) digest is refreshed on every
        call.
        """
        from repro.cache.fingerprint import (
            combine_digests,
            content_digest,
            metadata_digest,
        )

        key = (
            len(self._v_label),
            len(self._e_src),
            self._struct_version,
            self._vprops.version,
            self._eprops.version,
        )
        if self._fp_cache is None or self._fp_cache[0] != key:
            self._fp_cache = (key, content_digest(self))
        return combine_digests(self._fp_cache[1], metadata_digest(self.metadata))

    def memory_stats(self) -> Dict[str, Any]:
        """Per-column memory footprint in bytes (``repro pag stats``)."""
        structural = {
            "v_label": len(self._v_label),
            "v_kind": len(self._v_kind),
            "v_name": 8 * len(self._v_name),
            "e_src": 8 * len(self._e_src),
            "e_dst": 8 * len(self._e_dst),
            "e_label": len(self._e_label),
            "e_kind": len(self._e_kind),
        }
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "structural": structural,
            "strings": self.strings.nbytes,
            "vertex_columns": self._vprops.memory_stats(),
            "edge_columns": self._eprops.memory_stats(),
        }

    def __repr__(self) -> str:
        return f"PAG({self.name!r}, |V|={self.num_vertices}, |E|={self.num_edges})"

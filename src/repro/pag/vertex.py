"""PAG vertices: labels, call kinds, and the attributed vertex type.

Paper §3.1: each vertex represents a code snippet or control structure.
Vertex *labels* give the structural type (function, call, loop, branch,
instruction); call vertices are further divided into user-defined,
communication, external, recursive, and indirect calls.  Vertex
*properties* are performance data — execution time, PMU counters,
communication data, call counts, iteration counts — attached during
performance-data embedding (§3.3).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterator, Optional


class VertexLabel(enum.Enum):
    """Structural type of a PAG vertex (paper §3.1, "labels")."""

    FUNCTION = "function"
    CALL = "call"
    LOOP = "loop"
    BRANCH = "branch"
    INSTRUCTION = "instruction"
    #: Synthetic roots used by the parallel view to anchor per-process and
    #: per-thread flows.  They carry no cost themselves.
    PROCESS = "process"
    THREAD = "thread"


class CallKind(enum.Enum):
    """Refinement of :attr:`VertexLabel.CALL` (paper §3.1)."""

    USER = "user"
    #: MPI / communication library call.
    COMM = "comm"
    #: Call into an external library whose body is not analyzed.
    EXTERNAL = "external"
    RECURSIVE = "recursive"
    #: Call through a pointer; target resolvable only at runtime (§3.2).
    INDIRECT = "indirect"
    #: Threading-library call (pthread_create/join, lock operations).
    THREAD = "thread"


#: Property keys with conventional meaning across the pass library.
TIME = "time"
CYCLES = "cycles"
INSTRUCTIONS = "instructions"
L1_MISSES = "l1_misses"
L2_MISSES = "l2_misses"
CALL_COUNT = "count"
ITER_COUNT = "iterations"
COMM_INFO = "comm-info"
DEBUG_INFO = "debug-info"
NAME = "name"

#: Vector-valued properties (one entry per process/thread) used by the
#: imbalance and breakdown passes on the top-down view.
TIME_PER_RANK = "time_per_rank"


class Vertex:
    """An attributed PAG vertex.

    Properties are accessed dict-style (``v["time"]``), mirroring the
    paper's listings (e.g. Listing 4 ``v[metric] = v1[metric] - v2[metric]``).
    Structural fields (``id``, ``label``, ``name``) are plain attributes.

    A vertex belongs to exactly one :class:`~repro.pag.graph.PAG`; its
    ``id`` is the index assigned by that graph.
    """

    __slots__ = ("id", "label", "name", "call_kind", "properties", "_pag")

    def __init__(
        self,
        vid: int,
        label: VertexLabel,
        name: str,
        call_kind: Optional[CallKind] = None,
        properties: Optional[Dict[str, Any]] = None,
        pag: Any = None,
    ) -> None:
        if label is not VertexLabel.CALL and call_kind is not None:
            raise ValueError("call_kind is only meaningful for CALL vertices")
        self.id = vid
        self.label = label
        self.name = name
        self.call_kind = call_kind
        self.properties: Dict[str, Any] = dict(properties or {})
        self._pag = pag

    # -- property access (paper's ``v[...]`` idiom) ----------------------
    def __getitem__(self, key: str) -> Any:
        if key == NAME:
            return self.name
        if key == "type":
            # Listing 7 compares ``v[type]`` against pflow.MPI / pflow.LOOP /
            # pflow.BRANCH; communication calls report "mpi", every other
            # vertex its structural label.
            return "mpi" if self.is_comm() else self.label.value
        return self.properties.get(key)

    def __setitem__(self, key: str, value: Any) -> None:
        if key == NAME:
            self.name = value
        else:
            self.properties[key] = value

    def __contains__(self, key: str) -> bool:
        return key == NAME or key in self.properties

    @property
    def metrics(self) -> Iterator[str]:
        """Names of numeric properties, used by the differential pass."""
        for key, value in self.properties.items():
            if isinstance(value, (int, float)):
                yield key

    # -- graph navigation -------------------------------------------------
    @property
    def pag(self):
        """The owning :class:`~repro.pag.graph.PAG` (``None`` if detached)."""
        return self._pag

    @property
    def es(self):
        """All edges incident to this vertex, as an :class:`EdgeSet`.

        Mirrors the paper's ``v.es`` (Listing 7 line 13).  Use
        ``.select(...)`` on the result to restrict by direction or label.
        """
        if self._pag is None:
            from repro.pag.sets import EdgeSet

            return EdgeSet([])
        return self._pag.incident(self.id)

    def in_edges(self):
        if self._pag is None:
            from repro.pag.sets import EdgeSet

            return EdgeSet([])
        return self._pag.in_edges(self.id)

    def out_edges(self):
        if self._pag is None:
            from repro.pag.sets import EdgeSet

            return EdgeSet([])
        return self._pag.out_edges(self.id)

    # -- misc --------------------------------------------------------------
    def is_comm(self) -> bool:
        """True for communication (MPI) call vertices."""
        return self.label is VertexLabel.CALL and self.call_kind is CallKind.COMM

    def __repr__(self) -> str:
        kind = f"/{self.call_kind.value}" if self.call_kind else ""
        return f"Vertex({self.id}, {self.label.value}{kind}, {self.name!r})"

    def __hash__(self) -> int:
        return hash((id(self._pag), self.id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vertex):
            return NotImplemented
        return self._pag is other._pag and self.id == other.id

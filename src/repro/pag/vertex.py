"""PAG vertices: labels, call kinds, and the attributed vertex type.

Paper §3.1: each vertex represents a code snippet or control structure.
Vertex *labels* give the structural type (function, call, loop, branch,
instruction); call vertices are further divided into user-defined,
communication, external, recursive, and indirect calls.  Vertex
*properties* are performance data — execution time, PMU counters,
communication data, call counts, iteration counts — attached during
performance-data embedding (§3.3).

Storage note: an *attached* vertex is a flyweight handle — two machine
words (owning PAG + row id) — whose attribute and ``v[...]`` access
reads the PAG's columnar store (:mod:`repro.pag.columns`).  A vertex
constructed directly (``Vertex(0, label, name, ...)``), as the dataflow
pattern helpers do, is *detached*: it carries its own label/name/props
until (never) adopted by a graph.  Handles are cheap to mint and
compare equal by (graph, id), so passes can freely re-create them.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterator, MutableMapping, Optional


class VertexLabel(enum.Enum):
    """Structural type of a PAG vertex (paper §3.1, "labels")."""

    FUNCTION = "function"
    CALL = "call"
    LOOP = "loop"
    BRANCH = "branch"
    INSTRUCTION = "instruction"
    #: Synthetic roots used by the parallel view to anchor per-process and
    #: per-thread flows.  They carry no cost themselves.
    PROCESS = "process"
    THREAD = "thread"


class CallKind(enum.Enum):
    """Refinement of :attr:`VertexLabel.CALL` (paper §3.1)."""

    USER = "user"
    #: MPI / communication library call.
    COMM = "comm"
    #: Call into an external library whose body is not analyzed.
    EXTERNAL = "external"
    RECURSIVE = "recursive"
    #: Call through a pointer; target resolvable only at runtime (§3.2).
    INDIRECT = "indirect"
    #: Threading-library call (pthread_create/join, lock operations).
    THREAD = "thread"


#: Dense code tables for the columnar store (code = index).
VLABELS = tuple(VertexLabel)
VLABEL_CODE = {label: code for code, label in enumerate(VLABELS)}
CALLKINDS = tuple(CallKind)
CALLKIND_CODE = {kind: code for code, kind in enumerate(CALLKINDS)}
#: Code meaning "no call kind".
NO_KIND = -1


#: Property keys with conventional meaning across the pass library.
TIME = "time"
CYCLES = "cycles"
INSTRUCTIONS = "instructions"
L1_MISSES = "l1_misses"
L2_MISSES = "l2_misses"
CALL_COUNT = "count"
ITER_COUNT = "iterations"
COMM_INFO = "comm-info"
DEBUG_INFO = "debug-info"
NAME = "name"

#: Vector-valued properties (one entry per process/thread) used by the
#: imbalance and breakdown passes on the top-down view.
TIME_PER_RANK = "time_per_rank"


class PropsView(MutableMapping):
    """Dict-compatible live view of one row of a :class:`ColumnStore`.

    Supports the full ``MutableMapping`` protocol (``.get``, ``.pop``,
    ``.items``, ``dict(view)``, ``==`` against plain dicts), writing
    through to the columns.
    """

    __slots__ = ("_store", "_row")

    def __init__(self, store, row: int) -> None:
        self._store = store
        self._row = row

    def __getitem__(self, key: str) -> Any:
        if not self._store.has(self._row, key):
            raise KeyError(key)
        return self._store.get(self._row, key)

    def __setitem__(self, key: str, value: Any) -> None:
        self._store.set(self._row, key, value)

    def __delitem__(self, key: str) -> None:
        self._store.delete(self._row, key)

    def __iter__(self) -> Iterator[str]:
        return self._store.keys_at(self._row)

    def __len__(self) -> int:
        return sum(1 for _ in self._store.keys_at(self._row))

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self._store.has(self._row, key)

    def get(self, key: str, default: Any = None) -> Any:
        if self._store.has(self._row, key):
            return self._store.get(self._row, key)
        return default

    def __repr__(self) -> str:
        return repr(dict(self))


class _DetachedData:
    """Own storage of a vertex created outside any PAG."""

    __slots__ = ("label", "name", "call_kind", "properties")

    def __init__(self, label, name, call_kind, properties) -> None:
        self.label = label
        self.name = name
        self.call_kind = call_kind
        self.properties = properties


class Vertex:
    """An attributed PAG vertex.

    Properties are accessed dict-style (``v["time"]``), mirroring the
    paper's listings (e.g. Listing 4 ``v[metric] = v1[metric] - v2[metric]``).
    Structural fields (``id``, ``label``, ``name``) are plain attributes.

    A vertex belongs to exactly one :class:`~repro.pag.graph.PAG`; its
    ``id`` is the index assigned by that graph.  Attached vertices are
    flyweight handles over the graph's columns; the constructor below
    builds a *detached* vertex with its own storage.
    """

    __slots__ = ("id", "_pag", "_data")

    def __init__(
        self,
        vid: int,
        label: VertexLabel,
        name: str,
        call_kind: Optional[CallKind] = None,
        properties: Optional[Dict[str, Any]] = None,
        pag: Any = None,
    ) -> None:
        if label is not VertexLabel.CALL and call_kind is not None:
            raise ValueError("call_kind is only meaningful for CALL vertices")
        self.id = vid
        if pag is None:
            self._pag = None
            self._data = _DetachedData(label, name, call_kind, dict(properties or {}))
        else:
            # Adopt into the graph's columns (the graph has already
            # reserved row ``vid``); used only by PAG.add_vertex.
            self._pag = pag
            self._data = None

    @classmethod
    def _attached(cls, pag, vid: int) -> "Vertex":
        """Fast handle constructor — skips validation entirely."""
        v = object.__new__(cls)
        v.id = vid
        v._pag = pag
        v._data = None
        return v

    # -- structural fields -------------------------------------------------
    @property
    def label(self) -> VertexLabel:
        if self._pag is None:
            return self._data.label
        return VLABELS[self._pag._v_label[self.id]]

    @property
    def call_kind(self) -> Optional[CallKind]:
        if self._pag is None:
            return self._data.call_kind
        code = self._pag._v_kind[self.id]
        return None if code == NO_KIND else CALLKINDS[code]

    @property
    def name(self) -> str:
        if self._pag is None:
            return self._data.name
        return self._pag.strings.value(self._pag._v_name[self.id])

    @name.setter
    def name(self, value: str) -> None:
        if self._pag is None:
            self._data.name = value
        else:
            # mmap-loaded graphs hold read-only structural views
            self._pag._thaw_structure()
            self._pag._v_name[self.id] = self._pag.strings.intern(value)
            self._pag._struct_version += 1

    @property
    def properties(self) -> MutableMapping:
        if self._pag is None:
            return self._data.properties
        return PropsView(self._pag._vprops, self.id)

    # -- property access (paper's ``v[...]`` idiom) ----------------------
    def __getitem__(self, key: str) -> Any:
        if key == NAME:
            return self.name
        if key == "type":
            # Listing 7 compares ``v[type]`` against pflow.MPI / pflow.LOOP /
            # pflow.BRANCH; communication calls report "mpi", every other
            # vertex its structural label.
            return "mpi" if self.is_comm() else self.label.value
        if self._pag is None:
            return self._data.properties.get(key)
        return self._pag._vprops.get(self.id, key)

    def __setitem__(self, key: str, value: Any) -> None:
        if key == NAME:
            self.name = value
        elif self._pag is None:
            self._data.properties[key] = value
        else:
            self._pag._vprops.set(self.id, key, value)

    def __contains__(self, key: str) -> bool:
        if key == NAME:
            return True
        if self._pag is None:
            return key in self._data.properties
        return self._pag._vprops.has(self.id, key)

    @property
    def metrics(self) -> Iterator[str]:
        """Names of numeric properties, used by the differential pass."""
        for key, value in self.properties.items():
            if isinstance(value, (int, float)):
                yield key

    # -- graph navigation -------------------------------------------------
    @property
    def pag(self):
        """The owning :class:`~repro.pag.graph.PAG` (``None`` if detached)."""
        return self._pag

    @property
    def es(self):
        """All edges incident to this vertex, as an :class:`EdgeSet`.

        Mirrors the paper's ``v.es`` (Listing 7 line 13).  Use
        ``.select(...)`` on the result to restrict by direction or label.
        """
        if self._pag is None:
            from repro.pag.sets import EdgeSet

            return EdgeSet([])
        return self._pag.incident(self.id)

    def in_edges(self):
        if self._pag is None:
            from repro.pag.sets import EdgeSet

            return EdgeSet([])
        return self._pag.in_edges(self.id)

    def out_edges(self):
        if self._pag is None:
            from repro.pag.sets import EdgeSet

            return EdgeSet([])
        return self._pag.out_edges(self.id)

    # -- misc --------------------------------------------------------------
    def is_comm(self) -> bool:
        """True for communication (MPI) call vertices."""
        if self._pag is None:
            return (
                self._data.label is VertexLabel.CALL
                and self._data.call_kind is CallKind.COMM
            )
        return (
            VLABELS[self._pag._v_label[self.id]] is VertexLabel.CALL
            and self._pag._v_kind[self.id] == CALLKIND_CODE[CallKind.COMM]
        )

    def _token(self) -> int:
        """Stable identity token of the owning graph (0 if detached)."""
        return 0 if self._pag is None else self._pag.token

    def __repr__(self) -> str:
        kind = f"/{self.call_kind.value}" if self.call_kind else ""
        return f"Vertex({self.id}, {self.label.value}{kind}, {self.name!r})"

    def __hash__(self) -> int:
        return hash((self._token(), self.id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vertex):
            return NotImplemented
        return self._pag is other._pag and self.id == other.id

"""PAG persistence and space-cost accounting (Table 1's "Space" row).

PAGs serialize to a JSON document: per-rank vectors are summarized to
scalar statistics by default (min/max/mean + imbalance ratio) — the
compact form whose on-disk size is what the paper reports as PerFlow's
space cost (kilobytes-to-megabytes, vs. gigabytes for full event
traces).  ``include_per_rank=True`` keeps the full vectors for lossless
round-trips.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any, Dict, Union

import numpy as np

from repro.pag.edge import CommKind, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.vertex import CallKind, VertexLabel


def _json_safe(value: Any, include_per_rank: bool) -> Any:
    if isinstance(value, np.ndarray):
        if include_per_rank:
            return {"__ndarray__": [round(float(x), 9) for x in value.tolist()]}
        arr = value
        mean = float(arr.mean()) if arr.size else 0.0
        return {
            "min": round(float(arr.min()), 9) if arr.size else 0.0,
            "max": round(float(arr.max()), 9) if arr.size else 0.0,
            "mean": round(mean, 9),
            "imbalance": round(float(arr.max()) / mean, 6) if mean > 0 else 0.0,
        }
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, dict):
        return {k: _json_safe(v, include_per_rank) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v, include_per_rank) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__ndarray__" in value:
        return np.asarray(value["__ndarray__"], dtype=float)
    return value


def pag_to_dict(pag: PAG, include_per_rank: bool = False) -> Dict[str, Any]:
    """Serializable form of a PAG."""
    meta = {
        k: v
        for k, v in pag.metadata.items()
        if isinstance(v, (str, int, float, bool, type(None)))
    }
    return {
        "name": pag.name,
        "metadata": meta,
        "vertices": [
            [
                v.label.value,
                v.name,
                v.call_kind.value if v.call_kind else None,
                _json_safe(v.properties, include_per_rank),
            ]
            for v in pag.vertices()
        ],
        "edges": [
            [
                e.src_id,
                e.dst_id,
                e.label.value,
                e.comm_kind.value if e.comm_kind else None,
                _json_safe(e.properties, include_per_rank),
            ]
            for e in pag.edges()
        ],
    }


def pag_from_dict(data: Dict[str, Any]) -> PAG:
    """Inverse of :func:`pag_to_dict` (per-rank vectors restored only if
    they were serialized with ``include_per_rank=True``)."""
    pag = PAG(data["name"], dict(data.get("metadata", {})))
    for label, name, call_kind, props in data["vertices"]:
        pag.add_vertex(
            VertexLabel(label),
            name,
            CallKind(call_kind) if call_kind else None,
            {k: _decode_value(v) for k, v in props.items()},
        )
    for src, dst, label, comm_kind, props in data["edges"]:
        pag.add_edge(
            src,
            dst,
            EdgeLabel(label),
            CommKind(comm_kind) if comm_kind else None,
            {k: _decode_value(v) for k, v in props.items()},
        )
    return pag


def save_pag(pag: PAG, path: Union[str, FsPath], include_per_rank: bool = False) -> int:
    """Write a PAG as JSON; returns the byte size written."""
    payload = json.dumps(pag_to_dict(pag, include_per_rank), separators=(",", ":"))
    data = payload.encode("utf-8")
    FsPath(path).write_bytes(data)
    return len(data)


def load_pag(path: Union[str, FsPath]) -> PAG:
    return pag_from_dict(json.loads(FsPath(path).read_text("utf-8")))


def storage_size(pag: PAG, include_per_rank: bool = False) -> int:
    """Bytes of the serialized PAG — the space cost of Table 1."""
    payload = json.dumps(pag_to_dict(pag, include_per_rank), separators=(",", ":"))
    return len(payload.encode("utf-8"))

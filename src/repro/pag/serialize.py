"""Compatibility shim: PAG persistence moved to :mod:`repro.pag.formats`.

The single-module serializer grew a binary format and a backing-store
layer, so it is now a package — format 1/2 JSON codecs in
:mod:`repro.pag.formats.json_fmt`, the mmap-able binary format 3 in
:mod:`repro.pag.formats.format3`, shared canonicalization in
:mod:`repro.pag.formats.base`, dispatch in the package root.  This
module re-exports the public API so existing imports keep working.
"""

from __future__ import annotations

from repro.pag.formats import (  # noqa: F401
    PAGFormatError,
    detect_format,
    load_pag,
    pag_file_fingerprint,
    pag_from_dict,
    pag_to_dict,
    read_header,
    save_pag,
    segment_sizes,
    storage_size,
)

__all__ = [
    "PAGFormatError",
    "save_pag",
    "load_pag",
    "storage_size",
    "detect_format",
    "pag_file_fingerprint",
    "read_header",
    "segment_sizes",
    "pag_to_dict",
    "pag_from_dict",
]

"""PAG persistence and space-cost accounting (Table 1's "Space" row).

PAGs serialize to a JSON document: per-rank vectors are summarized to
scalar statistics by default (min/max/mean + imbalance ratio) — the
compact form whose on-disk size is what the paper reports as PerFlow's
space cost (kilobytes-to-megabytes, vs. gigabytes for full event
traces).  ``include_per_rank=True`` keeps the full vectors for lossless
round-trips.

Two on-disk formats exist:

* **Format 2** (current, written by :func:`save_pag`): a columnar
  document mirroring the in-memory struct-of-arrays layout — the string
  table, dense structural code arrays, and one sparse ``rows``/``vals``
  record per property column.  It is produced by a single streaming
  pass over the columns; no per-element dict is ever materialized, and
  :func:`storage_size` runs the same writer against a counting sink, so
  its result is byte-exact with what :func:`save_pag` writes.
* **Format 1** (legacy, element-wise): still produced by
  :func:`pag_to_dict` and accepted by :func:`load_pag` /
  :func:`pag_from_dict` for compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any, Callable, Dict, Union

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.obs.trace import timed_span as _timed_span
from repro.pag.columns import FloatColumn, IntColumn, ObjColumn, StrColumn
from repro.pag.edge import CommKind, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.vertex import CallKind, VertexLabel
from array import array

_LOG = get_logger("pag.serialize")


class PAGFormatError(ValueError):
    """A PAG document is truncated, corrupt, or structurally invalid.

    Raised by :func:`load_pag` / :func:`pag_from_dict` instead of the
    raw ``json.JSONDecodeError`` / ``KeyError`` / ``TypeError`` the
    decoder would otherwise surface, carrying the file path (when
    known) and the document format for an actionable message.  Subclasses
    ``ValueError`` so existing broad handlers (e.g. the CLI's) keep
    working.
    """

    def __init__(self, detail: str, path: Any = None, fmt: Any = None):
        self.path = str(path) if path is not None else None
        self.format = fmt
        where = f" in {self.path!r}" if self.path else ""
        what = f"format-{fmt} PAG document" if fmt is not None else "PAG document"
        super().__init__(f"invalid {what}{where}: {detail}")


def _round9(x: Any) -> float:
    # np.round, not the builtin: format-2 columns are written with
    # np.round, and the two can disagree in the last ulp — the
    # fingerprint (repro.cache) relies on one consistent canonicalization.
    return float(np.round(float(x), 9))


def _json_safe(value: Any, include_per_rank: bool) -> Any:
    if isinstance(value, np.ndarray):
        if include_per_rank:
            return {"__ndarray__": [_round9(x) for x in value.tolist()]}
        arr = value
        mean = float(arr.mean()) if arr.size else 0.0
        return {
            "min": _round9(arr.min()) if arr.size else 0.0,
            "max": _round9(arr.max()) if arr.size else 0.0,
            "mean": _round9(mean),
            "imbalance": round(float(arr.max()) / mean, 6) if mean > 0 else 0.0,
        }
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float):
        return _round9(value)
    if isinstance(value, dict):
        return {k: _json_safe(v, include_per_rank) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v, include_per_rank) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__ndarray__" in value:
        return np.asarray(value["__ndarray__"], dtype=float)
    return value


def _meta_filter(metadata: Dict[str, Any]) -> Dict[str, Any]:
    return {
        k: v
        for k, v in metadata.items()
        if isinstance(v, (str, int, float, bool, type(None)))
    }


# ----------------------------------------------------------------------
# legacy element-wise form (format 1)
# ----------------------------------------------------------------------
def pag_to_dict(pag: PAG, include_per_rank: bool = False) -> Dict[str, Any]:
    """Element-wise serializable form of a PAG (legacy format 1)."""
    return {
        "name": pag.name,
        "metadata": _meta_filter(pag.metadata),
        "vertices": [
            [
                v.label.value,
                v.name,
                v.call_kind.value if v.call_kind else None,
                _json_safe(dict(v.properties), include_per_rank),
            ]
            for v in pag.vertices()
        ],
        "edges": [
            [
                e.src_id,
                e.dst_id,
                e.label.value,
                e.comm_kind.value if e.comm_kind else None,
                _json_safe(dict(e.properties), include_per_rank),
            ]
            for e in pag.edges()
        ],
    }


def pag_from_dict(data: Dict[str, Any], path: Any = None) -> PAG:
    """Inverse of :func:`pag_to_dict` (per-rank vectors restored only if
    they were serialized with ``include_per_rank=True``).  Also accepts
    a parsed format-2 document.

    Structural defects (missing keys, wrong element shapes, out-of-range
    enum codes, …) raise :class:`PAGFormatError`; ``path`` only
    decorates that error message.
    """
    if not isinstance(data, dict):
        raise PAGFormatError(
            f"expected a JSON object at top level, got {type(data).__name__}",
            path=path,
        )
    fmt = data.get("format", 1)
    try:
        if fmt == 2:
            return _pag_from_columnar(data)
        pag = PAG(data["name"], dict(data.get("metadata", {})))
        for label, name, call_kind, props in data["vertices"]:
            pag.add_vertex(
                VertexLabel(label),
                name,
                CallKind(call_kind) if call_kind else None,
                {k: _decode_value(v) for k, v in props.items()},
            )
        for src, dst, label, comm_kind, props in data["edges"]:
            pag.add_edge(
                src,
                dst,
                EdgeLabel(label),
                CommKind(comm_kind) if comm_kind else None,
                {k: _decode_value(v) for k, v in props.items()},
            )
        return pag
    except PAGFormatError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, OverflowError, AttributeError) as exc:
        raise PAGFormatError(f"{type(exc).__name__}: {exc}", path=path, fmt=fmt) from exc


# ----------------------------------------------------------------------
# columnar streaming form (format 2)
# ----------------------------------------------------------------------
_CHUNK = 8192


def _write_array(write: Callable[[str], None], seq) -> None:
    """Stream a sequence as a JSON array in fixed-size chunks."""
    write("[")
    n = len(seq)
    for start in range(0, n, _CHUNK):
        chunk = list(seq[start : start + _CHUNK])
        body = json.dumps(chunk, separators=(",", ":"))[1:-1]
        if start:
            write(",")
        write(body)
    write("]")


def _write_columns(
    write: Callable[[str], None], store, include_per_rank: bool
) -> None:
    write("{")
    first = True
    for key, col in store.columns.items():
        if isinstance(col, FloatColumn):
            rows = col.rows()
            data, _ = col.arrays(store.nrows)
            vals = np.round(data[rows], 9).tolist()
            tag = "f"
        elif isinstance(col, IntColumn):
            rows = col.rows()
            data, _ = col.arrays(store.nrows)
            vals = data[rows].tolist()
            tag = "i"
        elif isinstance(col, StrColumn):
            rows = col.rows()
            vals = col.sid_array(store.nrows)[rows].tolist()
            tag = "s"
        else:
            rows = col.rows()
            vals = [_json_safe(col.cells[int(r)], include_per_rank) for r in rows]
            tag = "o"
        if not len(rows):
            continue
        if not first:
            write(",")
        first = False
        write(json.dumps(key))
        write(':{"t":"%s","rows":' % tag)
        _write_array(write, rows.tolist())
        write(',"vals":')
        _write_array(write, vals)
        write("}")
    write("}")


def _write_pag(
    pag: PAG, write: Callable[[str], None], include_per_rank: bool
) -> None:
    """One streaming pass over the columns; never builds element dicts."""
    write('{"format":2,"name":')
    write(json.dumps(pag.name))
    write(',"metadata":')
    write(json.dumps(_meta_filter(pag.metadata), separators=(",", ":")))
    write(',"strings":')
    _write_array(write, list(pag.strings))
    write(',"v":{"label":')
    _write_array(write, pag._v_label)
    write(',"kind":')
    _write_array(write, pag._v_kind)
    write(',"name":')
    _write_array(write, pag._v_name)
    write('},"e":{"src":')
    _write_array(write, pag._e_src)
    write(',"dst":')
    _write_array(write, pag._e_dst)
    write(',"label":')
    _write_array(write, pag._e_label)
    write(',"kind":')
    _write_array(write, pag._e_kind)
    write('},"vcols":')
    _write_columns(write, pag._vprops, include_per_rank)
    write(',"ecols":')
    _write_columns(write, pag._eprops, include_per_rank)
    write("}")


def _decode_column(cd: Dict[str, Any], strings, nrows: int):
    tag, rows, vals = cd["t"], cd["rows"], cd["vals"]
    if tag == "f":
        col = FloatColumn()
    elif tag == "i":
        col = IntColumn()
    elif tag == "s":
        col = StrColumn(strings)
        col._pad_to(nrows)
        for r, sid in zip(rows, vals):
            col.sids[r] = sid
        return col
    else:
        col = ObjColumn()
        col.cells = {r: _decode_value(v) for r, v in zip(rows, vals)}
        return col
    col._pad_to(nrows)
    for r, v in zip(rows, vals):
        col.data[r] = v
        col.valid[r] = 1
    return col


def _pag_from_columnar(data: Dict[str, Any]) -> PAG:
    pag = PAG(data["name"], dict(data.get("metadata", {})))
    for s in data["strings"]:
        pag.strings.intern(s)
    v, e = data["v"], data["e"]
    pag._v_label = array("b", v["label"])
    pag._v_kind = array("b", v["kind"])
    pag._v_name = array("q", v["name"])
    pag._e_src = array("q", e["src"])
    pag._e_dst = array("q", e["dst"])
    pag._e_label = array("b", e["label"])
    pag._e_kind = array("b", e["kind"])
    pag._vprops.nrows = len(pag._v_label)
    pag._eprops.nrows = len(pag._e_src)
    for key, cd in data.get("vcols", {}).items():
        pag._vprops.columns[key] = _decode_column(cd, pag.strings, pag._vprops.nrows)
    for key, cd in data.get("ecols", {}).items():
        pag._eprops.columns[key] = _decode_column(cd, pag.strings, pag._eprops.nrows)
    return pag


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def save_pag(pag: PAG, path: Union[str, FsPath], include_per_rank: bool = False) -> int:
    """Write a PAG as columnar JSON (format 2); returns the byte size written.

    Every save records ``pag.save.bytes`` / ``pag.save.seconds``
    histograms on the global metrics registry and (when tracing is
    enabled) a ``pag.save`` span.
    """
    total = 0
    with _timed_span("pag.save", category="pag", pag=pag.name) as sp:
        with open(FsPath(path), "wb") as f:

            def write(s: str) -> None:
                nonlocal total
                b = s.encode("utf-8")
                total += len(b)
                f.write(b)

            _write_pag(pag, write, include_per_rank)
        if sp:
            sp.set(bytes=total)
    _metrics.histogram("pag.save.bytes").observe(total)
    _metrics.histogram("pag.save.seconds").observe(sp.duration)
    _LOG.info("saved %s: %d bytes in %.4fs", pag.name, total, sp.duration)
    return total


def load_pag(path: Union[str, FsPath]) -> PAG:
    """Load a PAG written by :func:`save_pag` (either format).

    Records ``pag.load.bytes`` / ``pag.load.seconds`` histograms and a
    ``pag.load`` span, mirroring :func:`save_pag`.
    """
    text = FsPath(path).read_text("utf-8")
    with _timed_span("pag.load", category="pag", bytes=len(text)) as sp:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PAGFormatError(
                f"not valid JSON (truncated or corrupt file?): {exc}", path=path
            ) from exc
        pag = pag_from_dict(data, path=path)
        if sp:
            sp.set(pag=pag.name)
    _metrics.histogram("pag.load.bytes").observe(len(text))
    _metrics.histogram("pag.load.seconds").observe(sp.duration)
    return pag


def storage_size(pag: PAG, include_per_rank: bool = False) -> int:
    """Bytes of the serialized PAG — the space cost of Table 1.

    Runs the same streaming writer as :func:`save_pag` against a
    counting sink, so the result matches the written file exactly.
    """
    total = 0

    def write(s: str) -> None:
        nonlocal total
        total += len(s.encode("utf-8"))

    _write_pag(pag, write, include_per_rank)
    return total

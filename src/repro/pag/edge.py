"""PAG edges: labels, communication kinds, and the attributed edge type.

Paper §3.1: edge labels are *intra-procedural* (control flow inside a
function), *inter-procedural* (call relationships), *inter-thread*
(dependences across threads, e.g. lock waits), and *inter-process*
(communications: synchronous/asynchronous point-to-point and
collectives).  Edge properties carry performance data — communication
time, message bytes, wait time.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional


class EdgeLabel(enum.Enum):
    """Type of a PAG edge (paper §3.1)."""

    INTRA_PROCEDURAL = "intra-procedural"
    INTER_PROCEDURAL = "inter-procedural"
    INTER_THREAD = "inter-thread"
    INTER_PROCESS = "inter-process"


class CommKind(enum.Enum):
    """Refinement of :attr:`EdgeLabel.INTER_PROCESS` edges."""

    P2P_SYNC = "p2p-sync"
    P2P_ASYNC = "p2p-async"
    COLLECTIVE = "collective"


#: Conventional edge property keys.
COMM_TIME = "comm_time"
COMM_BYTES = "comm_bytes"
WAIT_TIME = "wait_time"


class Edge:
    """An attributed, directed PAG edge ``src -> dst``.

    ``src``/``dst`` are vertex ids within the owning PAG; ``src_vertex``
    and ``dst_vertex`` resolve them.  The paper's listings use ``e.src``
    for the source *vertex* (Listing 7 line 25), so :attr:`src_vertex`
    is also exposed under that name via :meth:`__getattr__`-free explicit
    properties below.
    """

    __slots__ = ("id", "src_id", "dst_id", "label", "comm_kind", "properties", "_pag")

    def __init__(
        self,
        eid: int,
        src_id: int,
        dst_id: int,
        label: EdgeLabel,
        comm_kind: Optional[CommKind] = None,
        properties: Optional[Dict[str, Any]] = None,
        pag: Any = None,
    ) -> None:
        if label is not EdgeLabel.INTER_PROCESS and comm_kind is not None:
            raise ValueError("comm_kind is only meaningful for INTER_PROCESS edges")
        self.id = eid
        self.src_id = src_id
        self.dst_id = dst_id
        self.label = label
        self.comm_kind = comm_kind
        self.properties: Dict[str, Any] = dict(properties or {})
        self._pag = pag

    # -- property access ----------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        return self.properties.get(key)

    def __setitem__(self, key: str, value: Any) -> None:
        self.properties[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.properties

    # -- endpoint resolution --------------------------------------------------
    @property
    def pag(self):
        return self._pag

    @property
    def src(self):
        """Source :class:`~repro.pag.vertex.Vertex` (paper's ``e.src``)."""
        return self._pag.vertex(self.src_id)

    @property
    def dst(self):
        """Destination :class:`~repro.pag.vertex.Vertex`."""
        return self._pag.vertex(self.dst_id)

    def other(self, vid: int) -> int:
        """The endpoint id that is not ``vid``."""
        if vid == self.src_id:
            return self.dst_id
        if vid == self.dst_id:
            return self.src_id
        raise ValueError(f"vertex {vid} is not an endpoint of edge {self.id}")

    def __repr__(self) -> str:
        kind = f"/{self.comm_kind.value}" if self.comm_kind else ""
        return f"Edge({self.id}, {self.src_id}->{self.dst_id}, {self.label.value}{kind})"

    def __hash__(self) -> int:
        return hash((id(self._pag), self.id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self._pag is other._pag and self.id == other.id

"""PAG edges: labels, communication kinds, and the attributed edge type.

Paper §3.1: edge labels are *intra-procedural* (control flow inside a
function), *inter-procedural* (call relationships), *inter-thread*
(dependences across threads, e.g. lock waits), and *inter-process*
(communications: synchronous/asynchronous point-to-point and
collectives).  Edge properties carry performance data — communication
time, message bytes, wait time.

Like vertices, attached edges are flyweight handles over the owning
PAG's columnar store; directly constructed edges are detached and carry
their own storage.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, MutableMapping, Optional

from repro.pag.vertex import PropsView


class EdgeLabel(enum.Enum):
    """Type of a PAG edge (paper §3.1)."""

    INTRA_PROCEDURAL = "intra-procedural"
    INTER_PROCEDURAL = "inter-procedural"
    INTER_THREAD = "inter-thread"
    INTER_PROCESS = "inter-process"


class CommKind(enum.Enum):
    """Refinement of :attr:`EdgeLabel.INTER_PROCESS` edges."""

    P2P_SYNC = "p2p-sync"
    P2P_ASYNC = "p2p-async"
    COLLECTIVE = "collective"


#: Dense code tables for the columnar store (code = index).
ELABELS = tuple(EdgeLabel)
ELABEL_CODE = {label: code for code, label in enumerate(ELABELS)}
COMMKINDS = tuple(CommKind)
COMMKIND_CODE = {kind: code for code, kind in enumerate(COMMKINDS)}
#: Code meaning "no comm kind".
NO_KIND = -1


#: Conventional edge property keys.
COMM_TIME = "comm_time"
COMM_BYTES = "comm_bytes"
WAIT_TIME = "wait_time"


class _DetachedData:
    """Own storage of an edge created outside any PAG."""

    __slots__ = ("src_id", "dst_id", "label", "comm_kind", "properties")

    def __init__(self, src_id, dst_id, label, comm_kind, properties) -> None:
        self.src_id = src_id
        self.dst_id = dst_id
        self.label = label
        self.comm_kind = comm_kind
        self.properties = properties


class Edge:
    """An attributed, directed PAG edge ``src -> dst``.

    ``src``/``dst`` are vertex ids within the owning PAG; ``src_vertex``
    and ``dst_vertex`` resolve them.  The paper's listings use ``e.src``
    for the source *vertex* (Listing 7 line 25), so :attr:`src_vertex`
    is also exposed under that name via :meth:`__getattr__`-free explicit
    properties below.
    """

    __slots__ = ("id", "_pag", "_data")

    def __init__(
        self,
        eid: int,
        src_id: int,
        dst_id: int,
        label: EdgeLabel,
        comm_kind: Optional[CommKind] = None,
        properties: Optional[Dict[str, Any]] = None,
        pag: Any = None,
    ) -> None:
        if label is not EdgeLabel.INTER_PROCESS and comm_kind is not None:
            raise ValueError("comm_kind is only meaningful for INTER_PROCESS edges")
        self.id = eid
        if pag is None:
            self._pag = None
            self._data = _DetachedData(
                src_id, dst_id, label, comm_kind, dict(properties or {})
            )
        else:
            self._pag = pag
            self._data = None

    @classmethod
    def _attached(cls, pag, eid: int) -> "Edge":
        """Fast handle constructor — skips validation entirely."""
        e = object.__new__(cls)
        e.id = eid
        e._pag = pag
        e._data = None
        return e

    # -- structural fields -------------------------------------------------
    @property
    def src_id(self) -> int:
        if self._pag is None:
            return self._data.src_id
        return self._pag._e_src[self.id]

    @property
    def dst_id(self) -> int:
        if self._pag is None:
            return self._data.dst_id
        return self._pag._e_dst[self.id]

    @property
    def label(self) -> EdgeLabel:
        if self._pag is None:
            return self._data.label
        return ELABELS[self._pag._e_label[self.id]]

    @property
    def comm_kind(self) -> Optional[CommKind]:
        if self._pag is None:
            return self._data.comm_kind
        code = self._pag._e_kind[self.id]
        return None if code == NO_KIND else COMMKINDS[code]

    @property
    def properties(self) -> MutableMapping:
        if self._pag is None:
            return self._data.properties
        return PropsView(self._pag._eprops, self.id)

    # -- property access ----------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        if self._pag is None:
            return self._data.properties.get(key)
        return self._pag._eprops.get(self.id, key)

    def __setitem__(self, key: str, value: Any) -> None:
        if self._pag is None:
            self._data.properties[key] = value
        else:
            self._pag._eprops.set(self.id, key, value)

    def __contains__(self, key: str) -> bool:
        if self._pag is None:
            return key in self._data.properties
        return self._pag._eprops.has(self.id, key)

    # -- endpoint resolution --------------------------------------------------
    @property
    def pag(self):
        return self._pag

    @property
    def src(self):
        """Source :class:`~repro.pag.vertex.Vertex` (paper's ``e.src``)."""
        return self._pag.vertex(self.src_id)

    @property
    def dst(self):
        """Destination :class:`~repro.pag.vertex.Vertex`."""
        return self._pag.vertex(self.dst_id)

    def other(self, vid: int) -> int:
        """The endpoint id that is not ``vid``."""
        if vid == self.src_id:
            return self.dst_id
        if vid == self.dst_id:
            return self.src_id
        raise ValueError(f"vertex {vid} is not an endpoint of edge {self.id}")

    def _token(self) -> int:
        """Stable identity token of the owning graph (0 if detached)."""
        return 0 if self._pag is None else self._pag.token

    def __repr__(self) -> str:
        kind = f"/{self.comm_kind.value}" if self.comm_kind else ""
        return f"Edge({self.id}, {self.src_id}->{self.dst_id}, {self.label.value}{kind})"

    def __hash__(self) -> int:
        return hash((self._token(), self.id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self._pag is other._pag and self.id == other.id

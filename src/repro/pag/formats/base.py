"""Shared pieces of the PAG on-disk codecs.

Every format (JSON 1/2, binary 3) canonicalizes values the same way —
floats round to 9 decimals, per-rank ``numpy`` vectors either summarize
to scalar statistics or serialize in full, metadata keeps only JSON
scalars — so that a PAG's content fingerprint survives any save/load
round trip regardless of the format it travelled through.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

__all__ = [
    "PAGFormatError",
    "round9",
    "json_safe",
    "decode_value",
    "meta_filter",
]


class PAGFormatError(ValueError):
    """A PAG document is truncated, corrupt, or structurally invalid.

    Raised by :func:`repro.pag.formats.load_pag` /
    :func:`repro.pag.formats.pag_from_dict` instead of the raw
    ``json.JSONDecodeError`` / ``KeyError`` / ``struct.error`` the
    decoders would otherwise surface, carrying the file path (when
    known) and the document format for an actionable message.  Subclasses
    ``ValueError`` so existing broad handlers (e.g. the CLI's) keep
    working.
    """

    def __init__(self, detail: str, path: Any = None, fmt: Any = None):
        self.path = str(path) if path is not None else None
        self.format = fmt
        where = f" in {self.path!r}" if self.path else ""
        what = f"format-{fmt} PAG document" if fmt is not None else "PAG document"
        super().__init__(f"invalid {what}{where}: {detail}")


def round9(x: Any) -> float:
    # np.round, not the builtin: columns are written with np.round, and
    # the two can disagree in the last ulp — the fingerprint
    # (repro.cache) relies on one consistent canonicalization.
    return float(np.round(float(x), 9))


def json_safe(value: Any, include_per_rank: bool) -> Any:
    """JSON-encodable form of a property value (all formats' obj cells)."""
    if isinstance(value, np.ndarray):
        if include_per_rank:
            return {"__ndarray__": [round9(x) for x in value.tolist()]}
        arr = value
        mean = float(arr.mean()) if arr.size else 0.0
        return {
            "min": round9(arr.min()) if arr.size else 0.0,
            "max": round9(arr.max()) if arr.size else 0.0,
            "mean": round9(mean),
            "imbalance": round(float(arr.max()) / mean, 6) if mean > 0 else 0.0,
        }
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float):
        return round9(value)
    if isinstance(value, dict):
        return {k: json_safe(v, include_per_rank) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v, include_per_rank) for v in value]
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`json_safe` (per-rank vectors only when full)."""
    if isinstance(value, dict) and "__ndarray__" in value:
        return np.asarray(value["__ndarray__"], dtype=float)
    return value


def meta_filter(metadata: Dict[str, Any]) -> Dict[str, Any]:
    """Metadata entries every format persists (JSON scalars only)."""
    return {
        k: v
        for k, v in metadata.items()
        if isinstance(v, (str, int, float, bool, type(None)))
    }

"""PAG persistence: format dispatch behind ``save_pag`` / ``load_pag``.

Three on-disk formats exist, all behind the same three entry points
(plus :func:`detect_format` / :func:`pag_file_fingerprint` for
sniffing and header-only probes):

* **Format 1** (legacy JSON, element-wise) — read-only compatibility
  via :func:`pag_from_dict`; written only on request.
* **Format 2** (columnar streaming JSON, the default) — one streaming
  pass over the columns; human-greppable; fully materializes on load.
* **Format 3** (binary, mmap-able columnar) — fingerprint in the
  header, 64-byte-aligned array segments; ``load_pag(path, mmap=True)``
  is O(header) and attaches columns as lazy copy-on-write views
  (:mod:`repro.pag.formats.format3`).

``storage_size`` runs the requested format's writer against a counting
sink, so its result is byte-exact with what ``save_pag`` writes.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any, Dict, Union

from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.obs.trace import timed_span as _timed_span
from repro.pag.formats.base import PAGFormatError
from repro.pag.formats.format3 import (
    MAGIC as _MAGIC3,
    load_format3,
    pag_file_fingerprint,
    read_header,
    segment_sizes,
    write_format3,
)
from repro.pag.formats.json_fmt import pag_from_dict, pag_to_dict, write_format2
from repro.pag.graph import PAG

__all__ = [
    "PAGFormatError",
    "save_pag",
    "load_pag",
    "storage_size",
    "detect_format",
    "pag_file_fingerprint",
    "read_header",
    "segment_sizes",
    "pag_to_dict",
    "pag_from_dict",
]

_LOG = get_logger("pag.serialize")

#: Formats ``save_pag``/``storage_size`` can produce.
WRITABLE_FORMATS = (1, 2, 3)


def _write_format1(pag: PAG, write, include_per_rank: bool) -> None:
    write(
        json.dumps(
            pag_to_dict(pag, include_per_rank=include_per_rank),
            separators=(",", ":"),
        )
    )


_WRITERS = {1: _write_format1, 2: write_format2, 3: write_format3}


def save_pag(
    pag: PAG,
    path: Union[str, FsPath],
    include_per_rank: bool = False,
    format: int = 2,
) -> int:
    """Write a PAG in the requested format; returns the byte size written.

    Every save records ``pag.save.bytes`` / ``pag.save.seconds``
    histograms on the global metrics registry and (when tracing is
    enabled) a ``pag.save`` span tagged with the format.
    """
    if format not in _WRITERS:
        raise ValueError(f"unknown PAG format {format!r} (writable: 1, 2, 3)")
    writer = _WRITERS[format]
    binary = format == 3
    total = 0
    with _timed_span("pag.save", category="pag", pag=pag.name, format=format) as sp:
        with open(FsPath(path), "wb") as f:

            def write(chunk) -> None:
                nonlocal total
                b = chunk if binary else chunk.encode("utf-8")
                total += len(b)
                f.write(b)

            writer(pag, write, include_per_rank)
        if sp:
            sp.set(bytes=total)
    _metrics.histogram("pag.save.bytes").observe(total)
    _metrics.histogram("pag.save.seconds").observe(sp.duration)
    _LOG.info("saved %s: format %d, %d bytes in %.4fs", pag.name, format, total, sp.duration)
    return total


def detect_format(path: Union[str, FsPath]) -> int:
    """On-disk format of a saved PAG, sniffed from its first bytes."""
    with open(FsPath(path), "rb") as f:
        head = f.read(16)
    if head.startswith(_MAGIC3):
        return 3
    if head.lstrip().startswith(b'{"format":2'):
        return 2
    return 1


def load_pag(path: Union[str, FsPath], mmap: bool = False) -> PAG:
    """Load a PAG written by :func:`save_pag` (any format).

    ``mmap=True`` applies to format-3 files: the open is O(header) and
    columns attach as lazy views that fault in on first touch (JSON
    formats always materialize; the flag is ignored for them).

    Records ``pag.load.bytes`` / ``pag.load.seconds`` histograms and a
    ``pag.load`` span tagged with the detected format and mmap mode.
    """
    fmt = detect_format(path)
    if fmt == 3:
        with _timed_span(
            "pag.load", category="pag", format=3, mmap=bool(mmap)
        ) as sp:
            pag = load_format3(path, use_mmap=mmap)
            if sp:
                sp.set(pag=pag.name)
        # an mmap open reads only header + directory; report that, not
        # the (untouched) file size
        nbytes = (
            read_header(path)["data_start"]
            if mmap
            else FsPath(path).stat().st_size
        )
        _metrics.histogram("pag.load.bytes").observe(nbytes)
        _metrics.histogram("pag.load.seconds").observe(sp.duration)
        return pag
    text = FsPath(path).read_text("utf-8")
    with _timed_span(
        "pag.load", category="pag", bytes=len(text), format=fmt, mmap=False
    ) as sp:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PAGFormatError(
                f"not valid JSON (truncated or corrupt file?): {exc}", path=path
            ) from exc
        pag = pag_from_dict(data, path=path)
        if sp:
            sp.set(pag=pag.name)
    _metrics.histogram("pag.load.bytes").observe(len(text))
    _metrics.histogram("pag.load.seconds").observe(sp.duration)
    return pag


def storage_size(
    pag: PAG, include_per_rank: bool = False, format: int = 2
) -> int:
    """Bytes of the serialized PAG — the space cost of Table 1.

    Runs the requested format's streaming writer against a counting
    sink, so the result matches the written file exactly (all formats,
    including binary format 3).
    """
    if format not in _WRITERS:
        raise ValueError(f"unknown PAG format {format!r} (writable: 1, 2, 3)")
    total = 0

    def write(chunk) -> None:
        nonlocal total
        total += len(chunk) if isinstance(chunk, (bytes, bytearray)) else len(
            chunk.encode("utf-8")
        )

    _WRITERS[format](pag, write, include_per_rank)
    return total



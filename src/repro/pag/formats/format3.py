"""Binary, mmap-able columnar PAG codec (serialize format 3).

File layout::

    offset 0    +--------------------------------------------------+
                | fixed header, 96 bytes                           |
                |   <4sHHQQQ  magic b"PAG3", version, flags,       |
                |             dir_len, num_vertices, num_edges     |
                |   32 bytes  full fingerprint (ascii hex)         |
                |   32 bytes  content digest   (ascii hex)         |
    offset 96   +--------------------------------------------------+
                | directory: dir_len bytes of compact JSON         |
                |   name, metadata, strings, column specs,         |
                |   obj-column cells, and the segment table        |
                |   {seg name: [relative offset, nbytes]}          |
    data start  +--------------------------------------------------+
    = align64(  | data area: one extent per array segment,         |
      96 +      |   each offset 64-byte-aligned *relative to the   |
      dir_len)  |   data start* (so the directory never encodes    |
                |   its own length), zero-padded between extents   |
                +--------------------------------------------------+

Segments hold the structural arrays verbatim and each typed property
column *dense* over all rows: float data is pre-rounded to 9 decimals
(the canonical serialized form), invalid cells are zeroed, and the
validity mask travels as a uint8 segment.  String columns store the
interned-id array.  Spill (object) columns are tiny and cold, so their
cells live inline in the directory as sparse ``rows``/``vals`` JSON.

Because the header carries the fingerprint, ``read_header`` (and cache
probes on files) are O(96 bytes + directory); ``load_pag(path,
mmap=True)`` attaches every column as a lazy numpy view over the map
(:class:`repro.pag.columns.SegmentBacking`), so opening is O(header)
and a pass faults in only the column pages it touches.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import struct
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.pag.columns import (
    NO_STRING,
    FloatColumn,
    IntColumn,
    ObjColumn,
    SegmentBacking,
    StrColumn,
)
from repro.pag.formats.base import PAGFormatError, decode_value, json_safe, meta_filter
from repro.pag.graph import PAG

__all__ = [
    "MAGIC",
    "write_format3",
    "read_header",
    "read_header_buffer",
    "load_format3",
    "load_format3_buffer",
    "pag_file_fingerprint",
    "segment_sizes",
]

MAGIC = b"PAG3"
VERSION = 1
ALIGN = 64
_HEADER = struct.Struct("<4sHHQQQ")  # magic, version, flags, dir_len, nv, ne
_DIGEST_LEN = 32  # blake2b(digest_size=16) hex
HEADER_SIZE = _HEADER.size + 2 * _DIGEST_LEN  # 96

#: (attribute, segment name, numpy dtype) of the structural arrays.
_STRUCT_SEGS = (
    ("_v_label", "v_label", np.int8),
    ("_v_kind", "v_kind", np.int8),
    ("_v_name", "v_name", np.int64),
    ("_e_src", "e_src", np.int64),
    ("_e_dst", "e_dst", np.int64),
    ("_e_label", "e_label", np.int8),
    ("_e_kind", "e_kind", np.int8),
)


def _align(off: int) -> int:
    return (off + ALIGN - 1) // ALIGN * ALIGN


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
def _column_payloads(
    prefix: str, store, include_per_rank: bool
) -> Tuple[Dict[str, Any], List[Tuple[str, bytes]]]:
    """(column spec for the directory, [(segment name, payload)]).

    Typed columns are stored dense over ``store.nrows`` rows; columns
    with no valid cell are dropped (matching format 2 and the content
    digest).  Spill columns serialize inline in the spec.
    """
    spec: Dict[str, Any] = {}
    segs: List[Tuple[str, bytes]] = []
    nrows = store.nrows
    for key, col in store.columns.items():
        rows = col.rows()
        if not len(rows):
            continue
        if isinstance(col, (FloatColumn, IntColumn)):
            data, valid = col.arrays(nrows)
            if isinstance(col, FloatColumn):
                dense = np.round(np.asarray(data, dtype=np.float64), 9)
            else:
                dense = np.asarray(data, dtype=np.int64).copy()
            dense[~np.asarray(valid)] = 0  # never leak stale cells
            dseg, vseg = f"{prefix}.{key}.data", f"{prefix}.{key}.valid"
            segs.append((dseg, dense.tobytes()))
            segs.append((vseg, np.asarray(valid, dtype=np.uint8).tobytes()))
            spec[key] = {"t": col.kind, "data": dseg, "valid": vseg}
        elif isinstance(col, StrColumn):
            sseg = f"{prefix}.{key}.sids"
            segs.append((sseg, col.sid_array(nrows).tobytes()))
            spec[key] = {"t": "s", "sids": sseg}
        else:  # ObjColumn: sparse, cold — lives in the directory
            spec[key] = {
                "t": "o",
                "rows": rows.tolist(),
                "vals": [json_safe(col.cells[int(r)], include_per_rank) for r in rows],
            }
    return spec, segs


def _layout(
    pag: PAG, include_per_rank: bool
) -> Tuple[List[Tuple[str, bytes]], Dict[str, List[int]], bytes]:
    """(ordered segments, segment table, encoded directory) of a PAG.

    The single source of truth for the file layout — the writer streams
    exactly this, and ``segment_sizes`` reports its byte breakdown.
    """
    segs: List[Tuple[str, bytes]] = [
        (name, np.asarray(getattr(pag, attr), dtype=dtype).tobytes())
        for attr, name, dtype in _STRUCT_SEGS
    ]
    vspec, vsegs = _column_payloads("v", pag._vprops, include_per_rank)
    espec, esegs = _column_payloads("e", pag._eprops, include_per_rank)
    segs += vsegs + esegs

    table: Dict[str, List[int]] = {}
    off = 0
    for name, payload in segs:
        off = _align(off)
        table[name] = [off, len(payload)]
        off += len(payload)

    directory = {
        "name": pag.name,
        "metadata": meta_filter(pag.metadata),
        "strings": list(pag.strings),
        "segments": table,
        "vcols": vspec,
        "ecols": espec,
    }
    dir_b = json.dumps(directory, separators=(",", ":")).encode("utf-8")
    return segs, table, dir_b


def write_format3(
    pag: PAG, write: Callable[[bytes], None], include_per_rank: bool
) -> None:
    """Stream a PAG as a format-3 binary document to a bytes sink.

    The sink only ever sees forward writes (header, directory, padded
    segments in order), so the same function drives both ``save_pag``
    and the counting sink behind ``storage_size``.
    """
    from repro.cache.fingerprint import combine_digests, content_digest, metadata_digest

    segs, _table, dir_b = _layout(pag, include_per_rank)

    # The stamped fingerprint must equal the fingerprint of the graph a
    # loader reconstructs: metadata passes through meta_filter, and obj
    # cells through the serialize->decode round trip (json_safe may
    # summarize per-rank vectors when include_per_rank is off).
    content = content_digest(
        pag, obj_canon=lambda v: decode_value(json_safe(v, include_per_rank))
    )
    full = combine_digests(content, metadata_digest(meta_filter(pag.metadata)))

    write(_HEADER.pack(MAGIC, VERSION, 0, len(dir_b), pag.num_vertices, pag.num_edges))
    write(full.encode("ascii"))
    write(content.encode("ascii"))
    write(dir_b)
    pos = HEADER_SIZE + len(dir_b)
    write(b"\x00" * (_align(pos) - pos))
    pos = 0  # now relative to the data start
    for _name, payload in segs:
        aligned = _align(pos)
        write(b"\x00" * (aligned - pos))
        write(payload)
        pos = aligned + len(payload)


def segment_sizes(pag: PAG, include_per_rank: bool = False) -> Dict[str, int]:
    """Per-extent byte breakdown of the format-3 encoding of ``pag``.

    One entry per array segment plus ``header``, ``directory``, and
    ``padding`` (all alignment gaps).  Values sum to
    ``storage_size(pag, format=3)`` exactly.
    """
    segs, table, dir_b = _layout(pag, include_per_rank)
    out: Dict[str, int] = {"header": HEADER_SIZE, "directory": len(dir_b)}
    data_start = _align(HEADER_SIZE + len(dir_b))
    pad = data_start - HEADER_SIZE - len(dir_b)
    pos = 0
    for name, payload in segs:
        aligned = _align(pos)
        pad += aligned - pos
        out[name] = len(payload)
        pos = aligned + len(payload)
    out["padding"] = pad
    return out


# ----------------------------------------------------------------------
# header reader (the O(header) path)
# ----------------------------------------------------------------------
def _finish_header(
    head: bytes, read_dir: Callable[[int], bytes], total_size: int, origin: Any
) -> Dict[str, Any]:
    """Validate a fixed header + directory against ``total_size`` bytes.

    The shared core behind :func:`read_header` (file) and
    :func:`read_header_buffer` (in-memory image, e.g. a shared-memory
    block): ``head`` is the first ``HEADER_SIZE`` bytes, ``read_dir``
    yields the next ``dir_len`` bytes on demand, ``total_size`` bounds
    every segment extent.  Raises :class:`PAGFormatError` on anything
    truncated, misaligned, or out of bounds — so loaders can trust the
    segment table blindly.
    """
    if len(head) < HEADER_SIZE:
        raise PAGFormatError(
            f"truncated header ({len(head)} bytes, need {HEADER_SIZE})",
            path=origin,
            fmt=3,
        )
    magic, version, flags, dir_len, nv, ne = _HEADER.unpack(head[: _HEADER.size])
    if magic != MAGIC:
        raise PAGFormatError(f"bad magic {magic!r}", path=origin, fmt=3)
    if version != VERSION:
        raise PAGFormatError(f"unsupported version {version}", path=origin, fmt=3)
    full = head[_HEADER.size : _HEADER.size + _DIGEST_LEN]
    content = head[_HEADER.size + _DIGEST_LEN :]
    try:
        fingerprint = full.decode("ascii")
        content_hex = content.decode("ascii")
        int(fingerprint, 16), int(content_hex, 16)
    except ValueError as exc:
        raise PAGFormatError(
            "corrupt fingerprint field in header", path=origin, fmt=3
        ) from exc
    dir_b = read_dir(dir_len)
    if len(dir_b) < dir_len:
        raise PAGFormatError(
            f"truncated directory ({len(dir_b)} of {dir_len} bytes)",
            path=origin,
            fmt=3,
        )
    try:
        directory = json.loads(dir_b.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PAGFormatError(f"corrupt directory: {exc}", path=origin, fmt=3) from exc
    if not isinstance(directory, dict) or not isinstance(
        directory.get("segments"), dict
    ):
        raise PAGFormatError(
            "directory is not an object with a segment table", path=origin, fmt=3
        )
    data_start = _align(HEADER_SIZE + dir_len)
    for name, extent in directory["segments"].items():
        if (
            not isinstance(extent, list)
            or len(extent) != 2
            or not all(isinstance(x, int) and x >= 0 for x in extent)
        ):
            raise PAGFormatError(
                f"segment {name!r}: malformed extent", path=origin, fmt=3
            )
        rel, nbytes = extent
        if rel % ALIGN:
            raise PAGFormatError(
                f"segment {name!r}: offset {rel} not {ALIGN}-byte aligned",
                path=origin,
                fmt=3,
            )
        if data_start + rel + nbytes > total_size:
            raise PAGFormatError(
                f"segment {name!r}: extent [{rel}, +{nbytes}) past end of file",
                path=origin,
                fmt=3,
            )
    return {
        "version": version,
        "flags": flags,
        "num_vertices": nv,
        "num_edges": ne,
        "fingerprint": fingerprint,
        "content_digest": content_hex,
        "directory": directory,
        "data_start": data_start,
        "file_size": total_size,
    }


def read_header(path: Any) -> Dict[str, Any]:
    """Parse and validate a format-3 header + directory without touching
    any data segment.

    Returns ``{"version", "flags", "num_vertices", "num_edges",
    "fingerprint", "content_digest", "directory", "data_start",
    "file_size"}``.  Raises :class:`PAGFormatError` on a truncated or
    corrupt file, including any segment extent that is misaligned or
    out of bounds — so loaders can trust the table blindly.
    """
    with open(Path(path), "rb") as f:
        head = f.read(HEADER_SIZE)
        file_size = os.fstat(f.fileno()).st_size
        return _finish_header(head, f.read, file_size, path)


def read_header_buffer(buf: Any, source: Any = "<buffer>") -> Dict[str, Any]:
    """:func:`read_header` over an in-memory format-3 image.

    ``buf`` is any buffer holding the whole document (a ``bytes``
    object, a ``memoryview``, a ``multiprocessing.shared_memory``
    block's ``.buf``); segment extents are validated against its full
    length, so a loader can attach views without further bounds checks.
    """
    data = memoryview(buf)
    total = data.nbytes
    head = bytes(data[: min(HEADER_SIZE, total)])

    def read_dir(dir_len: int) -> bytes:
        return bytes(data[HEADER_SIZE : min(HEADER_SIZE + dir_len, total)])

    return _finish_header(head, read_dir, total, source)


def pag_file_fingerprint(path: Any) -> str:
    """Fingerprint of a saved format-3 PAG from its header alone.

    Costs O(header) — no column segment is read.  Counted on the
    ``pag.load.header_only`` metric; equals ``PAG.fingerprint()`` of
    the graph :func:`load_format3` would reconstruct, so cache probes
    can use it without opening the graph at all.
    """
    from repro.obs import metrics as _metrics

    fp = read_header(path)["fingerprint"]
    _metrics.counter("pag.load.header_only").inc()
    return fp


# ----------------------------------------------------------------------
# loader
# ----------------------------------------------------------------------
def _seg_view(buf, data_start: int, extent: List[int], dtype, path, name: str):
    rel, nbytes = extent
    itemsize = np.dtype(dtype).itemsize
    if nbytes % itemsize:
        raise PAGFormatError(
            f"segment {name!r}: {nbytes} bytes not a multiple of {itemsize}",
            path=path,
            fmt=3,
        )
    return np.frombuffer(
        buf, dtype=dtype, count=nbytes // itemsize, offset=data_start + rel
    )


def _build_pag(
    hdr: Dict[str, Any],
    buf: Any,
    origin: Any,
    backing: Optional[SegmentBacking],
    lazy: bool,
    readonly: bool = False,
) -> PAG:
    """Reconstruct a PAG from a validated header + the document's bytes.

    The shared core behind :func:`load_format3` (file / mmap) and
    :func:`load_format3_buffer` (in-memory image).  ``lazy`` attaches
    every array as a numpy view over ``buf`` (columns carry ``backing``
    and promote to heap copy-on-write); otherwise arrays are heap-owned
    copies.  ``readonly`` force-clears view writability — an
    ``ACCESS_READ`` mmap is born read-only, but a shared-memory
    block's ``memoryview`` is writable, and a worker scribbling on a
    zero-copy twin would corrupt every sibling's view of it.
    """
    directory = hdr["directory"]
    data_start = hdr["data_start"]
    nv, ne = hdr["num_vertices"], hdr["num_edges"]
    try:
        segments = directory["segments"]
        pag = PAG(directory["name"], dict(directory.get("metadata", {})))
        for s in directory["strings"]:
            pag.strings.intern(s)

        def view(name: str, dtype):
            arr = _seg_view(buf, data_start, segments[name], dtype, origin, name)
            if readonly and arr.flags.writeable:
                arr.flags.writeable = False
            return arr

        for attr, name, dtype in _STRUCT_SEGS:
            arr = view(name, dtype)
            if lazy:
                setattr(pag, attr, arr)
            else:
                heap = getattr(pag, attr)  # empty array of the right typecode
                heap.frombytes(arr.tobytes())
        if pag.num_vertices != nv or pag.num_edges != ne:
            raise PAGFormatError(
                f"header counts ({nv} vertices, {ne} edges) disagree with "
                f"segments ({pag.num_vertices}, {pag.num_edges})",
                path=origin,
                fmt=3,
            )
        pag._backing = backing
        pag._vprops.nrows = nv
        pag._eprops.nrows = ne

        for store, spec_key in ((pag._vprops, "vcols"), (pag._eprops, "ecols")):
            for key, spec in directory.get(spec_key, {}).items():
                tag = spec.get("t")
                if tag == "f" or tag == "i":
                    cls = FloatColumn if tag == "f" else IntColumn
                    col = cls.from_views(
                        view(spec["data"], cls.dtype),
                        view(spec["valid"], np.uint8),
                        backing,
                    )
                elif tag == "s":
                    col = StrColumn.from_views(
                        pag.strings, view(spec["sids"], np.int64), backing
                    )
                elif tag == "o":
                    col = ObjColumn()
                    col.cells = {
                        int(r): decode_value(v)
                        for r, v in zip(spec["rows"], spec["vals"])
                    }
                else:
                    raise PAGFormatError(
                        f"column {key!r}: unknown type tag {tag!r}",
                        path=origin,
                        fmt=3,
                    )
                store.columns[key] = col

        # Seed the fingerprint cache from the header: the loaded graph is
        # unmutated, so its cache key is exactly (nv, ne, 0, 0, 0) and its
        # content digest is the one the writer stamped.  A fingerprint()
        # call (or a cache probe in repro.cache.keys) therefore reads no
        # column data at all.
        pag._fp_cache = ((nv, ne, 0, 0, 0), hdr["content_digest"])
        return pag
    except PAGFormatError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise PAGFormatError(
            f"{type(exc).__name__}: {exc}", path=origin, fmt=3
        ) from exc


def load_format3(path: Any, use_mmap: bool = False) -> PAG:
    """Reconstruct a PAG from a format-3 file.

    With ``use_mmap`` every array attaches as a read-only lazy view
    over one shared ``mmap`` (columns promote to heap copy-on-write);
    otherwise the file is read once and everything is heap-owned.
    Either way the header's content digest seeds the fingerprint cache,
    so ``pag.fingerprint()`` on the unmutated graph reads zero columns.
    """
    hdr = read_header(path)
    backing: Optional[SegmentBacking] = None
    if use_mmap:
        f = open(Path(path), "rb")
        try:
            buf = _mmap.mmap(f.fileno(), 0, access=_mmap.ACCESS_READ)
        finally:
            f.close()  # the map holds its own reference to the file
        backing = SegmentBacking(buf, source=str(path))
    else:
        buf = Path(path).read_bytes()
    return _build_pag(hdr, buf, path, backing, lazy=use_mmap)


def load_format3_buffer(buf: Any, source: Any = "<buffer>") -> PAG:
    """Attach a PAG zero-copy over an in-memory format-3 image.

    The process-backend path: the coordinator streams ``write_format3``
    into a ``multiprocessing.shared_memory`` block once, and every
    worker reconstructs its read-only twin from the block's ``.buf``
    with this function — O(header) per attach, column pages fault in
    on first touch, and mutation promotes a column to a worker-local
    heap copy exactly like the mmap path (the block itself is never
    written).  The caller owns ``buf``'s lifetime and must keep the
    underlying block mapped for as long as the returned PAG lives.
    """
    hdr = read_header_buffer(buf, source=source)
    backing = SegmentBacking(buf, source=str(source))
    return _build_pag(hdr, buf, source, backing, lazy=True, readonly=True)

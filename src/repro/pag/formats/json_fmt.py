"""JSON PAG codecs: element-wise format 1 and columnar streaming format 2.

* **Format 2**: a columnar document mirroring the in-memory
  struct-of-arrays layout — the string table, dense structural code
  arrays, and one sparse ``rows``/``vals`` record per property column.
  It is produced by a single streaming pass over the columns; no
  per-element dict is ever materialized, and ``storage_size`` runs the
  same writer against a counting sink, so its result is byte-exact with
  what ``save_pag`` writes.
* **Format 1** (legacy, element-wise): still produced by
  :func:`pag_to_dict` and accepted by :func:`pag_from_dict` for
  compatibility.

Both decoders fully materialize the graph on the heap; the out-of-core
path is :mod:`repro.pag.formats.format3`.
"""

from __future__ import annotations

import json
from array import array
from typing import Any, Callable, Dict

from repro.pag.columns import FloatColumn, IntColumn, ObjColumn, StrColumn
from repro.pag.edge import CommKind, EdgeLabel
from repro.pag.formats.base import (
    PAGFormatError,
    decode_value,
    json_safe,
    meta_filter,
)
from repro.pag.graph import PAG
from repro.pag.vertex import CallKind, VertexLabel

import numpy as np

__all__ = ["pag_to_dict", "pag_from_dict", "write_format2"]


# ----------------------------------------------------------------------
# legacy element-wise form (format 1)
# ----------------------------------------------------------------------
def pag_to_dict(pag: PAG, include_per_rank: bool = False) -> Dict[str, Any]:
    """Element-wise serializable form of a PAG (legacy format 1)."""
    return {
        "name": pag.name,
        "metadata": meta_filter(pag.metadata),
        "vertices": [
            [
                v.label.value,
                v.name,
                v.call_kind.value if v.call_kind else None,
                json_safe(dict(v.properties), include_per_rank),
            ]
            for v in pag.vertices()
        ],
        "edges": [
            [
                e.src_id,
                e.dst_id,
                e.label.value,
                e.comm_kind.value if e.comm_kind else None,
                json_safe(dict(e.properties), include_per_rank),
            ]
            for e in pag.edges()
        ],
    }


def pag_from_dict(data: Dict[str, Any], path: Any = None) -> PAG:
    """Inverse of :func:`pag_to_dict` (per-rank vectors restored only if
    they were serialized with ``include_per_rank=True``).  Also accepts
    a parsed format-2 document.

    Structural defects (missing keys, wrong element shapes, out-of-range
    enum codes, …) raise :class:`PAGFormatError`; ``path`` only
    decorates that error message.
    """
    if not isinstance(data, dict):
        raise PAGFormatError(
            f"expected a JSON object at top level, got {type(data).__name__}",
            path=path,
        )
    fmt = data.get("format", 1)
    try:
        if fmt == 2:
            return _pag_from_columnar(data)
        pag = PAG(data["name"], dict(data.get("metadata", {})))
        for label, name, call_kind, props in data["vertices"]:
            pag.add_vertex(
                VertexLabel(label),
                name,
                CallKind(call_kind) if call_kind else None,
                {k: decode_value(v) for k, v in props.items()},
            )
        for src, dst, label, comm_kind, props in data["edges"]:
            pag.add_edge(
                src,
                dst,
                EdgeLabel(label),
                CommKind(comm_kind) if comm_kind else None,
                {k: decode_value(v) for k, v in props.items()},
            )
        return pag
    except PAGFormatError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, OverflowError, AttributeError) as exc:
        raise PAGFormatError(f"{type(exc).__name__}: {exc}", path=path, fmt=fmt) from exc


# ----------------------------------------------------------------------
# columnar streaming form (format 2)
# ----------------------------------------------------------------------
_CHUNK = 8192


def _write_array(write: Callable[[str], None], seq) -> None:
    """Stream a sequence as a JSON array in fixed-size chunks."""
    write("[")
    n = len(seq)
    for start in range(0, n, _CHUNK):
        chunk = seq[start : start + _CHUNK]
        # both array('q') and mmap-backed numpy views expose tolist()
        chunk = chunk.tolist() if hasattr(chunk, "tolist") else list(chunk)
        body = json.dumps(chunk, separators=(",", ":"))[1:-1]
        if start:
            write(",")
        write(body)
    write("]")


def _write_columns(
    write: Callable[[str], None], store, include_per_rank: bool
) -> None:
    write("{")
    first = True
    for key, col in store.columns.items():
        if isinstance(col, FloatColumn):
            rows = col.rows()
            data, _ = col.arrays(store.nrows)
            vals = np.round(data[rows], 9).tolist()
            tag = "f"
        elif isinstance(col, IntColumn):
            rows = col.rows()
            data, _ = col.arrays(store.nrows)
            vals = data[rows].tolist()
            tag = "i"
        elif isinstance(col, StrColumn):
            rows = col.rows()
            vals = col.sid_array(store.nrows)[rows].tolist()
            tag = "s"
        else:
            rows = col.rows()
            vals = [json_safe(col.cells[int(r)], include_per_rank) for r in rows]
            tag = "o"
        if not len(rows):
            continue
        if not first:
            write(",")
        first = False
        write(json.dumps(key))
        write(':{"t":"%s","rows":' % tag)
        _write_array(write, rows.tolist())
        write(',"vals":')
        _write_array(write, vals)
        write("}")
    write("}")


def write_format2(
    pag: PAG, write: Callable[[str], None], include_per_rank: bool
) -> None:
    """One streaming pass over the columns; never builds element dicts."""
    write('{"format":2,"name":')
    write(json.dumps(pag.name))
    write(',"metadata":')
    write(json.dumps(meta_filter(pag.metadata), separators=(",", ":")))
    write(',"strings":')
    _write_array(write, list(pag.strings))
    write(',"v":{"label":')
    _write_array(write, pag._v_label)
    write(',"kind":')
    _write_array(write, pag._v_kind)
    write(',"name":')
    _write_array(write, pag._v_name)
    write('},"e":{"src":')
    _write_array(write, pag._e_src)
    write(',"dst":')
    _write_array(write, pag._e_dst)
    write(',"label":')
    _write_array(write, pag._e_label)
    write(',"kind":')
    _write_array(write, pag._e_kind)
    write('},"vcols":')
    _write_columns(write, pag._vprops, include_per_rank)
    write(',"ecols":')
    _write_columns(write, pag._eprops, include_per_rank)
    write("}")


def _decode_column(cd: Dict[str, Any], strings, nrows: int):
    tag, rows, vals = cd["t"], cd["rows"], cd["vals"]
    if tag == "f":
        col = FloatColumn()
    elif tag == "i":
        col = IntColumn()
    elif tag == "s":
        col = StrColumn(strings)
        col._pad_to(nrows)
        for r, sid in zip(rows, vals):
            col.sids[r] = sid
        return col
    else:
        col = ObjColumn()
        col.cells = {r: decode_value(v) for r, v in zip(rows, vals)}
        return col
    col._pad_to(nrows)
    for r, v in zip(rows, vals):
        col.data[r] = v
        col.valid[r] = 1
    return col


def _pag_from_columnar(data: Dict[str, Any]) -> PAG:
    pag = PAG(data["name"], dict(data.get("metadata", {})))
    for s in data["strings"]:
        pag.strings.intern(s)
    v, e = data["v"], data["e"]
    pag._v_label = array("b", v["label"])
    pag._v_kind = array("b", v["kind"])
    pag._v_name = array("q", v["name"])
    pag._e_src = array("q", e["src"])
    pag._e_dst = array("q", e["dst"])
    pag._e_label = array("b", e["label"])
    pag._e_kind = array("b", e["kind"])
    pag._vprops.nrows = len(pag._v_label)
    pag._eprops.nrows = len(pag._e_src)
    for key, cd in data.get("vcols", {}).items():
        pag._vprops.columns[key] = _decode_column(cd, pag.strings, pag._vprops.nrows)
    for key, cd in data.get("ecols", {}).items():
        pag._eprops.columns[key] = _decode_column(cd, pag.strings, pag._eprops.nrows)
    return pag

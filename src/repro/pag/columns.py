"""Struct-of-arrays storage for PAG element properties.

The PAG stores what is fundamentally dense integer-indexed data: every
vertex/edge has a small id, and the hot properties (``time``, ``wait``,
``count``, comm bytes, PMU counters) are numbers attached to most
elements of a view.  Keeping a Python object plus a per-element
``properties`` dict for each of them costs hundreds of bytes per
element — far too much for Table-2-scale parallel views (10M+ vertices
for LAMMPS at 128 ranks).

This module provides the columnar core instead:

* :class:`StringTable` — an append-only interning table.  Names and
  string-valued properties (``debug-info``) repeat massively across a
  parallel view (one copy per flow), so each element stores an 8-byte
  id into the table instead of a pointer to its own string.
* Typed columns — :class:`FloatColumn`, :class:`IntColumn`,
  :class:`StrColumn` store one property across *all* elements as a
  dense ``array`` plus a validity byte-mask; :class:`ObjColumn` is the
  spill store for cold or odd-typed values (per-rank ``numpy`` vectors,
  dicts, bools, lists).
* :class:`ColumnStore` — the per-element-family (vertices / edges)
  column registry with dict-equivalent get/set/delete semantics, type
  inference on first write, migration to the spill column on type
  mismatch, and the bulk read/write paths the set layer and the
  embedding use.

Columns pad lazily: a column created or written at row *i* knows
nothing about rows past its physical length, which keeps ``add_row``
O(1) regardless of how many columns exist.  Bulk numeric reads go
through zero-copy ``numpy`` views (``np.frombuffer`` over the
``array``/``bytearray`` buffers), so sorting or summing a million-row
column never materializes per-element Python objects.

Columns are either **heap-owned** (``array``/``bytearray`` buffers the
column grows and mutates freely — the default) or **lazy views** over a
:class:`SegmentBacking`: read-only ``numpy`` views into an attached
buffer such as an mmap-ed format-3 file segment (or, in the future, a
``multiprocessing.shared_memory`` block).  Lazy columns serve every
read path zero-copy — the OS faults in only the pages a pass actually
touches — and promote to heap with a single copy-on-write
:meth:`~_TypedColumn._materialize` on the first mutation, so the
backing buffer is never written through.  Promotions are counted on
the ``pag.columns.materialized`` metric (attachments on
``pag.columns.lazy``).
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "StringTable",
    "SegmentBacking",
    "FloatColumn",
    "IntColumn",
    "StrColumn",
    "ObjColumn",
    "ColumnStore",
]

#: Sentinel id for "no string" in a :class:`StrColumn`.
NO_STRING = -1


class SegmentBacking:
    """Keeps the buffer behind a family of lazy columns alive.

    One backing exists per attached storage object — an ``mmap.mmap``
    over a format-3 file, a ``bytes`` blob, or a shared-memory block —
    and every lazy column view into it holds a reference, so the buffer
    cannot be released while any column still reads from it.  ``source``
    is a human-readable origin (usually the file path) surfaced by
    ``repro pag stats``.
    """

    __slots__ = ("buffer", "source")

    def __init__(self, buffer: Any, source: str = "") -> None:
        self.buffer = buffer
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentBacking({self.source or type(self.buffer).__name__})"


def _note_lazy(n: int = 1) -> None:
    from repro.obs import metrics as _metrics

    _metrics.counter("pag.columns.lazy").inc(n)


def _note_materialized(n: int = 1) -> None:
    from repro.obs import metrics as _metrics

    _metrics.counter("pag.columns.materialized").inc(n)


class StringTable:
    """Append-only string interning table shared by a PAG's columns.

    Interning is idempotent: the same string always maps to the same id,
    and ids are dense (``0..len-1``), so columns can store 8-byte ids
    and glob-style filters can match each *distinct* string once instead
    of once per element.
    """

    __slots__ = ("_strings", "_index")

    def __init__(self) -> None:
        self._strings: List[str] = []
        self._index: Dict[str, int] = {}

    def intern(self, s: str) -> int:
        sid = self._index.get(s)
        if sid is None:
            sid = len(self._strings)
            self._index[s] = sid
            self._strings.append(s)
        return sid

    def value(self, sid: int) -> str:
        return self._strings[sid]

    def find(self, s: str) -> Optional[int]:
        """Id of ``s`` if already interned, else ``None``."""
        return self._index.get(s)

    def __len__(self) -> int:
        return len(self._strings)

    def __iter__(self) -> Iterator[str]:
        return iter(self._strings)

    def matching_ids(self, predicate: Callable[[str], bool]) -> "set[int]":
        """Ids of all interned strings satisfying ``predicate``."""
        return {i for i, s in enumerate(self._strings) if predicate(s)}

    @property
    def nbytes(self) -> int:
        return sum(len(s) for s in self._strings) + 56 * len(self._strings)


def _np_view(buf, dtype) -> np.ndarray:
    """Zero-copy numpy view over an ``array``/``bytearray`` buffer.

    Lazy columns already hold numpy views (over an mmap segment), which
    pass straight through.  The view is only valid until the next append
    (a heap buffer may reallocate), so callers create it per bulk
    operation and never cache it.
    """
    if isinstance(buf, np.ndarray):
        return buf
    if len(buf) == 0:
        return np.empty(0, dtype=dtype)
    return np.frombuffer(buf, dtype=dtype, count=len(buf))


class _TypedColumn:
    """Dense typed storage + validity mask; base of float/int columns.

    Storage is either heap-owned (``array`` + ``bytearray``) or a lazy
    read-only view pair over a :class:`SegmentBacking`; see
    :meth:`from_views` and :meth:`_materialize`.
    """

    __slots__ = ("data", "valid", "_backing")

    typecode = "d"
    dtype = np.float64
    kind = "f"

    def __init__(self) -> None:
        self.data = array(self.typecode)
        self.valid = bytearray()
        self._backing: Optional[SegmentBacking] = None

    # -- backing store ---------------------------------------------------
    @classmethod
    def from_views(
        cls,
        data: np.ndarray,
        valid: np.ndarray,
        backing: Optional[SegmentBacking] = None,
    ) -> "_TypedColumn":
        """Build a column over existing buffers.

        With ``backing`` the column stays a *lazy view*: reads go
        straight to the (typically mmap-ed) buffer and the first
        mutation promotes to heap.  Without it the views are copied into
        heap storage immediately (the eager-load path).
        """
        col = cls()
        if backing is not None:
            col.data = data
            col.valid = valid
            col._backing = backing
            _note_lazy()
        else:
            col.data.frombytes(data.tobytes())
            col.valid = bytearray(valid.tobytes())
        return col

    @property
    def is_lazy(self) -> bool:
        return self._backing is not None

    def _materialize(self) -> None:
        """Copy-on-write promotion: replace lazy views with heap buffers.

        The backing segment is never written through — a PAG loaded
        from an mmap-ed file can be mutated freely without corrupting
        the file (or any other reader of the same map).
        """
        if self._backing is None:
            return
        heap = array(self.typecode)
        heap.frombytes(np.ascontiguousarray(self.data).tobytes())
        self.data = heap
        self.valid = bytearray(np.ascontiguousarray(self.valid).tobytes())
        self._backing = None
        _note_materialized()

    # -- sizing ----------------------------------------------------------
    def _pad_to(self, n: int) -> None:
        """Grow physical storage to cover rows ``0..n-1``."""
        short = n - len(self.data)
        if short > 0:
            self._materialize()
            self.data.extend([0] * short)
            self.valid.extend(b"\x00" * short)

    # -- scalar access ---------------------------------------------------
    def get(self, i: int) -> Any:
        if i < len(self.valid) and self.valid[i]:
            return self.data[i]
        return None

    def set(self, i: int, value: Any) -> None:
        self._materialize()
        self._pad_to(i + 1)
        self.data[i] = value
        self.valid[i] = 1

    def unset(self, i: int) -> None:
        if i < len(self.valid):
            self._materialize()
            self.valid[i] = 0

    def has(self, i: int) -> bool:
        return i < len(self.valid) and bool(self.valid[i])

    def can_store(self, value: Any) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- bulk access -----------------------------------------------------
    def rows(self) -> np.ndarray:
        """Row indices that hold a value."""
        return np.nonzero(_np_view(self.valid, np.uint8))[0]

    def arrays(self, nrows: int) -> Tuple[np.ndarray, np.ndarray]:
        """(values, valid-mask) zero-copy views covering ``nrows`` rows."""
        self._pad_to(nrows)
        return (
            _np_view(self.data, self.dtype)[:nrows],
            _np_view(self.valid, np.uint8)[:nrows].view(bool),
        )

    def values_at(self, ids: Sequence[int]) -> List[Any]:
        get = self.get
        return [get(i) for i in ids]

    def set_bulk(self, rows: np.ndarray, values: np.ndarray) -> None:
        if len(rows) == 0:
            return
        self._materialize()
        self._pad_to(int(rows.max()) + 1)
        data = _np_view(self.data, self.dtype)
        data[rows] = values
        _np_view(self.valid, np.uint8)[rows] = 1

    def items(self) -> Iterator[Tuple[int, Any]]:
        for i, ok in enumerate(self.valid):
            if ok:
                yield i, self.data[i]

    def gather(self, ids: Sequence[int]) -> "_TypedColumn":
        out = type(self)()
        n = len(self.valid)
        for i in ids:
            if i < n and self.valid[i]:
                out.data.append(self.data[i])
                out.valid.append(1)
            else:
                out.data.append(0)
                out.valid.append(0)
        return out

    def copy(self) -> "_TypedColumn":
        out = type(self)()
        # tobytes/bytearray(...) work on both heap arrays and lazy numpy
        # views, so a copy is always heap-owned (never shares the
        # backing segment)
        out.data.frombytes(self.data.tobytes())
        out.valid = bytearray(self.valid)
        return out

    @property
    def nbytes(self) -> int:
        return self.data.itemsize * len(self.data) + len(self.valid)


class FloatColumn(_TypedColumn):
    typecode = "d"
    dtype = np.float64
    kind = "f"

    def can_store(self, value: Any) -> bool:
        return isinstance(value, float) and not isinstance(value, bool)

    def set(self, i: int, value: Any) -> None:
        super().set(i, float(value))

    def get(self, i: int) -> Optional[float]:
        if i < len(self.valid) and self.valid[i]:
            return float(self.data[i])
        return None


class IntColumn(_TypedColumn):
    typecode = "q"
    dtype = np.int64
    kind = "i"

    def can_store(self, value: Any) -> bool:
        # bool is an int subclass but must keep its type through a
        # round-trip (the spill column preserves it).
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        return -(2 ** 63) <= value < 2 ** 63

    def get(self, i: int) -> Optional[int]:
        if i < len(self.valid) and self.valid[i]:
            return int(self.data[i])
        return None


class StrColumn:
    """Interned-string column: one 8-byte table id per row.

    Like the typed columns, the sid array is either heap-owned or a
    lazy read-only view over a :class:`SegmentBacking` with
    copy-on-write promotion.
    """

    __slots__ = ("sids", "strings", "_backing")

    kind = "s"

    def __init__(self, strings: StringTable) -> None:
        self.sids = array("q")
        self.strings = strings
        self._backing: Optional[SegmentBacking] = None

    # -- backing store ---------------------------------------------------
    @classmethod
    def from_views(
        cls,
        strings: StringTable,
        sids: np.ndarray,
        backing: Optional[SegmentBacking] = None,
    ) -> "StrColumn":
        col = cls(strings)
        if backing is not None:
            col.sids = sids
            col._backing = backing
            _note_lazy()
        else:
            col.sids.frombytes(sids.tobytes())
        return col

    @property
    def is_lazy(self) -> bool:
        return self._backing is not None

    def _materialize(self) -> None:
        if self._backing is None:
            return
        heap = array("q")
        heap.frombytes(np.ascontiguousarray(self.sids).tobytes())
        self.sids = heap
        self._backing = None
        _note_materialized()

    def _pad_to(self, n: int) -> None:
        short = n - len(self.sids)
        if short > 0:
            self._materialize()
            self.sids.extend([NO_STRING] * short)

    def get(self, i: int) -> Optional[str]:
        if i < len(self.sids):
            sid = self.sids[i]
            if sid != NO_STRING:
                return self.strings.value(sid)
        return None

    def set(self, i: int, value: str) -> None:
        self._materialize()
        self._pad_to(i + 1)
        self.sids[i] = self.strings.intern(value)

    def unset(self, i: int) -> None:
        if i < len(self.sids):
            self._materialize()
            self.sids[i] = NO_STRING

    def has(self, i: int) -> bool:
        return i < len(self.sids) and self.sids[i] != NO_STRING

    def can_store(self, value: Any) -> bool:
        return isinstance(value, str)

    def rows(self) -> np.ndarray:
        return np.nonzero(_np_view(self.sids, np.int64) != NO_STRING)[0]

    def sid_array(self, nrows: int) -> np.ndarray:
        self._pad_to(nrows)
        return _np_view(self.sids, np.int64)[:nrows]

    def values_at(self, ids: Sequence[int]) -> List[Optional[str]]:
        get = self.get
        return [get(i) for i in ids]

    def items(self) -> Iterator[Tuple[int, str]]:
        value = self.strings.value
        for i, sid in enumerate(self.sids):
            if sid != NO_STRING:
                yield i, value(sid)

    def gather(self, ids: Sequence[int]) -> "StrColumn":
        out = StrColumn(self.strings)
        n = len(self.sids)
        out.sids.extend(self.sids[i] if i < n else NO_STRING for i in ids)
        return out

    def copy(self) -> "StrColumn":
        out = StrColumn(self.strings)
        out.sids.frombytes(self.sids.tobytes())
        return out

    @property
    def nbytes(self) -> int:
        return 8 * len(self.sids)


class ObjColumn:
    """Spill storage for cold / odd-typed properties (dict row -> value)."""

    __slots__ = ("cells",)

    kind = "o"

    def __init__(self) -> None:
        self.cells: Dict[int, Any] = {}

    def get(self, i: int) -> Any:
        return self.cells.get(i)

    def set(self, i: int, value: Any) -> None:
        self.cells[i] = value

    def unset(self, i: int) -> None:
        self.cells.pop(i, None)

    def has(self, i: int) -> bool:
        return i in self.cells

    def can_store(self, value: Any) -> bool:
        return True

    def rows(self) -> np.ndarray:
        return np.array(sorted(self.cells), dtype=np.int64)

    def values_at(self, ids: Sequence[int]) -> List[Any]:
        get = self.cells.get
        return [get(i) for i in ids]

    def items(self) -> Iterator[Tuple[int, Any]]:
        return iter(sorted(self.cells.items()))

    def gather(self, ids: Sequence[int]) -> "ObjColumn":
        out = ObjColumn()
        get = self.cells.get
        missing = object()
        for new, old in enumerate(ids):
            val = get(old, missing)
            if val is not missing:
                out.cells[new] = val
        return out

    def copy(self) -> "ObjColumn":
        out = ObjColumn()
        out.cells = dict(self.cells)
        return out

    @property
    def nbytes(self) -> int:
        # dict entry overhead approximation + numpy payloads we can see
        size = 104 * len(self.cells)
        for v in self.cells.values():
            if isinstance(v, np.ndarray):
                size += v.nbytes
        return size


def _infer_column(value: Any, strings: StringTable):
    if isinstance(value, bool):
        return ObjColumn()
    if isinstance(value, float):
        return FloatColumn()
    if isinstance(value, int):
        col = IntColumn()
        # ints beyond int64 can't live in the dense column
        return col if col.can_store(value) else ObjColumn()
    if isinstance(value, str):
        return StrColumn(strings)
    return ObjColumn()


class ColumnStore:
    """All property columns of one element family (vertices or edges).

    Provides dict-equivalent semantics per row — ``get`` returns ``None``
    for absent keys (matching ``dict.get``), ``delete`` raises
    ``KeyError`` for absent ones (matching ``del d[k]``) — plus the bulk
    paths used by the set layer, the embedding, and serialization.

    A column's type is inferred from the first value written.  Writing a
    value a typed column cannot hold (e.g. an ``int`` into a float
    column, which would silently change the value's type) migrates the
    whole column to the spill :class:`ObjColumn`, preserving every
    existing value exactly.
    """

    __slots__ = ("columns", "strings", "nrows", "version")

    def __init__(self, strings: StringTable) -> None:
        self.columns: Dict[str, Any] = {}
        self.strings = strings
        self.nrows = 0
        #: Mutation counter: bumped on every write/delete so the owning
        #: PAG can tell whether a cached fingerprint is still valid.
        self.version = 0

    # -- rows ------------------------------------------------------------
    def add_rows(self, n: int = 1) -> None:
        self.nrows += n

    # -- scalar access ---------------------------------------------------
    def get(self, row: int, key: str) -> Any:
        col = self.columns.get(key)
        return col.get(row) if col is not None else None

    def set(self, row: int, key: str, value: Any) -> None:
        self.version += 1
        col = self.columns.get(key)
        if col is None:
            col = _infer_column(value, self.strings)
            self.columns[key] = col
        elif not col.can_store(value):
            col = self._spill(key, col)
        col.set(row, value)

    def delete(self, row: int, key: str) -> None:
        col = self.columns.get(key)
        if col is None or not col.has(row):
            raise KeyError(key)
        self.version += 1
        col.unset(row)

    def has(self, row: int, key: str) -> bool:
        col = self.columns.get(key)
        return col is not None and col.has(row)

    def keys_at(self, row: int) -> Iterator[str]:
        for key, col in self.columns.items():
            if col.has(row):
                yield key

    def _spill(self, key: str, col: Any) -> ObjColumn:
        out = ObjColumn()
        for i, v in col.items():
            out.cells[i] = v
        self.columns[key] = out
        return out

    # -- bulk access -----------------------------------------------------
    def column(self, key: str):
        return self.columns.get(key)

    def values(self, key: str, ids: Sequence[int]) -> List[Any]:
        """Property values for ``ids`` in order (``None`` where absent)."""
        col = self.columns.get(key)
        if col is None:
            return [None] * len(ids)
        return col.values_at(ids)

    def numeric(self, key: str, ids, default: float = 0.0) -> np.ndarray:
        """Float view of a property over ``ids``; non-numeric/absent
        values read as ``default`` (the ``sort_by`` convention)."""
        ids = np.asarray(ids, dtype=np.int64)
        col = self.columns.get(key)
        if col is None:
            return np.full(len(ids), default)
        if isinstance(col, (FloatColumn, IntColumn)):
            data, valid = col.arrays(self.nrows)
            out = data[ids].astype(np.float64)
            out[~valid[ids]] = default
            return out
        if isinstance(col, StrColumn):
            return np.full(len(ids), default)
        vals = col.values_at(ids)
        return np.array(
            [
                float(v) if isinstance(v, (int, float)) else default
                for v in vals
            ]
        )

    def set_numeric_bulk(self, key: str, rows, values, integer: bool = False) -> None:
        """Bulk-write a numeric column (the embedding's write path).

        Falls back to scalar writes when the key already spilled to an
        object column.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return
        self.version += 1
        col = self.columns.get(key)
        if col is None:
            col = IntColumn() if integer else FloatColumn()
            self.columns[key] = col
        if isinstance(col, (FloatColumn, IntColumn)):
            col.set_bulk(rows, np.asarray(values, dtype=col.dtype))
            return
        for r, v in zip(rows, values):
            self.set(int(r), key, int(v) if integer else float(v))

    def set_obj_bulk(self, key: str, rows: Iterable[int], values: Iterable[Any]) -> None:
        self.version += 1
        col = self.columns.get(key)
        if not isinstance(col, ObjColumn):
            if col is None:
                col = ObjColumn()
                self.columns[key] = col
            else:
                col = self._spill(key, col)
        cells = col.cells
        for r, v in zip(rows, values):
            cells[int(r)] = v

    # -- whole-store operations ------------------------------------------
    def gather(self, ids: Sequence[int], strings: Optional[StringTable] = None) -> "ColumnStore":
        """A new store holding rows ``ids`` (renumbered densely)."""
        out = ColumnStore(strings if strings is not None else self.strings)
        out.nrows = len(ids)
        for key, col in self.columns.items():
            out.columns[key] = col.gather(ids)
        return out

    def copy(self) -> "ColumnStore":
        out = ColumnStore(self.strings)
        out.nrows = self.nrows
        for key, col in self.columns.items():
            out.columns[key] = col.copy()
        return out

    def memory_stats(self) -> Dict[str, int]:
        return {key: col.nbytes for key, col in self.columns.items()}

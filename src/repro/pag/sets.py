"""Sets of PAG vertices and edges — the data of PerFlowGraph edges.

Paper §4.2: the intermediate results flowing between passes are *sets*
of PAG vertices and/or edges.  §4.3.1 defines the set-operation API:
element sorting, filtering, classification, and the usual intersection,
union, complement, and difference.  For a pass built purely from set
operations, outputs are subsets of inputs; graph operations may add new
elements.

Both set types preserve insertion order and deduplicate by element id,
so ``sort_by(m).top(n)`` (Listing 3) is deterministic.

Storage: a set whose elements all belong to one PAG is *columnar* — it
holds only the owning graph plus an ``int64`` id-array, and the algebra
(union/intersection/difference), ``sort_by``, ``select`` and the bulk
:meth:`values` API run as O(n) vectorized array operations without ever
materializing element handles.  Sets mixing PAGs or holding detached
elements fall back to a *legacy* handle-list representation with the
original per-element semantics.  Identity is keyed on the owning PAG's
monotonically assigned ``token`` (never reused, unlike ``id(pag)``,
which can collide after garbage collection reuses an address).
"""

from __future__ import annotations

import fnmatch
from typing import Any, Callable, Dict, Generic, Iterable, Iterator, List, Optional, TypeVar

import numpy as np

from repro.obs import metrics as _obs_metrics
from repro.pag.columns import FloatColumn, IntColumn, StrColumn, _np_view
from repro.pag.edge import COMMKIND_CODE, ELABEL_CODE, CommKind, Edge, EdgeLabel
from repro.pag.vertex import (
    CALLKIND_CODE,
    VLABEL_CODE,
    VLABELS,
    CallKind,
    Vertex,
    VertexLabel,
)

T = TypeVar("T", Vertex, Edge)

#: Direction selectors for :meth:`EdgeSet.select`, mirroring the paper's
#: ``v.es.select(IN_EDGE)`` (Listing 7 line 13).
IN_EDGE = "in"
OUT_EDGE = "out"

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: Storage-path hit counters (``repro.obs``): every set construction is
#: either *columnar* (id-array over one PAG — the fast path) or *legacy*
#: (handle list — mixed PAGs / detached elements).  The counters make the
#: fast/slow-path split visible in exported metrics; an increment is one
#: attribute add, cheap enough for this hot path.
_COLUMNAR_HITS = _obs_metrics.counter("pag.sets.columnar")
_LEGACY_HITS = _obs_metrics.counter("pag.sets.legacy")


def _stable_unique(a: np.ndarray) -> np.ndarray:
    """Deduplicate preserving first-occurrence order."""
    if len(a) <= 1:
        return a
    _, first = np.unique(a, return_index=True)
    if len(first) == len(a):
        return a
    first.sort()
    return a[first]


def _membership(query: np.ndarray, ids: np.ndarray, universe: int) -> np.ndarray:
    """Boolean mask over ``query``: which entries appear in ``ids``.

    Uses a bitset over the owning PAG when the operands are a sizable
    fraction of it (O(n) overall), a sort-based ``np.isin`` otherwise
    (small sets over huge graphs should not pay an O(|PAG|) allocation).
    """
    if len(ids) == 0 or len(query) == 0:
        return np.zeros(len(query), dtype=bool)
    if universe and len(ids) + len(query) >= universe // 8:
        bits = np.zeros(universe, dtype=bool)
        bits[ids] = True
        return bits[query]
    return np.isin(query, ids)


class _ElementSet(Generic[T]):
    """Ordered, deduplicated collection of PAG elements."""

    __slots__ = ("_pag", "_ids", "_els", "_members")

    #: Element class of this set family (Vertex or Edge); set in subclasses.
    _ELEMENT: type = object

    def __init__(self, elements: Iterable[T] = ()):  # noqa: D107
        pag = None
        ids: List[int] = []
        seen: set = set()
        els: Optional[List[T]] = None
        for el in elements:
            if els is None:
                p = el.pag
                if p is not None and (pag is None or p is pag):
                    pag = p
                    i = el.id
                    if i not in seen:
                        seen.add(i)
                        ids.append(i)
                    continue
                # mixed PAGs or a detached element: switch to legacy mode
                if pag is not None:
                    att = self._ELEMENT._attached
                    els = [att(pag, i) for i in ids]
                    token = pag.token
                    seen = {(token, i) for i in ids}
                else:
                    els = []
                    seen = set()
            key = (el._token(), el.id)
            if key not in seen:
                seen.add(key)
                els.append(el)
        if els is None:
            self._pag = pag
            self._ids = np.array(ids, dtype=np.int64) if ids else _EMPTY_IDS
            self._els = None
            _COLUMNAR_HITS.value += 1
        else:
            self._pag = None
            self._ids = None
            self._els = els
            _LEGACY_HITS.value += 1
        self._members = None

    @classmethod
    def _from_ids(cls, pag, ids: np.ndarray) -> "_ElementSet[T]":
        """Internal columnar constructor; ``ids`` must already be deduped."""
        s = object.__new__(cls)
        s._pag = pag
        s._ids = ids
        s._els = None
        s._members = None
        _COLUMNAR_HITS.value += 1
        return s

    @classmethod
    def from_ids(cls, pag, ids: Iterable[int]) -> "_ElementSet[T]":
        """Build a set from element ids of ``pag`` (bulk API).

        Ids are deduplicated preserving first-occurrence order, matching
        the constructor's semantics.
        """
        arr = np.asarray(ids if isinstance(ids, np.ndarray) else list(ids), dtype=np.int64)
        return cls._from_ids(pag, _stable_unique(arr))

    # -- internal helpers --------------------------------------------------
    def _handles(self) -> List[T]:
        if self._els is not None:
            return self._els
        pag = self._pag
        att = self._ELEMENT._attached
        return [att(pag, int(i)) for i in self._ids]

    def _keyset(self) -> set:
        if self._els is not None:
            return {(e._token(), e.id) for e in self._els}
        token = self._pag.token if self._pag is not None else 0
        return {(token, int(i)) for i in self._ids}

    def _id_members(self):
        if self._members is None:
            self._members = frozenset(self._ids.tolist())
        return self._members

    def _nrows(self) -> int:
        """Universe size (row count of this element family in the PAG)."""
        raise NotImplementedError

    def _columnar_with(self, *others: "_ElementSet[T]") -> bool:
        """True when all operands are columnar over one common PAG."""
        if self._els is not None:
            return False
        pag = self._pag
        for o in others:
            if o._els is not None:
                return False
            if o._pag is not None:
                if pag is None:
                    pag = o._pag
                elif o._pag is not pag:
                    return False
        return True

    def _common_pag(self, *others: "_ElementSet[T]"):
        if self._pag is not None:
            return self._pag
        for o in others:
            if o._pag is not None:
                return o._pag
        return None

    # -- container protocol ------------------------------------------------
    def __iter__(self) -> Iterator[T]:
        if self._els is not None:
            return iter(self._els)
        pag = self._pag
        att = self._ELEMENT._attached
        return (att(pag, int(i)) for i in self._ids)

    def __len__(self) -> int:
        if self._els is not None:
            return len(self._els)
        return len(self._ids)

    def __getitem__(self, idx):
        if self._els is not None:
            if isinstance(idx, slice):
                return type(self)(self._els[idx])
            return self._els[idx]
        if isinstance(idx, slice):
            return type(self)._from_ids(self._pag, self._ids[idx])
        return self._ELEMENT._attached(self._pag, int(self._ids[idx]))

    def __contains__(self, el: object) -> bool:
        if self._els is not None:
            return any(e is el or e == el for e in self._els)
        if not isinstance(el, self._ELEMENT):
            return False
        if el._pag is not self._pag or self._pag is None:
            return False
        return el.id in self._id_members()

    def __bool__(self) -> bool:
        return len(self) > 0

    def to_list(self) -> List[T]:
        if self._els is not None:
            return list(self._els)
        return self._handles()

    def ids(self) -> np.ndarray:
        """Element ids in set order as an ``int64`` array (bulk API)."""
        if self._els is not None:
            return np.fromiter((e.id for e in self._els), dtype=np.int64, count=len(self._els))
        return self._ids.copy()

    # -- set algebra ---------------------------------------------------------
    def union(self, *others: "_ElementSet[T]") -> "_ElementSet[T]":
        if self._columnar_with(*others):
            pag = self._common_pag(*others)
            arrays = [self._ids] + [o._ids for o in others]
            cat = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
            return type(self)._from_ids(pag, _stable_unique(cat))
        out: List[T] = list(self._handles())
        for other in others:
            out.extend(other._handles())
        return type(self)(out)

    def intersection(self, other: "_ElementSet[T]") -> "_ElementSet[T]":
        if self._columnar_with(other):
            pag = self._common_pag(other)
            if pag is None:
                return type(self)._from_ids(None, _EMPTY_IDS)
            mask = _membership(self._ids, other._ids, self._nrows())
            return type(self)._from_ids(pag, self._ids[mask])
        keys = other._keyset()
        return type(self)(e for e in self._handles() if (e._token(), e.id) in keys)

    def difference(self, other: "_ElementSet[T]") -> "_ElementSet[T]":
        if self._columnar_with(other):
            pag = self._pag
            if pag is None:
                return type(self)._from_ids(None, _EMPTY_IDS)
            if other._pag is not None and other._pag is pag:
                mask = _membership(self._ids, other._ids, self._nrows())
                return type(self)._from_ids(pag, self._ids[~mask])
            return type(self)._from_ids(pag, self._ids)
        keys = other._keyset()
        return type(self)(e for e in self._handles() if (e._token(), e.id) not in keys)

    def complement(self, universe: "_ElementSet[T]") -> "_ElementSet[T]":
        """Elements of ``universe`` not in this set."""
        return universe.difference(self)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _ElementSet):
            return NotImplemented
        if (
            self._els is None
            and other._els is None
            and self._pag is other._pag
        ):
            if len(self._ids) != len(other._ids):
                return False
            return bool(np.array_equal(np.sort(self._ids), np.sort(other._ids)))
        return self._keyset() == other._keyset()

    def __hash__(self):  # sets are mutable-ish views; keep them unhashable
        raise TypeError(f"{type(self).__name__} is unhashable")

    # -- ordering / selection ------------------------------------------------
    def sort_by(self, metric: str, reverse: bool = True) -> "_ElementSet[T]":
        """Sort by a property value, descending by default (hotspot order).

        Elements missing the metric sort as 0.  The sort is stable, so
        ties keep their original relative order either way.
        """
        if self._els is None:
            if self._pag is None or len(self._ids) == 0:
                return type(self)._from_ids(self._pag, self._ids)
            vals = self._numeric_column(metric)
            order = np.argsort(-vals if reverse else vals, kind="stable")
            return type(self)._from_ids(self._pag, self._ids[order])

        def key(el: T) -> float:
            val = el[metric]
            return float(val) if isinstance(val, (int, float)) else 0.0

        return type(self)(sorted(self._els, key=key, reverse=reverse))

    def top(self, n: int) -> "_ElementSet[T]":
        """First ``n`` elements (combine with :meth:`sort_by`, Listing 3)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if self._els is None:
            return type(self)._from_ids(self._pag, self._ids[:n])
        return type(self)(self._els[:n])

    def filter(self, predicate: Callable[[T], bool]) -> "_ElementSet[T]":
        if self._els is None:
            pag = self._pag
            att = self._ELEMENT._attached
            kept = [int(i) for i in self._ids if predicate(att(pag, int(i)))]
            return type(self)._from_ids(pag, np.array(kept, dtype=np.int64))
        return type(self)(e for e in self._els if predicate(e))

    def classify(self, key: Callable[[T], Any]) -> Dict[Any, "_ElementSet[T]"]:
        """Partition the set by a key function (the classification op of §4.3.1)."""
        if self._els is None:
            pag = self._pag
            att = self._ELEMENT._attached
            id_groups: Dict[Any, List[int]] = {}
            for i in self._ids:
                i = int(i)
                id_groups.setdefault(key(att(pag, i)), []).append(i)
            return {
                k: type(self)._from_ids(pag, np.array(v, dtype=np.int64))
                for k, v in id_groups.items()
            }
        groups: Dict[Any, List[T]] = {}
        for el in self._els:
            groups.setdefault(key(el), []).append(el)
        return {k: type(self)(v) for k, v in groups.items()}

    # -- bulk property access -------------------------------------------------
    def values(self, key: str) -> List[Any]:
        """Property values in set order (bulk API; ``None`` where absent).

        Equivalent to ``[el[key] for el in self]`` but reads the owning
        PAG's columns directly for columnar sets.
        """
        if self._els is not None:
            return [el[key] for el in self._els]
        if self._pag is None or len(self._ids) == 0:
            return []
        return self._bulk_values(key)

    def map_property(self, metric: str) -> List[Any]:
        """Property values in set order (alias of :meth:`values`)."""
        return self.values(metric)

    def _bulk_values(self, key: str) -> List[Any]:
        raise NotImplementedError

    def _numeric_column(self, metric: str) -> np.ndarray:
        """Float values aligned with ``self._ids``; non-numeric reads as 0."""
        raise NotImplementedError

    def sum(self, metric: str) -> float:
        if self._els is None:
            if self._pag is None or len(self._ids) == 0:
                return 0.0
            return float(self._numeric_column(metric).sum())
        total = 0.0
        for el in self._els:
            val = el[metric]
            if isinstance(val, (int, float)):
                total += val
        return total

    def _prop_mask(self, store, ids: np.ndarray, key: str, want: Any) -> np.ndarray:
        """Vectorized ``el[key] == want`` over typed columns where possible."""
        col = store.column(key)
        if isinstance(col, (FloatColumn, IntColumn)) and isinstance(
            want, (int, float)
        ) and not isinstance(want, bool):
            data, valid = col.arrays(store.nrows)
            return valid[ids] & (data[ids] == want)
        if isinstance(col, StrColumn) and isinstance(want, str):
            sid = store.strings.find(want)
            return col.sid_array(store.nrows)[ids] == (-2 if sid is None else sid)
        if col is None:
            # missing property reads as None everywhere
            return np.full(len(ids), want is None)
        vals = col.values_at(ids)
        return np.fromiter((v == want for v in vals), dtype=bool, count=len(ids))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self)} elements)"


class VertexSet(_ElementSet[Vertex]):
    """A set of PAG vertices."""

    _ELEMENT = Vertex

    def _nrows(self) -> int:
        return self._pag.num_vertices if self._pag is not None else 0

    def _bulk_values(self, key: str) -> List[Any]:
        pag = self._pag
        ids = self._ids
        if key == "name":
            sids = _np_view(pag._v_name, np.int64)[ids]
            value = pag.strings.value
            return [value(int(s)) for s in sids]
        if key == "type":
            labels = _np_view(pag._v_label, np.int8)[ids]
            kinds = _np_view(pag._v_kind, np.int8)[ids]
            is_mpi = (labels == _CALL_CODE) & (kinds == _COMM_CODE)
            label_values = _VLABEL_VALUES
            return [
                "mpi" if m else label_values[c]
                for m, c in zip(is_mpi.tolist(), labels.tolist())
            ]
        return pag._vprops.values(key, ids)

    def _numeric_column(self, metric: str) -> np.ndarray:
        if metric in ("name", "type"):
            return np.zeros(len(self._ids))
        return self._pag._vprops.numeric(metric, self._ids, 0.0)

    def select(
        self,
        name: Optional[str] = None,
        label: Optional[VertexLabel] = None,
        call_kind: Optional[CallKind] = None,
        **props: Any,
    ) -> "VertexSet":
        """Filter by name glob (``"MPI_*"``), label, call kind, or property.

        This is the "filter" set operation of §4.3.1: e.g.
        ``V.select(name="MPI_*")`` keeps communication vertices and
        ``V.select(name="istream::read")`` keeps IO vertices.

        On a columnar set this runs vectorized: label/kind compare code
        arrays, the name glob is matched once per *distinct* interned
        string, and typed property columns compare in bulk.
        """
        if self._els is None:
            pag = self._pag
            if pag is None or len(self._ids) == 0:
                return VertexSet._from_ids(pag, _EMPTY_IDS)
            ids = self._ids
            mask = np.ones(len(ids), dtype=bool)
            if label is not None:
                mask &= _np_view(pag._v_label, np.int8)[ids] == VLABEL_CODE[label]
            if call_kind is not None:
                mask &= _np_view(pag._v_kind, np.int8)[ids] == CALLKIND_CODE[call_kind]
            if name is not None:
                lookup = np.zeros(max(len(pag.strings), 1), dtype=bool)
                match = pag.strings.matching_ids(
                    lambda s: fnmatch.fnmatchcase(s, name)
                )
                if match:
                    lookup[list(match)] = True
                mask &= lookup[_np_view(pag._v_name, np.int64)[ids]]
            for key, want in props.items():
                if not mask.any():
                    break
                if key == "name" or key == "type":
                    vals = VertexSet._from_ids(pag, ids)._bulk_values(key)
                    mask &= np.fromiter(
                        (v == want for v in vals), dtype=bool, count=len(ids)
                    )
                else:
                    mask &= self._prop_mask(pag._vprops, ids, key, want)
            return VertexSet._from_ids(pag, ids[mask])

        def ok(v: Vertex) -> bool:
            if name is not None and not fnmatch.fnmatchcase(v.name, name):
                return False
            if label is not None and v.label is not label:
                return False
            if call_kind is not None and v.call_kind is not call_kind:
                return False
            for key, want in props.items():
                if v[key] != want:
                    return False
            return True

        return VertexSet(v for v in self._els if ok(v))

    @property
    def pag(self):
        """The PAG that the (first) element belongs to.

        Listing 6 uses ``V.pag`` to hand the environment graph to a graph
        algorithm.  Mixed-PAG sets return the first element's graph.
        """
        if self._els is not None:
            return self._els[0].pag if self._els else None
        return self._pag if len(self._ids) else None


class EdgeSet(_ElementSet[Edge]):
    """A set of PAG edges."""

    _ELEMENT = Edge

    def _nrows(self) -> int:
        return self._pag.num_edges if self._pag is not None else 0

    def _bulk_values(self, key: str) -> List[Any]:
        return self._pag._eprops.values(key, self._ids)

    def _numeric_column(self, metric: str) -> np.ndarray:
        return self._pag._eprops.numeric(metric, self._ids, 0.0)

    def select(
        self,
        direction: Optional[str] = None,
        type: Optional[EdgeLabel] = None,  # noqa: A002 - paper API name
        comm_kind: Optional[CommKind] = None,
        of: Optional[Vertex] = None,
        **props: Any,
    ) -> "EdgeSet":
        """Filter edges by direction relative to ``of``, label, or property.

        ``select(IN_EDGE, of=v)`` keeps edges entering ``v``;
        ``select(type=EdgeLabel.INTER_PROCESS)`` keeps communication edges
        (the paper's ``in_es.select(type=pflow.COMM)``, Listing 7).
        """
        if self._els is None:
            pag = self._pag
            if pag is None or len(self._ids) == 0:
                return EdgeSet._from_ids(pag, _EMPTY_IDS)
            ids = self._ids
            mask = np.ones(len(ids), dtype=bool)
            if direction == IN_EDGE and of is not None:
                mask &= _np_view(pag._e_dst, np.int64)[ids] == of.id
            if direction == OUT_EDGE and of is not None:
                mask &= _np_view(pag._e_src, np.int64)[ids] == of.id
            if type is not None:
                mask &= _np_view(pag._e_label, np.int8)[ids] == ELABEL_CODE[type]
            if comm_kind is not None:
                mask &= _np_view(pag._e_kind, np.int8)[ids] == COMMKIND_CODE[comm_kind]
            for key, want in props.items():
                if not mask.any():
                    break
                mask &= self._prop_mask(pag._eprops, ids, key, want)
            return EdgeSet._from_ids(pag, ids[mask])

        def ok(e: Edge) -> bool:
            if direction == IN_EDGE and of is not None and e.dst_id != of.id:
                return False
            if direction == OUT_EDGE and of is not None and e.src_id != of.id:
                return False
            if type is not None and e.label is not type:
                return False
            if comm_kind is not None and e.comm_kind is not comm_kind:
                return False
            for key, want in props.items():
                if e[key] != want:
                    return False
            return True

        return EdgeSet(e for e in self._els if ok(e))

    def sources(self) -> VertexSet:
        if self._els is None:
            if self._pag is None or len(self._ids) == 0:
                return VertexSet._from_ids(None, _EMPTY_IDS)
            vids = _np_view(self._pag._e_src, np.int64)[self._ids]
            return VertexSet._from_ids(self._pag, _stable_unique(vids))
        return VertexSet(e.src for e in self._els)

    def destinations(self) -> VertexSet:
        if self._els is None:
            if self._pag is None or len(self._ids) == 0:
                return VertexSet._from_ids(None, _EMPTY_IDS)
            vids = _np_view(self._pag._e_dst, np.int64)[self._ids]
            return VertexSet._from_ids(self._pag, _stable_unique(vids))
        return VertexSet(e.dst for e in self._els)


#: Precomputed codes for the vectorized ``"type"`` pseudo-property.
_CALL_CODE = VLABEL_CODE[VertexLabel.CALL]
_COMM_CODE = CALLKIND_CODE[CallKind.COMM]
_VLABEL_VALUES = [label.value for label in VLABELS]

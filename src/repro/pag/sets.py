"""Sets of PAG vertices and edges — the data of PerFlowGraph edges.

Paper §4.2: the intermediate results flowing between passes are *sets*
of PAG vertices and/or edges.  §4.3.1 defines the set-operation API:
element sorting, filtering, classification, and the usual intersection,
union, complement, and difference.  For a pass built purely from set
operations, outputs are subsets of inputs; graph operations may add new
elements.

Both set types preserve insertion order and deduplicate by element id,
so ``sort_by(m).top(n)`` (Listing 3) is deterministic.
"""

from __future__ import annotations

import fnmatch
from typing import Any, Callable, Dict, Generic, Iterable, Iterator, List, Optional, TypeVar

from repro.pag.edge import CommKind, Edge, EdgeLabel
from repro.pag.vertex import CallKind, Vertex, VertexLabel

T = TypeVar("T", Vertex, Edge)

#: Direction selectors for :meth:`EdgeSet.select`, mirroring the paper's
#: ``v.es.select(IN_EDGE)`` (Listing 7 line 13).
IN_EDGE = "in"
OUT_EDGE = "out"


class _ElementSet(Generic[T]):
    """Ordered, deduplicated collection of PAG elements."""

    def __init__(self, elements: Iterable[T] = ()):  # noqa: D107
        self._elements: List[T] = []
        seen = set()
        for el in elements:
            key = (id(el.pag), el.id)
            if key not in seen:
                seen.add(key)
                self._elements.append(el)

    # -- container protocol ------------------------------------------------
    def __iter__(self) -> Iterator[T]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return type(self)(self._elements[idx])
        return self._elements[idx]

    def __contains__(self, el: object) -> bool:
        return any(e is el or e == el for e in self._elements)

    def __bool__(self) -> bool:
        return bool(self._elements)

    def to_list(self) -> List[T]:
        return list(self._elements)

    # -- set algebra ---------------------------------------------------------
    def union(self, *others: "_ElementSet[T]") -> "_ElementSet[T]":
        out: List[T] = list(self._elements)
        for other in others:
            out.extend(other._elements)
        return type(self)(out)

    def intersection(self, other: "_ElementSet[T]") -> "_ElementSet[T]":
        keys = {(id(e.pag), e.id) for e in other._elements}
        return type(self)(e for e in self._elements if (id(e.pag), e.id) in keys)

    def difference(self, other: "_ElementSet[T]") -> "_ElementSet[T]":
        keys = {(id(e.pag), e.id) for e in other._elements}
        return type(self)(e for e in self._elements if (id(e.pag), e.id) not in keys)

    def complement(self, universe: "_ElementSet[T]") -> "_ElementSet[T]":
        """Elements of ``universe`` not in this set."""
        return universe.difference(self)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _ElementSet):
            return NotImplemented
        mine = {(id(e.pag), e.id) for e in self._elements}
        theirs = {(id(e.pag), e.id) for e in other._elements}
        return mine == theirs

    def __hash__(self):  # sets are mutable-ish views; keep them unhashable
        raise TypeError(f"{type(self).__name__} is unhashable")

    # -- ordering / selection ------------------------------------------------
    def sort_by(self, metric: str, reverse: bool = True) -> "_ElementSet[T]":
        """Sort by a property value, descending by default (hotspot order).

        Elements missing the metric sort as 0.
        """

        def key(el: T) -> float:
            val = el[metric]
            return float(val) if isinstance(val, (int, float)) else 0.0

        return type(self)(sorted(self._elements, key=key, reverse=reverse))

    def top(self, n: int) -> "_ElementSet[T]":
        """First ``n`` elements (combine with :meth:`sort_by`, Listing 3)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return type(self)(self._elements[:n])

    def filter(self, predicate: Callable[[T], bool]) -> "_ElementSet[T]":
        return type(self)(e for e in self._elements if predicate(e))

    def classify(self, key: Callable[[T], Any]) -> Dict[Any, "_ElementSet[T]"]:
        """Partition the set by a key function (the classification op of §4.3.1)."""
        groups: Dict[Any, List[T]] = {}
        for el in self._elements:
            groups.setdefault(key(el), []).append(el)
        return {k: type(self)(v) for k, v in groups.items()}

    def map_property(self, metric: str) -> List[Any]:
        """Property values in set order (convenience for reports/benches)."""
        return [el[metric] for el in self._elements]

    def sum(self, metric: str) -> float:
        total = 0.0
        for el in self._elements:
            val = el[metric]
            if isinstance(val, (int, float)):
                total += val
        return total

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._elements)} elements)"


class VertexSet(_ElementSet[Vertex]):
    """A set of PAG vertices."""

    def select(
        self,
        name: Optional[str] = None,
        label: Optional[VertexLabel] = None,
        call_kind: Optional[CallKind] = None,
        **props: Any,
    ) -> "VertexSet":
        """Filter by name glob (``"MPI_*"``), label, call kind, or property.

        This is the "filter" set operation of §4.3.1: e.g.
        ``V.select(name="MPI_*")`` keeps communication vertices and
        ``V.select(name="istream::read")`` keeps IO vertices.
        """

        def ok(v: Vertex) -> bool:
            if name is not None and not fnmatch.fnmatchcase(v.name, name):
                return False
            if label is not None and v.label is not label:
                return False
            if call_kind is not None and v.call_kind is not call_kind:
                return False
            for key, want in props.items():
                if v[key] != want:
                    return False
            return True

        return VertexSet(v for v in self._elements if ok(v))

    @property
    def pag(self):
        """The PAG that the (first) element belongs to.

        Listing 6 uses ``V.pag`` to hand the environment graph to a graph
        algorithm.  Mixed-PAG sets return the first element's graph.
        """
        return self._elements[0].pag if self._elements else None


class EdgeSet(_ElementSet[Edge]):
    """A set of PAG edges."""

    def select(
        self,
        direction: Optional[str] = None,
        type: Optional[EdgeLabel] = None,  # noqa: A002 - paper API name
        comm_kind: Optional[CommKind] = None,
        of: Optional[Vertex] = None,
        **props: Any,
    ) -> "EdgeSet":
        """Filter edges by direction relative to ``of``, label, or property.

        ``select(IN_EDGE, of=v)`` keeps edges entering ``v``;
        ``select(type=EdgeLabel.INTER_PROCESS)`` keeps communication edges
        (the paper's ``in_es.select(type=pflow.COMM)``, Listing 7).
        """

        def ok(e: Edge) -> bool:
            if direction == IN_EDGE and of is not None and e.dst_id != of.id:
                return False
            if direction == OUT_EDGE and of is not None and e.src_id != of.id:
                return False
            if type is not None and e.label is not type:
                return False
            if comm_kind is not None and e.comm_kind is not comm_kind:
                return False
            for key, want in props.items():
                if e[key] != want:
                    return False
            return True

        return EdgeSet(e for e in self._elements if ok(e))

    def sources(self) -> VertexSet:
        return VertexSet(e.src for e in self._elements)

    def destinations(self) -> VertexSet:
        return VertexSet(e.dst for e in self._elements)

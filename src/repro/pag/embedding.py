"""Performance-data embedding (paper §3.3, Fig. 3).

Each piece of dynamic data carries a calling context; embedding walks
the context from ``main`` down the top-down view and attaches the data
to the vertex it resolves to.  Our runtime identifies contexts with the
same path keys the static analysis assigns, so resolution is a
dictionary lookup with longest-prefix fallback (contexts below a
recursion cut-off resolve to the deepest expanded ancestor — the same
behaviour as the paper's search).

After raw accumulation, inclusive times are aggregated bottom-up over
the tree: a loop's ``time`` is its body's time, a function's is its
whole subtree — which is what hotspot ranking expects.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ir.static_analysis import Path, StaticAnalysisResult
from repro.pag.graph import PAG
from repro.pag.vertex import Vertex
from repro.runtime.records import RunResult


def resolve_calling_context(
    static_result: StaticAnalysisResult, path: Path
) -> Optional[Vertex]:
    """Resolve a calling context to its top-down-view vertex (Fig. 3)."""
    return static_result.vertex_for_path(path)


def embed_samples(
    static_result: StaticAnalysisResult,
    run: RunResult,
    pmu_rates: Optional[Dict[str, float]] = None,
) -> PAG:
    """Embed a run's performance data into the top-down view.

    Sets on every vertex that received data (and, via bottom-up
    aggregation, on every ancestor):

    * ``time`` — inclusive time summed over ranks/threads,
    * ``excl_time`` — exclusive time,
    * ``wait`` — wait time inside communication / lock calls,
    * ``count`` — executions (iterations for loops, calls for calls),
    * ``time_per_rank`` / ``wait_per_rank`` — inclusive per-rank vectors
      (numpy arrays of length ``nprocs``), the inputs of the imbalance
      and breakdown passes,
    * ``comm-info`` — ``{"bytes": total}`` on communication vertices,
    * synthesized PMU counters (``cycles``, ``instructions``, …).

    Returns the (mutated) top-down PAG for chaining.
    """
    from repro.runtime.sampler import DEFAULT_PMU_RATES

    rates = dict(pmu_rates or DEFAULT_PMU_RATES)
    pag = static_result.pag
    nprocs = run.nprocs
    nv = pag.num_vertices
    excl = np.zeros(nv)
    wait = np.zeros(nv)
    counts = np.zeros(nv, dtype=np.int64)
    nbytes = np.zeros(nv)
    excl_per_rank = np.zeros((nv, nprocs))
    wait_per_rank = np.zeros((nv, nprocs))
    bytes_per_rank = np.zeros((nv, nprocs))

    unresolved = 0
    for path, per_unit in run.vertex_stats.items():
        v = static_result.vertex_for_path(path)
        if v is None:
            unresolved += 1
            continue
        vid = v.id
        for (rank, _thread), stat in per_unit.items():
            excl[vid] += stat.time
            wait[vid] += stat.wait
            counts[vid] += stat.count
            nbytes[vid] += stat.nbytes
            excl_per_rank[vid, rank] += stat.time
            wait_per_rank[vid, rank] += stat.wait
            bytes_per_rank[vid, rank] += stat.nbytes

    # Bottom-up inclusive aggregation.  Vertex ids are assigned in
    # pre-order by the static expander, so iterating ids in reverse visits
    # children before parents; each tree vertex has exactly one parent.
    incl = excl.copy()
    incl_per_rank = excl_per_rank.copy()
    wait_incl = wait.copy()
    wait_incl_per_rank = wait_per_rank.copy()
    parent = np.full(nv, -1, dtype=np.int64)
    for e in pag.edges():
        parent[e.dst_id] = e.src_id
    for vid in range(nv - 1, 0, -1):
        p = parent[vid]
        if p >= 0:
            incl[p] += incl[vid]
            incl_per_rank[p] += incl_per_rank[vid]
            wait_incl[p] += wait_incl[vid]
            wait_incl_per_rank[p] += wait_incl_per_rank[vid]

    for vid in range(nv):
        if incl[vid] == 0.0 and counts[vid] == 0:
            continue
        v = pag.vertex(vid)
        v["time"] = float(incl[vid])
        v["excl_time"] = float(excl[vid])
        v["wait"] = float(wait_incl[vid])
        v["count"] = int(counts[vid])
        v["time_per_rank"] = incl_per_rank[vid].copy()
        v["wait_per_rank"] = wait_incl_per_rank[vid].copy()
        if v.is_comm():
            v["comm-info"] = {"bytes": float(nbytes[vid])}
            v["bytes_per_rank"] = bytes_per_rank[vid].copy()
        compute_time = excl[vid] - wait[vid]
        if compute_time > 0:
            for name, rate in rates.items():
                v[name] = compute_time * rate

    pag.metadata["nprocs"] = nprocs
    pag.metadata["nthreads"] = run.nthreads
    pag.metadata["elapsed"] = run.elapsed
    pag.metadata["unresolved_contexts"] = unresolved
    return pag

"""Performance-data embedding (paper §3.3, Fig. 3).

Each piece of dynamic data carries a calling context; embedding walks
the context from ``main`` down the top-down view and attaches the data
to the vertex it resolves to.  Our runtime identifies contexts with the
same path keys the static analysis assigns, so resolution is a
dictionary lookup with longest-prefix fallback (contexts below a
recursion cut-off resolve to the deepest expanded ancestor — the same
behaviour as the paper's search).

After raw accumulation, inclusive times are aggregated bottom-up over
the tree: a loop's ``time`` is its body's time, a function's is its
whole subtree — which is what hotspot ranking expects.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ir.static_analysis import Path, StaticAnalysisResult
from repro.pag.columns import _np_view
from repro.pag.graph import PAG
from repro.pag.vertex import CALLKIND_CODE, VLABEL_CODE, CallKind, Vertex, VertexLabel
from repro.runtime.records import RunResult


def resolve_calling_context(
    static_result: StaticAnalysisResult, path: Path
) -> Optional[Vertex]:
    """Resolve a calling context to its top-down-view vertex (Fig. 3)."""
    return static_result.vertex_for_path(path)


def embed_samples(
    static_result: StaticAnalysisResult,
    run: RunResult,
    pmu_rates: Optional[Dict[str, float]] = None,
) -> PAG:
    """Embed a run's performance data into the top-down view.

    Sets on every vertex that received data (and, via bottom-up
    aggregation, on every ancestor):

    * ``time`` — inclusive time summed over ranks/threads,
    * ``excl_time`` — exclusive time,
    * ``wait`` — wait time inside communication / lock calls,
    * ``count`` — executions (iterations for loops, calls for calls),
    * ``time_per_rank`` / ``wait_per_rank`` — inclusive per-rank vectors
      (numpy arrays of length ``nprocs``), the inputs of the imbalance
      and breakdown passes,
    * ``comm-info`` — ``{"bytes": total}`` on communication vertices,
    * synthesized PMU counters (``cycles``, ``instructions``, …).

    Returns the (mutated) top-down PAG for chaining.
    """
    from repro.runtime.sampler import DEFAULT_PMU_RATES

    rates = dict(pmu_rates or DEFAULT_PMU_RATES)
    pag = static_result.pag
    nprocs = run.nprocs
    nv = pag.num_vertices
    excl = np.zeros(nv)
    wait = np.zeros(nv)
    counts = np.zeros(nv, dtype=np.int64)
    nbytes = np.zeros(nv)
    excl_per_rank = np.zeros((nv, nprocs))
    wait_per_rank = np.zeros((nv, nprocs))
    bytes_per_rank = np.zeros((nv, nprocs))

    unresolved = 0
    for path, per_unit in run.vertex_stats.items():
        v = static_result.vertex_for_path(path)
        if v is None:
            unresolved += 1
            continue
        vid = v.id
        for (rank, _thread), stat in per_unit.items():
            excl[vid] += stat.time
            wait[vid] += stat.wait
            counts[vid] += stat.count
            nbytes[vid] += stat.nbytes
            excl_per_rank[vid, rank] += stat.time
            wait_per_rank[vid, rank] += stat.wait
            bytes_per_rank[vid, rank] += stat.nbytes

    # Bottom-up inclusive aggregation.  Vertex ids are assigned in
    # pre-order by the static expander, so iterating ids in reverse visits
    # children before parents; each tree vertex has exactly one parent.
    incl = excl.copy()
    incl_per_rank = excl_per_rank.copy()
    wait_incl = wait.copy()
    wait_incl_per_rank = wait_per_rank.copy()
    parent = np.full(nv, -1, dtype=np.int64)
    if pag.num_edges:
        parent[_np_view(pag._e_dst, np.int64)] = _np_view(pag._e_src, np.int64)
    for vid in range(nv - 1, 0, -1):
        p = parent[vid]
        if p >= 0:
            incl[p] += incl[vid]
            incl_per_rank[p] += incl_per_rank[vid]
            wait_incl[p] += wait_incl[vid]
            wait_incl_per_rank[p] += wait_incl_per_rank[vid]

    # Bulk write-out: scalar metrics land in typed columns in one pass,
    # per-rank vectors and comm-info stay per-row in the spill column.
    rows = np.nonzero((incl != 0.0) | (counts != 0))[0]
    vp = pag._vprops
    vp.set_numeric_bulk("time", rows, incl[rows])
    vp.set_numeric_bulk("excl_time", rows, excl[rows])
    vp.set_numeric_bulk("wait", rows, wait_incl[rows])
    vp.set_numeric_bulk("count", rows, counts[rows], integer=True)
    vp.set_obj_bulk("time_per_rank", rows, (incl_per_rank[r].copy() for r in rows))
    vp.set_obj_bulk(
        "wait_per_rank", rows, (wait_incl_per_rank[r].copy() for r in rows)
    )
    if len(rows):
        is_comm = (
            _np_view(pag._v_label, np.int8) == VLABEL_CODE[VertexLabel.CALL]
        ) & (_np_view(pag._v_kind, np.int8) == CALLKIND_CODE[CallKind.COMM])
        comm_rows = rows[is_comm[rows]]
        vp.set_obj_bulk(
            "comm-info", comm_rows, ({"bytes": float(nbytes[r])} for r in comm_rows)
        )
        vp.set_obj_bulk(
            "bytes_per_rank", comm_rows, (bytes_per_rank[r].copy() for r in comm_rows)
        )
        compute_time = excl - wait
        pmu_rows = rows[compute_time[rows] > 0]
        for name, rate in rates.items():
            vp.set_numeric_bulk(name, pmu_rows, compute_time[pmu_rows] * rate)

    pag.metadata["nprocs"] = nprocs
    pag.metadata["nthreads"] = run.nthreads
    pag.metadata["elapsed"] = run.elapsed
    pag.metadata["unresolved_contexts"] = unresolved
    return pag

"""The two PAG views (paper §3.4).

*Top-down view*: intra- and inter-procedural edges only — the static
structure tree rooted at the entry function, with performance data
embedded (Fig. 4).  Produced by :func:`build_top_down_view`, which runs
static analysis (completing indirect calls from the run's trace) and
embeds the run's data.

*Parallel view*: one *flow* per process (optionally per thread) — the
pre-order vertex sequence of the top-down view — plus inter-process
edges for every communication and inter-thread edges for every lock
wait (Fig. 5).  |V| of the parallel view is exactly
``|V|top-down × flows`` (Table 2's parallel-view columns are top-down
counts × 128 processes).

Parallel views at thousands of ranks do not fit in object-per-vertex
form, so :func:`parallel_view_stats` computes |V|/|E| in O(events)
without materializing — validated against the materialized builder in
the test suite.
"""

from __future__ import annotations

from array import array
from typing import Dict, Optional, Tuple

import numpy as np

from repro.ir.model import Program
from repro.ir.static_analysis import StaticAnalysisResult, analyze
from repro.obs.log import get_logger
from repro.obs.trace import span as _span
from repro.pag.columns import NO_STRING, IntColumn, ObjColumn, StrColumn
from repro.pag.edge import ELABEL_CODE, NO_KIND, CommKind, EdgeLabel
from repro.pag.embedding import embed_samples
from repro.pag.graph import PAG
from repro.runtime.records import RunResult

_LOG = get_logger("pag.views")


def build_top_down_view(
    program: Program,
    run: Optional[RunResult] = None,
) -> Tuple[PAG, StaticAnalysisResult]:
    """Static structure extraction + performance-data embedding.

    With ``run`` given, indirect call sites are expanded with the traced
    targets and the run's data is embedded; without it, the result is the
    purely static structure (unresolved indirect calls marked).
    """
    with _span("pag.top_down", category="pag", program=program.name) as sp:
        static_result = analyze(program, run.indirect_targets if run else None)
        if run is not None:
            with _span("pag.embed", category="pag"):
                embed_samples(static_result, run)
        if sp:
            sp.set(
                vertices=static_result.pag.num_vertices,
                edges=static_result.pag.num_edges,
            )
    return static_result.pag, static_result


def build_parallel_view(
    top_down: PAG,
    static_result: StaticAnalysisResult,
    run: RunResult,
    max_ranks: Optional[int] = None,
    expand_threads: bool = False,
) -> PAG:
    """Materialize the parallel view (Fig. 5).

    Parameters
    ----------
    max_ranks:
        Build flows only for ranks ``< max_ranks`` (events whose endpoints
        fall outside are dropped).  The paper plots partial parallel views
        for the same reason.
    expand_threads:
        Replicate one flow per (rank, thread) instead of per rank, with
        per-thread times — needed for the inter-thread analyses (Vite).

    Per-flow vertex properties: ``process``, ``thread``, exclusive
    ``time`` / ``wait`` / ``count`` of that unit at that context.
    """
    nprocs = run.nprocs if max_ranks is None else min(run.nprocs, max_ranks)
    # Spawned threads are numbered from 1 (0 is the rank's main thread),
    # so thread expansion needs nthreads + 1 flows per rank.
    nthreads = run.nthreads + 1 if expand_threads else 1
    ntd = top_down.num_vertices
    pv = PAG(
        top_down.name.replace("/top-down", "") + "/parallel",
        {
            "view": "parallel",
            "program": top_down.metadata.get("program"),
            "nprocs": nprocs,
            "nthreads": nthreads,
        },
    )

    # Share the top-down view's string table: every flow repeats the same
    # names/debug-info, so the parallel view's name column is a direct
    # copy of interned ids with no re-hashing.  The table is append-only,
    # so sharing is safe for both graphs.
    pv.strings = top_down.strings
    pv._vprops.strings = pv.strings
    pv._eprops.strings = pv.strings

    # Tree-edge labels for flow construction: child id -> (parent id, label
    # code), read straight from the structural arrays.
    tree_parent: Dict[int, Tuple[int, int]] = {}
    td_esrc, td_edst, td_elab = top_down._e_src, top_down._e_dst, top_down._e_label
    for i in range(len(td_esrc)):
        tree_parent[td_edst[i]] = (td_esrc[i], td_elab[i])

    def flow_vid(td_vid: int, rank: int, thread: int) -> int:
        return (rank * nthreads + thread) * ntd + td_vid

    # 1) replicate flows (vertex ids are assigned in pre-order by the
    #    static expander, so ascending id order *is* the pre-order flow).
    #    The whole step is block-wise: the top-down structural arrays are
    #    tiled once per flow, and the per-flow edge pattern — consecutive
    #    pre-order vertices, keeping the tree edge's label when descending
    #    into a child, else intra-procedural — is computed once and offset
    #    per flow.
    with _span("pv.flows", category="pag", flows=nprocs * nthreads) as fsp:
        flows = nprocs * nthreads
        intra_code = ELABEL_CODE[EdgeLabel.INTRA_PROCEDURAL]
        flow_src = array("q")
        flow_dst = array("q")
        flow_lab = array("b")
        for td_vid in range(1, ntd):
            parent = tree_parent.get(td_vid)
            flow_src.append(td_vid - 1)
            flow_dst.append(td_vid)
            flow_lab.append(
                parent[1] if parent is not None and parent[0] == td_vid - 1 else intra_code
            )
        flow_kind = array("b", [NO_KIND]) * (ntd - 1)
        src_np = np.frombuffer(flow_src, dtype=np.int64) if ntd > 1 else None
        dst_np = np.frombuffer(flow_dst, dtype=np.int64) if ntd > 1 else None

        # vertex property columns filled block-wise: process/thread are dense
        # int columns, debug-info is the tiled top-down column.
        proc_col = IntColumn()
        thread_col = IntColumn()
        td_dbg = top_down.vs.values("debug-info")
        dbg_is_str = all(x is None or isinstance(x, str) for x in td_dbg)
        if dbg_is_str:
            dbg_template = array(
                "q",
                (pv.strings.intern(x) if x is not None else NO_STRING for x in td_dbg),
            )
            dbg_col: object = StrColumn(pv.strings)
        else:
            dbg_col = ObjColumn()

        for rank in range(nprocs):
            for thread in range(nthreads):
                offset = (rank * nthreads + thread) * ntd
                pv._v_label.extend(top_down._v_label)
                pv._v_kind.extend(top_down._v_kind)
                pv._v_name.extend(top_down._v_name)
                proc_col.data.extend(array("q", [rank]) * ntd)
                thread_col.data.extend(array("q", [thread]) * ntd)
                if dbg_is_str:
                    dbg_col.sids.extend(dbg_template)
                else:
                    for td_vid, val in enumerate(td_dbg):
                        if val is not None:
                            dbg_col.cells[offset + td_vid] = val
                if ntd > 1:
                    pv._e_src.frombytes((src_np + offset).tobytes())
                    pv._e_dst.frombytes((dst_np + offset).tobytes())
                    pv._e_label.extend(flow_lab)
                    pv._e_kind.extend(flow_kind)

        proc_col.valid = bytearray(b"\x01" * (ntd * flows))
        thread_col.valid = bytearray(b"\x01" * (ntd * flows))
        pv._vprops.columns["process"] = proc_col
        pv._vprops.columns["thread"] = thread_col
        pv._vprops.columns["debug-info"] = dbg_col
        pv._vprops.add_rows(ntd * flows)
        pv._eprops.add_rows((ntd - 1) * flows if ntd > 1 else 0)
        assert pv.num_vertices == ntd * flows
        if fsp:
            fsp.set(vertices=pv.num_vertices, flow_edges=pv.num_edges)

    # 2) per-unit performance data.
    with _span("pv.perf_data", category="pag") as psp:
        embedded = 0
        for path, per_unit in run.vertex_stats.items():
            v = static_result.vertex_for_path(path)
            if v is None:
                continue
            for (rank, thread), stat in per_unit.items():
                if rank >= nprocs:
                    continue
                tslot = thread if expand_threads and thread < nthreads else 0
                nv = pv.vertex(flow_vid(v.id, rank, tslot))
                nv["time"] = (nv["time"] or 0.0) + stat.time
                nv["wait"] = (nv["wait"] or 0.0) + stat.wait
                nv["count"] = (nv["count"] or 0) + stat.count
                embedded += 1
        if psp:
            psp.set(stats_embedded=embedded)

    # 3) inter-process edges from communication events.
    def event_vid(path, rank: int) -> Optional[int]:
        if path is None or rank < 0 or rank >= nprocs:
            return None
        v = static_result.vertex_for_path(path)
        if v is None:
            return None
        return flow_vid(v.id, rank, 0)

    with _span("pv.comm_edges", category="pag", events=len(run.comm_events)) as csp:
        before = pv.num_edges
        for ev in run.comm_events:
            if ev.participants is not None:
                # Collective: star from the last-arriving rank to every other
                # participant (the causal direction backtracking follows).
                src = event_vid(ev.src_path, ev.src_rank)
                if src is None:
                    continue
                for rank, path, _arrival, wait in ev.participants:
                    if rank == ev.src_rank:
                        continue
                    dst = event_vid(path, rank)
                    if dst is None:
                        continue
                    pv.add_edge(
                        src,
                        dst,
                        EdgeLabel.INTER_PROCESS,
                        CommKind.COLLECTIVE,
                        {"comm_time": ev.t_complete, "wait_time": wait, "comm_bytes": ev.nbytes},
                    )
            else:
                src = event_vid(ev.src_path, ev.src_rank)
                dst = event_vid(ev.dst_path, ev.dst_rank)
                if src is None or dst is None:
                    continue
                kind = CommKind.P2P_SYNC if ev.op.value == "MPI_Recv" else CommKind.P2P_ASYNC
                pv.add_edge(
                    src,
                    dst,
                    EdgeLabel.INTER_PROCESS,
                    kind,
                    {
                        "comm_bytes": ev.nbytes,
                        "wait_time": ev.wait_time,
                        "comm_time": ev.t_complete,
                    },
                )
        if csp:
            csp.set(edges_added=pv.num_edges - before)

    # 4) inter-thread edges from lock waits (holder -> waiter).
    with _span("pv.lock_edges", category="pag", events=len(run.lock_events)) as lsp:
        before = pv.num_edges
        for lk in run.lock_events:
            if lk.rank >= nprocs:
                continue
            hv = static_result.vertex_for_path(lk.holder_path)
            wv = static_result.vertex_for_path(lk.waiter_path)
            if hv is None or wv is None:
                continue
            ht = lk.holder_thread if expand_threads and lk.holder_thread < nthreads else 0
            wt = lk.waiter_thread if expand_threads and lk.waiter_thread < nthreads else 0
            pv.add_edge(
                flow_vid(hv.id, lk.rank, ht),
                flow_vid(wv.id, lk.rank, wt),
                EdgeLabel.INTER_THREAD,
                properties={"wait_time": lk.wait_time, "lock": lk.lock},
            )
        if lsp:
            lsp.set(edges_added=pv.num_edges - before)

    _LOG.info(
        "built parallel view %s: |V|=%d |E|=%d (%d flows)",
        pv.name,
        pv.num_vertices,
        pv.num_edges,
        nprocs * nthreads,
    )
    return pv


def slice_parallel_view(
    pv: PAG,
    ranks: Optional[Tuple[int, ...]] = None,
    names: Optional[Tuple[str, ...]] = None,
    around: Optional[Tuple[int, ...]] = None,
    hops: int = 2,
) -> PAG:
    """Extract a partial parallel view for presentation (Figs. 10/12/16).

    The paper's figures show *partial* parallel views — "we hide
    irrelevant inter-process and inter-thread edges for better
    representation".  This helper slices a full view down to:

    * flows of ``ranks`` (all ranks if omitted), intersected with
    * vertices whose name is in ``names`` (all names if omitted), union
    * the ``hops``-neighborhood of the ``around`` vertex ids (BFS over
      all edge types).

    Returns the induced subgraph (new ids; originals in each vertex's
    ``orig_id`` property).
    """
    from repro.algorithms.traversal import bfs

    keep = set()
    for v in pv.vertices():
        if ranks is not None and v["process"] not in ranks:
            continue
        if names is not None and v.name not in names:
            continue
        keep.add(v.id)
    if around:
        seeds = [pv.vertex(vid) for vid in around]
        for u in bfs(pv, seeds, direction="both", max_depth=hops):
            keep.add(u.id)
    sub, remap = pv.subgraph(keep)
    for old, new in remap.items():
        sub.vertex(new)["orig_id"] = old
    sub.metadata.update(pv.metadata)
    sub.metadata["sliced"] = True
    return sub


def parallel_view_stats(
    top_down: PAG,
    run: RunResult,
    max_ranks: Optional[int] = None,
    expand_threads: bool = False,
) -> Tuple[int, int]:
    """Exact (|V|, |E|) of the parallel view without materializing it.

    Matches :func:`build_parallel_view` element-for-element (asserted by
    the test suite); used for Table 2 at scales where an object-per-vertex
    graph would not fit in memory.
    """
    nprocs = run.nprocs if max_ranks is None else min(run.nprocs, max_ranks)
    nthreads = run.nthreads + 1 if expand_threads else 1
    flows = nprocs * nthreads
    ntd = top_down.num_vertices
    nv = ntd * flows
    ne = (ntd - 1) * flows
    for ev in run.comm_events:
        if ev.participants is not None:
            if 0 <= ev.src_rank < nprocs:
                ne += sum(
                    1
                    for rank, _p, _a, _w in ev.participants
                    if rank != ev.src_rank and rank < nprocs
                )
        else:
            if 0 <= ev.src_rank < nprocs and 0 <= ev.dst_rank < nprocs:
                ne += 1
    ne += sum(1 for lk in run.lock_events if lk.rank < nprocs)
    return nv, ne

"""Program Abstraction Graph (PAG) substrate.

A PAG is the unified performance representation of one parallel-program
execution (paper §3): a labeled, attributed directed graph whose vertices
are code snippets (functions, call sites, loops, branches, instructions)
and whose edges are intra-procedural control flow, inter-procedural calls,
inter-thread dependences (locks), and inter-process dependences (MPI
messages and collectives).  Performance data live as vertex/edge
properties.

Public surface:

* :class:`~repro.pag.graph.PAG` — the graph container.
* :class:`~repro.pag.vertex.Vertex`, :class:`~repro.pag.edge.Edge` —
  attributed elements with ``v["metric"]`` style property access.
* :data:`~repro.pag.vertex.VertexLabel`, :data:`~repro.pag.edge.EdgeLabel`
  — the label taxonomies of §3.1.
* :class:`~repro.pag.sets.VertexSet` / :class:`~repro.pag.sets.EdgeSet` —
  the "sets" that flow along PerFlowGraph edges (§4.2), with the set
  operations of §4.3.1 (sort, filter, top, union, intersection,
  difference, classification).
* :func:`~repro.pag.views.build_top_down_view` /
  :func:`~repro.pag.views.build_parallel_view` — the two PAG views (§3.4).
* :func:`~repro.pag.embedding.embed_samples` — calling-context performance
  data embedding (§3.3, Fig. 3).
* :mod:`~repro.pag.formats` — persistence (JSON formats 1/2, mmap-able
  binary format 3) and the space-cost accounting used by Table 1.
"""

from repro.pag.vertex import Vertex, VertexLabel, CallKind
from repro.pag.edge import Edge, EdgeLabel, CommKind
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet, EdgeSet

# The view/embedding/serialize modules depend on repro.ir, which itself
# imports repro.pag submodules — load them lazily to keep the package
# import-order independent.
_LAZY = {
    "build_top_down_view": ("repro.pag.views", "build_top_down_view"),
    "build_parallel_view": ("repro.pag.views", "build_parallel_view"),
    "parallel_view_stats": ("repro.pag.views", "parallel_view_stats"),
    "slice_parallel_view": ("repro.pag.views", "slice_parallel_view"),
    "validate_top_down": ("repro.pag.validate", "validate_top_down"),
    "validate_parallel": ("repro.pag.validate", "validate_parallel"),
    "embed_samples": ("repro.pag.embedding", "embed_samples"),
    "resolve_calling_context": ("repro.pag.embedding", "resolve_calling_context"),
    "PAGFormatError": ("repro.pag.formats", "PAGFormatError"),
    "pag_to_dict": ("repro.pag.formats", "pag_to_dict"),
    "pag_from_dict": ("repro.pag.formats", "pag_from_dict"),
    "save_pag": ("repro.pag.formats", "save_pag"),
    "load_pag": ("repro.pag.formats", "load_pag"),
    "storage_size": ("repro.pag.formats", "storage_size"),
    "detect_format": ("repro.pag.formats", "detect_format"),
    "pag_file_fingerprint": ("repro.pag.formats", "pag_file_fingerprint"),
    "read_header": ("repro.pag.formats", "read_header"),
    "segment_sizes": ("repro.pag.formats", "segment_sizes"),
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.pag' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value

__all__ = [
    "Vertex",
    "VertexLabel",
    "CallKind",
    "Edge",
    "EdgeLabel",
    "CommKind",
    "PAG",
    "VertexSet",
    "EdgeSet",
    "build_top_down_view",
    "build_parallel_view",
    "embed_samples",
    "resolve_calling_context",
    "PAGFormatError",
    "pag_to_dict",
    "pag_from_dict",
    "save_pag",
    "load_pag",
    "storage_size",
    "detect_format",
    "pag_file_fingerprint",
    "read_header",
    "segment_sizes",
]

"""PAG invariant checks.

The two views promise structural invariants that the analysis layer
relies on (and that the paper's Table 2 exhibits):

* **top-down view** — a tree rooted at vertex 0 (|E| = |V| − 1, every
  non-root vertex has exactly one parent), only intra-/inter-procedural
  edges, labels consistent with call kinds, debug info present;
* **parallel view** — a DAG; per-flow vertex counts equal the top-down
  count; every vertex carries its ``process`` (and ``thread``); cross
  edges are inter-process/inter-thread only and never point backwards
  within a flow.

`validate_*` functions raise :class:`ValidationError` describing every
violation found (not just the first), so test failures are actionable.

All scans run as vectorized passes over the PAG's structural and
property columns; element handles are only minted to render the problem
message for an actual violation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.algorithms.traversal import topological_order
from repro.pag.columns import IntColumn, StrColumn, _np_view
from repro.pag.edge import ELABEL_CODE, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.vertex import NO_KIND, VLABEL_CODE, VLABELS, VertexLabel


class ValidationError(AssertionError):
    """One or more PAG invariants are violated."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("; ".join(problems[:10]) + (f" (+{len(problems)-10} more)" if len(problems) > 10 else ""))


def _check(problems: List[str], cond: bool, message: str) -> None:
    if not cond:
        problems.append(message)


_IP_CODE = ELABEL_CODE[EdgeLabel.INTER_PROCESS]
_IT_CODE = ELABEL_CODE[EdgeLabel.INTER_THREAD]
_FLOW_CODES = (
    ELABEL_CODE[EdgeLabel.INTRA_PROCEDURAL],
    ELABEL_CODE[EdgeLabel.INTER_PROCEDURAL],
)


def _int_prop_arrays(pag: PAG, key: str):
    """(values, valid) for an integer vertex property, or ``None`` when
    the column is absent or not an int column (callers then fall back to
    per-element reads)."""
    col = pag._vprops.column(key)
    if isinstance(col, IntColumn):
        return col.arrays(pag.num_vertices)
    return None


def edge_label_problems(pag: PAG) -> List[str]:
    """Edge-label consistency violations, as problem strings.

    Cross edges must actually cross: an inter-process edge has to
    connect vertices with *differing* ``process`` attributes (except
    legal rank-to-self messages, where src and dst vertex still differ),
    and an inter-thread edge vertices of the same process but differing
    ``thread`` attributes.  Views that carry no ``process``/``thread``
    attributes (the top-down view) vacuously satisfy the check for any
    edge they also do not carry — so :mod:`repro.lint` and the parallel
    validator share this helper.
    """
    problems: List[str] = []
    ne = pag.num_edges
    if ne == 0:
        return problems
    e_label = _np_view(pag._e_label, np.int8)
    e_src = _np_view(pag._e_src, np.int64)
    e_dst = _np_view(pag._e_dst, np.int64)

    # inter-process edges: only self-loop edges can violate, and only
    # when the vertex actually carries a process id
    for eid in np.nonzero((e_label == _IP_CODE) & (e_src == e_dst))[0]:
        e = pag.edge(int(eid))
        if e.src["process"] is not None:
            problems.append(
                f"inter-process edge {e.id} connects vertex {e.src_id} to itself"
            )

    it_ids = np.nonzero(e_label == _IT_CODE)[0]
    if len(it_ids):
        thread = _int_prop_arrays(pag, "thread")
        if thread is not None:
            tvals, tvalid = thread
            ts, td = e_src[it_ids], e_dst[it_ids]
            bad = tvalid[ts] & tvalid[td] & (tvals[ts] == tvals[td])
            it_ids = it_ids[bad]
            for eid in it_ids:
                e = pag.edge(int(eid))
                problems.append(
                    f"inter-thread edge {e.id} connects same-thread vertices "
                    f"({e.src_id} -> {e.dst_id}, thread {e.src['thread']})"
                )
        else:
            for eid in it_ids:
                e = pag.edge(int(eid))
                src_t, dst_t = e.src["thread"], e.dst["thread"]
                if src_t is not None and src_t == dst_t:
                    problems.append(
                        f"inter-thread edge {e.id} connects same-thread vertices "
                        f"({e.src_id} -> {e.dst_id}, thread {src_t})"
                    )
    return problems


def validate_top_down(pag: PAG) -> None:
    """Assert the top-down-view invariants."""
    problems: List[str] = []
    nv = pag.num_vertices
    ne = pag.num_edges
    _check(problems, nv > 0, "empty PAG")
    _check(
        problems,
        ne == nv - 1,
        f"not a tree: |E|={ne}, |V|={nv}",
    )
    if nv == 0:
        raise ValidationError(problems)

    e_src = _np_view(pag._e_src, np.int64)
    e_dst = _np_view(pag._e_dst, np.int64)
    e_label = _np_view(pag._e_label, np.int8)
    v_label = _np_view(pag._v_label, np.int8)
    v_kind = _np_view(pag._v_kind, np.int8)

    indeg = np.bincount(e_dst, minlength=nv) if ne else np.zeros(nv, dtype=np.int64)
    if indeg[0] != 0:
        problems.append(f"root vertex 0 has {int(indeg[0])} parents")
    root_label = VLABELS[v_label[0]]
    _check(
        problems,
        root_label is VertexLabel.FUNCTION,
        f"root is {root_label.value}, expected function",
    )
    for vid in np.nonzero(indeg[1:] != 1)[0] + 1:
        v = pag.vertex(int(vid))
        problems.append(f"vertex {v.id} ({v.name}) has {int(indeg[vid])} parents")

    kind_bad = (v_kind == NO_KIND) != (v_label != VLABEL_CODE[VertexLabel.CALL])
    for vid in np.nonzero(kind_bad)[0]:
        v = pag.vertex(int(vid))
        problems.append(
            f"vertex {v.id} ({v.name}): call_kind inconsistent with label {v.label.value}"
        )

    # debug info present (and non-empty) on every vertex
    dbg = pag._vprops.column("debug-info")
    if isinstance(dbg, StrColumn):
        sids = dbg.sid_array(nv)
        nonempty = np.fromiter(
            (bool(s) for s in pag.strings), dtype=bool, count=len(pag.strings)
        )
        ok = (sids >= 0) & (
            nonempty[np.clip(sids, 0, None)] if len(nonempty) else False
        )
        missing = np.nonzero(~ok)[0]
    else:
        missing = np.array(
            [vid for vid in range(nv) if not pag.vertex(vid)["debug-info"]],
            dtype=np.int64,
        )
    for vid in missing:
        v = pag.vertex(int(vid))
        problems.append(f"vertex {v.id} ({v.name}) missing debug info")

    if ne:
        bad_label = ~np.isin(e_label, np.array(_FLOW_CODES, dtype=np.int8))
        for eid in np.nonzero(bad_label)[0]:
            e = pag.edge(int(eid))
            problems.append(
                f"edge {e.id} has label {e.label.value} (top-down views carry only procedural edges)"
            )
        for eid in np.nonzero(e_src >= e_dst)[0]:
            problems.append(
                f"edge {int(eid)} points backwards in pre-order "
                f"({int(e_src[eid])} -> {int(e_dst[eid])})"
            )
    if problems:
        raise ValidationError(problems)


def validate_parallel(pag: PAG, top_down_vertices: int) -> None:
    """Assert the parallel-view invariants."""
    problems: List[str] = []
    nprocs = pag.metadata.get("nprocs")
    nthreads = pag.metadata.get("nthreads", 1)
    _check(problems, nprocs is not None, "parallel view missing nprocs metadata")
    if nprocs is not None:
        expected = top_down_vertices * nprocs * nthreads
        _check(
            problems,
            pag.num_vertices == expected,
            f"|V|={pag.num_vertices}, expected {expected} (td {top_down_vertices} x {nprocs} x {nthreads})",
        )

    nv = pag.num_vertices
    ne = pag.num_edges
    process = _int_prop_arrays(pag, "process")
    if process is not None:
        pvals, pvalid = process
        for vid in np.nonzero(~pvalid)[0]:
            problems.append(f"vertex {int(vid)} missing process id")
    else:
        for vid in range(nv):
            if pag.vertex(vid)["process"] is None:
                problems.append(f"vertex {vid} missing process id")

    if ne:
        e_src = _np_view(pag._e_src, np.int64)
        e_dst = _np_view(pag._e_dst, np.int64)
        e_label = _np_view(pag._e_label, np.int8)
        flow_mask = np.isin(e_label, np.array(_FLOW_CODES, dtype=np.int8))
        flow_ids = np.nonzero(flow_mask)[0]
        thread = _int_prop_arrays(pag, "thread")
        if len(flow_ids) and process is not None and thread is not None:
            # missing attributes read as sentinel -1, so None == None
            # compares equal exactly like the per-element check
            pvals_s = np.where(pvalid, pvals, -1)
            tvals, tvalid = thread
            tvals_s = np.where(tvalid, tvals, -1)
            fs, fd = e_src[flow_ids], e_dst[flow_ids]
            ok = (
                (pvals_s[fs] == pvals_s[fd])
                & (tvals_s[fs] == tvals_s[fd])
                & (fs < fd)
            )
            for eid in flow_ids[~ok]:
                problems.append(
                    f"flow edge {int(eid)} malformed ({int(e_src[eid])}->{int(e_dst[eid])})"
                )
        else:
            for eid in flow_ids:
                e = pag.edge(int(eid))
                same_flow = (
                    e.src["process"] == e.dst["process"]
                    and e.src["thread"] == e.dst["thread"]
                )
                _check(
                    problems,
                    same_flow and e.src_id < e.dst_id,
                    f"flow edge {e.id} malformed ({e.src_id}->{e.dst_id})",
                )
        # self-messages (rank sending to itself) are legal MPI, so only
        # degenerate self-loop edges are rejected
        ip_loop = (e_label == _IP_CODE) & (e_src == e_dst)
        for eid in np.nonzero(ip_loop)[0]:
            problems.append(
                f"inter-process edge {int(eid)} is a self-loop on vertex {int(e_src[eid])}"
            )
        it_ids = np.nonzero(e_label == _IT_CODE)[0]
        if len(it_ids):
            if process is not None:
                pvals_s = np.where(pvalid, pvals, -1)
                crosses = pvals_s[e_src[it_ids]] != pvals_s[e_dst[it_ids]]
                for eid in it_ids[crosses]:
                    problems.append(f"inter-thread edge {int(eid)} crosses processes")
            else:
                for eid in it_ids:
                    e = pag.edge(int(eid))
                    _check(
                        problems,
                        e.src["process"] == e.dst["process"],
                        f"inter-thread edge {e.id} crosses processes",
                    )
    problems.extend(edge_label_problems(pag))
    # Flow edges alone must be acyclic (they follow pre-order within each
    # flow).  The FULL graph may legitimately contain lateral cycles:
    # repeated interactions between the same two instances (e.g. a lock
    # bouncing between two threads across iterations) aggregate onto the
    # same vertex pair in both directions.
    flow_labels = (EdgeLabel.INTRA_PROCEDURAL, EdgeLabel.INTER_PROCEDURAL)
    try:
        topological_order(pag, edge_ok=lambda e: e.label in flow_labels)
    except ValueError:
        problems.append("flow edges contain a cycle")
    if problems:
        raise ValidationError(problems)

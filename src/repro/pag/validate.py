"""PAG invariant checks.

The two views promise structural invariants that the analysis layer
relies on (and that the paper's Table 2 exhibits):

* **top-down view** — a tree rooted at vertex 0 (|E| = |V| − 1, every
  non-root vertex has exactly one parent), only intra-/inter-procedural
  edges, labels consistent with call kinds, debug info present;
* **parallel view** — a DAG; per-flow vertex counts equal the top-down
  count; every vertex carries its ``process`` (and ``thread``); cross
  edges are inter-process/inter-thread only and never point backwards
  within a flow.

`validate_*` functions raise :class:`ValidationError` describing every
violation found (not just the first), so test failures are actionable.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.traversal import topological_order
from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.vertex import VertexLabel


class ValidationError(AssertionError):
    """One or more PAG invariants are violated."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("; ".join(problems[:10]) + (f" (+{len(problems)-10} more)" if len(problems) > 10 else ""))


def _check(problems: List[str], cond: bool, message: str) -> None:
    if not cond:
        problems.append(message)


def edge_label_problems(pag: PAG) -> List[str]:
    """Edge-label consistency violations, as problem strings.

    Cross edges must actually cross: an inter-process edge has to
    connect vertices with *differing* ``process`` attributes (except
    legal rank-to-self messages, where src and dst vertex still differ),
    and an inter-thread edge vertices of the same process but differing
    ``thread`` attributes.  Views that carry no ``process``/``thread``
    attributes (the top-down view) vacuously satisfy the check for any
    edge they also do not carry — so :mod:`repro.lint` and the parallel
    validator share this helper.
    """
    problems: List[str] = []
    for e in pag.edges():
        if e.label is EdgeLabel.INTER_PROCESS:
            src_p, dst_p = e.src["process"], e.dst["process"]
            if src_p is not None and src_p == dst_p and e.src_id == e.dst_id:
                problems.append(
                    f"inter-process edge {e.id} connects vertex {e.src_id} to itself"
                )
        elif e.label is EdgeLabel.INTER_THREAD:
            src_t, dst_t = e.src["thread"], e.dst["thread"]
            if src_t is not None and src_t == dst_t:
                problems.append(
                    f"inter-thread edge {e.id} connects same-thread vertices "
                    f"({e.src_id} -> {e.dst_id}, thread {src_t})"
                )
    return problems


def validate_top_down(pag: PAG) -> None:
    """Assert the top-down-view invariants."""
    problems: List[str] = []
    _check(problems, pag.num_vertices > 0, "empty PAG")
    _check(
        problems,
        pag.num_edges == pag.num_vertices - 1,
        f"not a tree: |E|={pag.num_edges}, |V|={pag.num_vertices}",
    )
    for v in pag.vertices():
        indeg = pag.in_degree(v)
        if v.id == 0:
            _check(problems, indeg == 0, f"root vertex {v.id} has {indeg} parents")
            _check(
                problems,
                v.label is VertexLabel.FUNCTION,
                f"root is {v.label.value}, expected function",
            )
        else:
            _check(problems, indeg == 1, f"vertex {v.id} ({v.name}) has {indeg} parents")
        _check(
            problems,
            (v.call_kind is None) == (v.label is not VertexLabel.CALL),
            f"vertex {v.id} ({v.name}): call_kind inconsistent with label {v.label.value}",
        )
        _check(problems, bool(v["debug-info"]), f"vertex {v.id} ({v.name}) missing debug info")
    for e in pag.edges():
        _check(
            problems,
            e.label in (EdgeLabel.INTRA_PROCEDURAL, EdgeLabel.INTER_PROCEDURAL),
            f"edge {e.id} has label {e.label.value} (top-down views carry only procedural edges)",
        )
        _check(
            problems,
            e.src_id < e.dst_id,
            f"edge {e.id} points backwards in pre-order ({e.src_id} -> {e.dst_id})",
        )
    if problems:
        raise ValidationError(problems)


def validate_parallel(pag: PAG, top_down_vertices: int) -> None:
    """Assert the parallel-view invariants."""
    problems: List[str] = []
    nprocs = pag.metadata.get("nprocs")
    nthreads = pag.metadata.get("nthreads", 1)
    _check(problems, nprocs is not None, "parallel view missing nprocs metadata")
    if nprocs is not None:
        expected = top_down_vertices * nprocs * nthreads
        _check(
            problems,
            pag.num_vertices == expected,
            f"|V|={pag.num_vertices}, expected {expected} (td {top_down_vertices} x {nprocs} x {nthreads})",
        )
    for v in pag.vertices():
        _check(problems, v["process"] is not None, f"vertex {v.id} missing process id")
    flow_labels = (EdgeLabel.INTRA_PROCEDURAL, EdgeLabel.INTER_PROCEDURAL)
    for e in pag.edges():
        if e.label in flow_labels:
            same_flow = (
                e.src["process"] == e.dst["process"] and e.src["thread"] == e.dst["thread"]
            )
            _check(
                problems,
                same_flow and e.src_id < e.dst_id,
                f"flow edge {e.id} malformed ({e.src_id}->{e.dst_id})",
            )
        elif e.label is EdgeLabel.INTER_PROCESS:
            # self-messages (rank sending to itself) are legal MPI, so
            # only degenerate self-loop edges are rejected
            _check(
                problems,
                e.src_id != e.dst_id,
                f"inter-process edge {e.id} is a self-loop on vertex {e.src_id}",
            )
        elif e.label is EdgeLabel.INTER_THREAD:
            _check(
                problems,
                e.src["process"] == e.dst["process"],
                f"inter-thread edge {e.id} crosses processes",
            )
    problems.extend(edge_label_problems(pag))
    # Flow edges alone must be acyclic (they follow pre-order within each
    # flow).  The FULL graph may legitimately contain lateral cycles:
    # repeated interactions between the same two instances (e.g. a lock
    # bouncing between two threads across iterations) aggregate onto the
    # same vertex pair in both directions.
    try:
        topological_order(pag, edge_ok=lambda e: e.label in flow_labels)
    except ValueError:
        problems.append("flow edges contain a cycle")
    if problems:
        raise ValidationError(problems)

"""Graph traversals over PAGs: BFS, DFS, topological order, reachability.

All traversals accept an optional edge predicate, which is how passes
impose the "constraints" of §4.3.1 (e.g. follow only inter-process
edges, or only edges with positive wait time).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, List, Optional, Set

from repro.pag.edge import Edge
from repro.pag.graph import PAG
from repro.pag.vertex import Vertex

EdgePredicate = Callable[[Edge], bool]


def _neighbors(pag: PAG, vid: int, direction: str, edge_ok: Optional[EdgePredicate]):
    if direction not in ("out", "in", "both"):
        raise ValueError(f"invalid direction {direction!r}")
    if direction in ("out", "both"):
        for e in pag.out_edges(vid):
            if edge_ok is None or edge_ok(e):
                yield e.dst_id, e
    if direction in ("in", "both"):
        for e in pag.in_edges(vid):
            if edge_ok is None or edge_ok(e):
                yield e.src_id, e


def bfs(
    pag: PAG,
    sources: Iterable[Vertex],
    direction: str = "out",
    edge_ok: Optional[EdgePredicate] = None,
    max_depth: Optional[int] = None,
) -> Iterator[Vertex]:
    """Breadth-first search from ``sources``; yields visited vertices
    (sources first) in discovery order."""
    queue = deque()
    seen: Set[int] = set()
    for v in sources:
        if v.id not in seen:
            seen.add(v.id)
            queue.append((v.id, 0))
            yield v
    while queue:
        vid, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for nid, _e in _neighbors(pag, vid, direction, edge_ok):
            if nid not in seen:
                seen.add(nid)
                queue.append((nid, depth + 1))
                yield pag.vertex(nid)


def dfs_preorder(
    pag: PAG,
    source: Vertex,
    direction: str = "out",
    edge_ok: Optional[EdgePredicate] = None,
) -> Iterator[Vertex]:
    """Depth-first pre-order from ``source`` (iterative; graph-safe)."""
    stack = [source.id]
    seen: Set[int] = set()
    while stack:
        vid = stack.pop()
        if vid in seen:
            continue
        seen.add(vid)
        yield pag.vertex(vid)
        nxt = [nid for nid, _e in _neighbors(pag, vid, direction, edge_ok)]
        # reversed: visit in natural adjacency order
        stack.extend(reversed([n for n in nxt if n not in seen]))


def topological_order(
    pag: PAG, edge_ok: Optional[EdgePredicate] = None
) -> List[int]:
    """Kahn topological order of vertex ids.

    Raises ``ValueError`` on cycles — PAG views are DAGs by construction
    (tree + forward flow/comm edges), so a cycle indicates a malformed
    graph.
    """
    n = pag.num_vertices
    indeg = [0] * n
    for e in pag.edges():
        if edge_ok is None or edge_ok(e):
            indeg[e.dst_id] += 1
    queue = deque(v for v in range(n) if indeg[v] == 0)
    order: List[int] = []
    while queue:
        vid = queue.popleft()
        order.append(vid)
        for nid, _e in _neighbors(pag, vid, "out", edge_ok):
            indeg[nid] -= 1
            if indeg[nid] == 0:
                queue.append(nid)
    if len(order) != n:
        raise ValueError("graph contains a cycle under the given edge filter")
    return order


def ancestors(
    pag: PAG,
    v: Vertex,
    edge_ok: Optional[EdgePredicate] = None,
    max_depth: Optional[int] = None,
) -> Set[int]:
    """Ids of vertices that can reach ``v`` (excluding ``v``)."""
    out = {u.id for u in bfs(pag, [v], "in", edge_ok, max_depth)}
    out.discard(v.id)
    return out


def descendants(
    pag: PAG,
    v: Vertex,
    edge_ok: Optional[EdgePredicate] = None,
    max_depth: Optional[int] = None,
) -> Set[int]:
    """Ids of vertices reachable from ``v`` (excluding ``v``)."""
    out = {u.id for u in bfs(pag, [v], "out", edge_ok, max_depth)}
    out.discard(v.id)
    return out

"""Critical-path extraction over the parallel view.

The critical path of a parallel execution is the longest
vertex/edge-weighted path through the parallel view's DAG: the chain of
activities whose shortening would shorten the run (Böhme et al. [19],
Schmitt et al. [54] — the inspirations the paper cites for its
critical-path paradigm).

Weights: each vertex contributes its exclusive ``time`` minus its
``wait`` (waiting is by definition *not* on the critical path — the
thing waited for is), floored at zero; edges contribute zero by default
or an explicit property.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.algorithms.traversal import EdgePredicate, topological_order
from repro.pag.edge import Edge
from repro.pag.graph import PAG
from repro.pag.vertex import Vertex


def default_vertex_weight(v: Vertex) -> float:
    time = v["time"] or 0.0
    wait = v["wait"] or 0.0
    return max(0.0, float(time) - float(wait))


def critical_path(
    pag: PAG,
    vertex_weight: Callable[[Vertex], float] = default_vertex_weight,
    edge_weight: Optional[Callable[[Edge], float]] = None,
    edge_ok: Optional[EdgePredicate] = None,
) -> Tuple[List[Vertex], List[Edge], float]:
    """Longest weighted path through the DAG.

    Returns ``(vertices, edges, total_weight)`` with vertices in path
    order.  Ties are broken deterministically by predecessor id.
    """
    order = topological_order(pag, edge_ok)
    n = pag.num_vertices
    best = [0.0] * n
    pred_edge: List[Optional[Edge]] = [None] * n
    for vid in order:
        best[vid] += vertex_weight(pag.vertex(vid))
        for e in pag.out_edges(vid):
            if edge_ok is not None and not edge_ok(e):
                continue
            w = edge_weight(e) if edge_weight else 0.0
            cand = best[vid] + w
            d = e.dst_id
            if cand > best[d] or (
                cand == best[d]
                and pred_edge[d] is not None
                and e.src_id < pred_edge[d].src_id
            ):
                best[d] = cand
                pred_edge[d] = e

    if n == 0:
        return [], [], 0.0
    end = max(range(n), key=lambda vid: (best[vid], -vid))
    # walk back
    edges: List[Edge] = []
    vertices: List[Vertex] = [pag.vertex(end)]
    vid = end
    while pred_edge[vid] is not None:
        e = pred_edge[vid]
        edges.append(e)
        vid = e.src_id
        vertices.append(pag.vertex(vid))
    vertices.reverse()
    edges.reverse()
    return vertices, edges, best[end]

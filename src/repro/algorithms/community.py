"""Community detection on PAGs.

The paper lists community detection among the graph-algorithm APIs
(§2.1, §4.3.1): groups of vertices that interact densely (e.g. ranks
exchanging halos) form communities on the parallel view, which helps
scope analyses to interacting subsets.  We provide asynchronous label
propagation (fast, used as the default) and a one-level Louvain
refinement driven by modularity, both over the undirected weighted
projection of the PAG.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pag.graph import PAG


def _weighted_adjacency(pag: PAG, weight: Optional[str]) -> List[Dict[int, float]]:
    adj: List[Dict[int, float]] = [dict() for _ in range(pag.num_vertices)]
    for e in pag.edges():
        w = e[weight] if weight else 1.0
        w = float(w) if isinstance(w, (int, float)) and w > 0 else 1.0
        if e.src_id == e.dst_id:
            continue
        adj[e.src_id][e.dst_id] = adj[e.src_id].get(e.dst_id, 0.0) + w
        adj[e.dst_id][e.src_id] = adj[e.dst_id].get(e.src_id, 0.0) + w
    return adj


def label_propagation(
    pag: PAG, weight: Optional[str] = None, max_iters: int = 20
) -> Dict[int, int]:
    """Deterministic label propagation: vertex id -> community label.

    Vertices adopt the incident label with the largest total weight.  The
    sweep is deterministic (descending vertex id) instead of the usual
    randomized order, so results are reproducible across runs and
    platforms; a vertex keeps its current label when it ties with the
    best, which stops bridges from cascading one label across
    communities before they consolidate.
    """
    n = pag.num_vertices
    adj = _weighted_adjacency(pag, weight)
    labels = list(range(n))
    for _ in range(max_iters):
        changed = False
        for vid in range(n - 1, -1, -1):
            if not adj[vid]:
                continue
            score: Dict[int, float] = {}
            for nid, w in adj[vid].items():
                score[labels[nid]] = score.get(labels[nid], 0.0) + w
            best_score = max(score.values())
            if score.get(labels[vid], 0.0) >= best_score:
                continue  # current label ties the best: keep it
            best = min(lab for lab, s in score.items() if s == best_score)
            labels[vid] = best
            changed = True
        if not changed:
            break
    # Renumber communities densely in order of first appearance.
    remap: Dict[int, int] = {}
    out: Dict[int, int] = {}
    for vid in range(n):
        lab = labels[vid]
        if lab not in remap:
            remap[lab] = len(remap)
        out[vid] = remap[lab]
    return out


def modularity(pag: PAG, communities: Dict[int, int], weight: Optional[str] = None) -> float:
    """Newman modularity Q of a partition over the undirected projection.

    ``Q = Σ_c [ w_in(c)/2m − (S(c)/2m)² ]`` where ``w_in`` counts
    intra-community edge weight (both directions) and ``S`` sums vertex
    strengths — the null-model term covers *all* same-community pairs,
    adjacent or not.
    """
    adj = _weighted_adjacency(pag, weight)
    two_m = sum(sum(nbrs.values()) for nbrs in adj)
    if two_m == 0:
        return 0.0
    strength = [sum(nbrs.values()) for nbrs in adj]
    w_in: Dict[int, float] = {}
    s_tot: Dict[int, float] = {}
    for vid, nbrs in enumerate(adj):
        c = communities.get(vid)
        s_tot[c] = s_tot.get(c, 0.0) + strength[vid]
        for nid, w in nbrs.items():
            if communities.get(nid) == c:
                w_in[c] = w_in.get(c, 0.0) + w
    q = 0.0
    for c, s in s_tot.items():
        q += w_in.get(c, 0.0) / two_m - (s / two_m) ** 2
    return q


def louvain_communities(
    pag: PAG, weight: Optional[str] = None, max_sweeps: int = 10
) -> Dict[int, int]:
    """One-level Louvain: greedy modularity-gain moves until stable.

    Starts from singleton communities and sweeps vertices in id order,
    moving each to the neighboring community with the largest positive
    modularity gain.  Deterministic; adequate for the analysis-scoping
    use PAGs put it to (full multilevel Louvain lives in the Vite *app
    model*, not here).
    """
    n = pag.num_vertices
    adj = _weighted_adjacency(pag, weight)
    two_m = sum(sum(nbrs.values()) for nbrs in adj)
    if two_m == 0:
        return {vid: vid for vid in range(n)}
    strength = [sum(nbrs.values()) for nbrs in adj]
    comm = list(range(n))
    comm_strength = strength.copy()

    for _ in range(max_sweeps):
        moved = False
        for vid in range(n):
            if not adj[vid]:
                continue
            cur = comm[vid]
            # weights from vid into each neighboring community
            into: Dict[int, float] = {}
            for nid, w in adj[vid].items():
                into[comm[nid]] = into.get(comm[nid], 0.0) + w
            comm_strength[cur] -= strength[vid]
            best_comm, best_gain = cur, 0.0
            for c, w_in in sorted(into.items()):
                gain = w_in - strength[vid] * comm_strength[c] / two_m
                base = into.get(cur, 0.0) - strength[vid] * comm_strength[cur] / two_m
                if gain - base > best_gain + 1e-15:
                    best_gain = gain - base
                    best_comm = c
            comm_strength[best_comm] += strength[vid]
            if best_comm != cur:
                comm[vid] = best_comm
                moved = True
        if not moved:
            break
    remap: Dict[int, int] = {}
    out: Dict[int, int] = {}
    for vid in range(n):
        c = comm[vid]
        if c not in remap:
            remap[c] = len(remap)
        out[vid] = remap[c]
    return out

"""Graph algorithm APIs (paper §4.3.1, "graph algorithm APIs").

Passes are built by combining these algorithms with constraints:
breadth/depth-first search and topological order
(:mod:`~repro.algorithms.traversal`), lowest common ancestor
(:mod:`~repro.algorithms.lca`, the causal-analysis kernel), labeled
subgraph matching (:mod:`~repro.algorithms.subgraph`, the
contention-detection kernel), community detection
(:mod:`~repro.algorithms.community`), critical-path extraction
(:mod:`~repro.algorithms.critical_path`), and graph difference
(:mod:`~repro.algorithms.difference`, the differential-analysis kernel).
"""

from repro.algorithms.traversal import (
    ancestors,
    bfs,
    descendants,
    dfs_preorder,
    topological_order,
)
from repro.algorithms.lca import lowest_common_ancestor
from repro.algorithms.subgraph import PatternGraph, subgraph_matching
from repro.algorithms.community import label_propagation, louvain_communities, modularity
from repro.algorithms.critical_path import critical_path
from repro.algorithms.difference import graph_difference

__all__ = [
    "bfs",
    "dfs_preorder",
    "topological_order",
    "ancestors",
    "descendants",
    "lowest_common_ancestor",
    "PatternGraph",
    "subgraph_matching",
    "label_propagation",
    "louvain_communities",
    "modularity",
    "critical_path",
    "graph_difference",
]

"""Graph difference — the differential-analysis kernel (paper §4.3.2-B).

Two top-down views of the *same program* under different inputs or
scales have identical static structure, so the difference graph G3 =
G1 - G2 is G1's structure with every numeric metric replaced by the
per-vertex difference (Fig. 7).  Vertices are matched structurally: by
vertex id when both graphs were produced by the same static expansion
(the common case), with a name+debug-info consistency check that
catches accidental mismatches.

For scalability analysis, metrics of the smaller-scale run can be
scaled by the ideal-speedup factor first, so a perfectly scaling vertex
differences to ~0 and the difference *is* the scaling loss (ScalAna's
formulation).

The whole difference runs column-wise: structure is a block copy of
G1's arrays and each metric is one vectorized subtraction over the two
graphs' typed columns.
"""

from __future__ import annotations

from array import array
from typing import Tuple

import numpy as np

from repro.pag.columns import ColumnStore, FloatColumn, IntColumn, ObjColumn
from repro.pag.graph import PAG

#: Metrics that are meaningful to subtract.
_DIFFABLE = ("time", "excl_time", "wait", "cycles", "instructions", "l1_misses", "l2_misses")


def _numeric_with_valid(store: ColumnStore, key: str, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """(values, present) over all rows; non-numeric spill values read absent."""
    col = store.column(key)
    if isinstance(col, (FloatColumn, IntColumn)):
        data, valid = col.arrays(n)
        vals = data.astype(np.float64)
        vals[~valid] = 0.0
        return vals, valid.copy()
    vals = np.zeros(n)
    valid = np.zeros(n, dtype=bool)
    if isinstance(col, ObjColumn):
        for row, value in col.cells.items():
            if isinstance(value, (int, float)):
                vals[row] = float(value)
                valid[row] = True
    return vals, valid


def graph_difference(
    g1: PAG,
    g2: PAG,
    scale2: float = 1.0,
    strict: bool = True,
) -> PAG:
    """Per-vertex metric difference ``g1 - scale2 * g2``.

    Parameters
    ----------
    scale2:
        Multiplier applied to ``g2``'s metrics before subtracting.  For
        scaling-loss detection between a run on P1 ranks (g2) and P2 > P1
        ranks (g1) with a fixed total problem, ideal scaling keeps total
        time constant, so ``scale2=1.0``; for per-rank comparisons pass
        the appropriate ratio.
    strict:
        Verify that matched vertices agree on name; mismatch raises
        ``ValueError``.

    The result is a new PAG with g1's structure; each vertex gets the
    metric deltas, plus ``time_per_rank_diff`` when both sides carry
    per-rank vectors of equal length.
    """
    nv = g1.num_vertices
    if nv != g2.num_vertices:
        raise ValueError(
            f"graph difference needs structurally identical PAGs: "
            f"|V|={g1.num_vertices} vs {g2.num_vertices}"
        )
    if strict:
        names1 = g1.vs.values("name")
        names2 = g2.vs.values("name")
        if names1 != names2:
            for vid, (n1, n2) in enumerate(zip(names1, names2)):
                if n1 != n2:
                    raise ValueError(f"vertex {vid} mismatch: {n1!r} vs {n2!r}")

    out = PAG(f"diff({g1.name},{g2.name})", {"view": "top-down", "diff": True})
    # block-copy G1's structure; the string table is append-only and safe
    # to share, so name/debug-info ids transfer without re-interning
    out.strings = g1.strings
    out._v_label = array("b", g1._v_label)
    out._v_kind = array("b", g1._v_kind)
    out._v_name = array("q", g1._v_name)
    out._e_src = array("q", g1._e_src)
    out._e_dst = array("q", g1._e_dst)
    out._e_label = array("b", g1._e_label)
    out._e_kind = array("b", g1._e_kind)
    out._vprops = ColumnStore(out.strings)
    out._vprops.nrows = nv
    out._eprops = g1._eprops.copy()
    out._eprops.strings = out.strings

    dbg = g1._vprops.column("debug-info")
    if dbg is not None:
        out._vprops.columns["debug-info"] = dbg.copy()

    for metric in _DIFFABLE:
        vals1, valid1 = _numeric_with_valid(g1._vprops, metric, nv)
        vals2, valid2 = _numeric_with_valid(g2._vprops, metric, nv)
        present = valid1 | valid2
        if not present.any():
            continue
        rows = np.nonzero(present)[0]
        out._vprops.set_numeric_bulk(metric, rows, vals1[rows] - scale2 * vals2[rows])

    pr1 = g1.vs.values("time_per_rank")
    pr2 = g2.vs.values("time_per_rank")
    diff_rows = []
    diff_vals = []
    for vid, (a_pr, b_pr) in enumerate(zip(pr1, pr2)):
        if isinstance(a_pr, np.ndarray) and isinstance(b_pr, np.ndarray):
            if a_pr.shape == b_pr.shape:
                diff_vals.append(a_pr - scale2 * b_pr)
            else:
                # Different rank counts (the scalability case): subtract
                # the *ideal-scaling projection* of the small run — total
                # work conserved, so the ideal per-rank share at n_a ranks
                # is mean(b) * n_b / n_a.  The residual is per-rank
                # scaling loss, whose skew the imbalance pass reads.
                ideal = scale2 * float(b_pr.mean()) * (b_pr.size / a_pr.size)
                diff_vals.append(a_pr - ideal)
            diff_rows.append(vid)
    if diff_rows:
        out._vprops.set_obj_bulk("time_per_rank", diff_rows, diff_vals)
    return out

"""Graph difference — the differential-analysis kernel (paper §4.3.2-B).

Two top-down views of the *same program* under different inputs or
scales have identical static structure, so the difference graph G3 =
G1 - G2 is G1's structure with every numeric metric replaced by the
per-vertex difference (Fig. 7).  Vertices are matched structurally: by
vertex id when both graphs were produced by the same static expansion
(the common case), with a name+debug-info consistency check that
catches accidental mismatches.

For scalability analysis, metrics of the smaller-scale run can be
scaled by the ideal-speedup factor first, so a perfectly scaling vertex
differences to ~0 and the difference *is* the scaling loss (ScalAna's
formulation).
"""

from __future__ import annotations


import numpy as np

from repro.pag.graph import PAG

#: Metrics that are meaningful to subtract.
_DIFFABLE = ("time", "excl_time", "wait", "cycles", "instructions", "l1_misses", "l2_misses")


def graph_difference(
    g1: PAG,
    g2: PAG,
    scale2: float = 1.0,
    strict: bool = True,
) -> PAG:
    """Per-vertex metric difference ``g1 - scale2 * g2``.

    Parameters
    ----------
    scale2:
        Multiplier applied to ``g2``'s metrics before subtracting.  For
        scaling-loss detection between a run on P1 ranks (g2) and P2 > P1
        ranks (g1) with a fixed total problem, ideal scaling keeps total
        time constant, so ``scale2=1.0``; for per-rank comparisons pass
        the appropriate ratio.
    strict:
        Verify that matched vertices agree on name; mismatch raises
        ``ValueError``.

    The result is a new PAG with g1's structure; each vertex gets the
    metric deltas, plus ``time_per_rank_diff`` when both sides carry
    per-rank vectors of equal length.
    """
    if g1.num_vertices != g2.num_vertices:
        raise ValueError(
            f"graph difference needs structurally identical PAGs: "
            f"|V|={g1.num_vertices} vs {g2.num_vertices}"
        )
    out = PAG(f"diff({g1.name},{g2.name})", {"view": "top-down", "diff": True})
    for v1 in g1.vertices():
        v2 = g2.vertex(v1.id)
        if strict and v1.name != v2.name:
            raise ValueError(
                f"vertex {v1.id} mismatch: {v1.name!r} vs {v2.name!r}"
            )
        props = {"debug-info": v1["debug-info"]}
        for metric in _DIFFABLE:
            a, b = v1[metric], v2[metric]
            if a is None and b is None:
                continue
            props[metric] = float(a or 0.0) - scale2 * float(b or 0.0)
        a_pr, b_pr = v1["time_per_rank"], v2["time_per_rank"]
        if isinstance(a_pr, np.ndarray) and isinstance(b_pr, np.ndarray):
            if a_pr.shape == b_pr.shape:
                props["time_per_rank"] = a_pr - scale2 * b_pr
            else:
                # Different rank counts (the scalability case): subtract
                # the *ideal-scaling projection* of the small run — total
                # work conserved, so the ideal per-rank share at n_a ranks
                # is mean(b) * n_b / n_a.  The residual is per-rank
                # scaling loss, whose skew the imbalance pass reads.
                ideal = scale2 * float(b_pr.mean()) * (b_pr.size / a_pr.size)
                props["time_per_rank"] = a_pr - ideal
        nv = out.add_vertex(v1.label, v1.name, v1.call_kind, props)
        assert nv.id == v1.id
    for e in g1.edges():
        out.add_edge(e.src_id, e.dst_id, e.label, e.comm_kind, dict(e.properties))
    return out

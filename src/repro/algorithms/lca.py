"""Lowest common ancestor on PAG views — the causal-analysis kernel.

Paper §4.3.2-C: performance bugs propagate along parallel-view edges;
the LCA of two buggy vertices — the deepest vertex having both as
descendants — is where their common cause lives.  PAG views are DAGs,
so "deepest" is defined by topological depth (longest distance from any
root), the standard DAG-LCA generalization.

Returns the LCA vertex and the edge paths from it to each input, which
the causal pass reports as the propagation chains.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.algorithms.traversal import EdgePredicate
from repro.pag.edge import Edge
from repro.pag.graph import PAG
from repro.pag.vertex import Vertex


def _ancestor_depths(
    pag: PAG, v: Vertex, edge_ok: Optional[EdgePredicate]
) -> Dict[int, Tuple[int, Optional[Edge]]]:
    """BFS upward from ``v``: ancestor id -> (hop distance, edge taken).

    The recorded edge is the one leading from the ancestor toward ``v``
    on a shortest hop path, enough to reconstruct a propagation path.
    """
    out: Dict[int, Tuple[int, Optional[Edge]]] = {v.id: (0, None)}
    queue = deque([v.id])
    while queue:
        vid = queue.popleft()
        dist = out[vid][0]
        for e in pag.in_edges(vid):
            if edge_ok is not None and not edge_ok(e):
                continue
            if e.src_id not in out:
                out[e.src_id] = (dist + 1, e)
                queue.append(e.src_id)
    return out


def _path_down(
    anc: Dict[int, Tuple[int, Optional[Edge]]], start: int
) -> List[Edge]:
    """Reconstruct the edge path from ``start`` down to the BFS origin."""
    path: List[Edge] = []
    vid = start
    while True:
        _dist, edge = anc[vid]
        if edge is None:
            break
        path.append(edge)
        vid = edge.dst_id
    return path


def lowest_common_ancestor(
    pag: PAG,
    v: Vertex,
    w: Vertex,
    edge_ok: Optional[EdgePredicate] = None,
) -> Tuple[Optional[Vertex], List[Edge]]:
    """Deepest common ancestor of ``v`` and ``w`` and the connecting path.

    Returns ``(lca, path)`` where ``path`` is the concatenation of the
    edge paths lca→v and lca→w (the paper's Listing 5 returns the LCA
    vertex plus an edge set).  ``(None, [])`` if the vertices share no
    ancestor under the edge filter.

    Depth ties are broken toward the ancestor nearest to ``v`` and ``w``
    (smallest combined hop distance), which favors the most specific
    cause.
    """
    if v.id == w.id:
        return v, []
    anc_v = _ancestor_depths(pag, v, edge_ok)
    anc_w = _ancestor_depths(pag, w, edge_ok)
    common = set(anc_v) & set(anc_w)
    common.discard(v.id)
    common.discard(w.id)
    # One input being the other's ancestor is the degenerate causal case:
    # report the ancestor itself.
    if w.id in anc_v:
        return pag.vertex(w.id), _path_down(anc_v, w.id)
    if v.id in anc_w:
        return pag.vertex(v.id), _path_down(anc_w, v.id)
    if not common:
        return None, []
    best = min(common, key=lambda a: (anc_v[a][0] + anc_w[a][0], a))
    path = _path_down(anc_v, best) + _path_down(anc_w, best)
    return pag.vertex(best), path

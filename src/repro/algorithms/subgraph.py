"""Labeled subgraph matching — the contention-detection kernel.

Paper §4.3.2-D: resource-contention misbehaviours have characteristic
shapes on the parallel view; contention detection searches all
embeddings of small candidate pattern graphs.  We implement a VF2-style
backtracking matcher with label/degree pruning — patterns have a
handful of vertices, so the search is dominated by candidate filtering.

Pattern vertices may constrain the data-graph vertex by ``label``
(VertexLabel), ``call_kind``, ``name`` glob, or an arbitrary predicate;
pattern edges may constrain by ``label`` (EdgeLabel) or predicate.
Unconstrained pattern elements match anything, so Listing 6's abstract
A..E pattern is expressible directly.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.pag.edge import Edge, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.vertex import CallKind, Vertex, VertexLabel


@dataclass
class _PatternVertex:
    key: Any
    label: Optional[VertexLabel] = None
    call_kind: Optional[CallKind] = None
    name: Optional[str] = None
    predicate: Optional[Callable[[Vertex], bool]] = None

    def matches(self, v: Vertex) -> bool:
        if self.label is not None and v.label is not self.label:
            return False
        if self.call_kind is not None and v.call_kind is not self.call_kind:
            return False
        if self.name is not None and not fnmatch.fnmatchcase(v.name, self.name):
            return False
        if self.predicate is not None and not self.predicate(v):
            return False
        return True


@dataclass
class _PatternEdge:
    src: Any
    dst: Any
    label: Optional[EdgeLabel] = None
    predicate: Optional[Callable[[Edge], bool]] = None

    def matches(self, e: Edge) -> bool:
        if self.label is not None and e.label is not self.label:
            return False
        if self.predicate is not None and not self.predicate(e):
            return False
        return True


class PatternGraph:
    """A small labeled pattern (the ``sub_pag`` of Listing 6)."""

    def __init__(self) -> None:
        self._vertices: Dict[Any, _PatternVertex] = {}
        self._edges: List[_PatternEdge] = []

    def add_vertex(
        self,
        key: Any,
        label: Optional[VertexLabel] = None,
        call_kind: Optional[CallKind] = None,
        name: Optional[str] = None,
        predicate: Optional[Callable[[Vertex], bool]] = None,
    ) -> "PatternGraph":
        if key in self._vertices:
            raise ValueError(f"duplicate pattern vertex {key!r}")
        self._vertices[key] = _PatternVertex(key, label, call_kind, name, predicate)
        return self

    def add_vertices(self, items: Iterable[Tuple[Any, str]]) -> "PatternGraph":
        """Listing-6 style bulk add: ``[(1, "A"), (2, "B"), ...]``.

        The second element is a display tag only (the paper's pattern
        vertices are abstract); it imposes no constraint.
        """
        for key, _tag in items:
            self.add_vertex(key)
        return self

    def add_edge(
        self,
        src: Any,
        dst: Any,
        label: Optional[EdgeLabel] = None,
        predicate: Optional[Callable[[Edge], bool]] = None,
    ) -> "PatternGraph":
        for key in (src, dst):
            if key not in self._vertices:
                raise KeyError(f"pattern vertex {key!r} not declared")
        self._edges.append(_PatternEdge(src, dst, label, predicate))
        return self

    def add_edges(self, pairs: Iterable[Tuple[Any, Any]]) -> "PatternGraph":
        for src, dst in pairs:
            self.add_edge(src, dst)
        return self

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    # -- matcher internals ---------------------------------------------------
    def _adjacency(self):
        out_adj: Dict[Any, List[_PatternEdge]] = {k: [] for k in self._vertices}
        in_adj: Dict[Any, List[_PatternEdge]] = {k: [] for k in self._vertices}
        for pe in self._edges:
            out_adj[pe.src].append(pe)
            in_adj[pe.dst].append(pe)
        return out_adj, in_adj

    def _search_order(self) -> List[Any]:
        """Connected-first ordering: each vertex after the first shares an
        edge with an earlier one when possible (cuts the search space)."""
        out_adj, in_adj = self._adjacency()
        degree = {
            k: len(out_adj[k]) + len(in_adj[k]) for k in self._vertices
        }
        order: List[Any] = []
        placed = set()
        remaining = set(self._vertices)
        while remaining:
            connected = [
                k
                for k in remaining
                if any(pe.dst in placed for pe in out_adj[k])
                or any(pe.src in placed for pe in in_adj[k])
            ]
            pool = connected or list(remaining)
            # highest degree first (the anchor of the search is the most
            # constrained vertex); ties resolved by key string ascending
            nxt = sorted(pool, key=lambda k: (-degree[k], str(k)))[0]
            order.append(nxt)
            placed.add(nxt)
            remaining.remove(nxt)
        return order


@dataclass
class Embedding:
    """One match: pattern key -> data vertex, plus the matched edges."""

    vertices: Dict[Any, Vertex] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)


def subgraph_matching(
    pag: PAG,
    pattern: PatternGraph,
    candidates: Optional[Iterable[Vertex]] = None,
    limit: Optional[int] = None,
) -> List[Embedding]:
    """All embeddings of ``pattern`` in ``pag`` (injective on vertices).

    ``candidates`` restricts the anchor (first pattern vertex in search
    order) to the given vertices — the contention pass searches "around"
    its input set this way instead of over the whole graph.  ``limit``
    caps the number of embeddings returned.
    """
    order = pattern._search_order()
    if not order:
        return []
    out_adj, in_adj = pattern._adjacency()
    results: List[Embedding] = []

    anchor_pool: Iterable[Vertex]
    pv0 = pattern._vertices[order[0]]
    if candidates is not None:
        anchor_pool = [v for v in candidates if pv0.matches(v)]
    else:
        anchor_pool = (v for v in pag.vertices() if pv0.matches(v))

    def candidates_for(key: Any, mapping: Dict[Any, Vertex]) -> Iterator[Vertex]:
        """Data vertices adjacent to already-mapped pattern neighbors."""
        pv = pattern._vertices[key]
        pools: List[List[Vertex]] = []
        for pe in out_adj[key]:
            if pe.dst in mapping:
                pool = [
                    e.src
                    for e in pag.in_edges(mapping[pe.dst].id)
                    if pe.matches(e)
                ]
                pools.append(pool)
        for pe in in_adj[key]:
            if pe.src in mapping:
                pool = [
                    e.dst
                    for e in pag.out_edges(mapping[pe.src].id)
                    if pe.matches(e)
                ]
                pools.append(pool)
        if not pools:
            yield from (v for v in pag.vertices() if pv.matches(v))
            return
        base = min(pools, key=len)
        other_ids = [{v.id for v in p} for p in pools if p is not base]
        for v in base:
            if pv.matches(v) and all(v.id in ids for ids in other_ids):
                yield v

    def check_edges(key: Any, v: Vertex, mapping: Dict[Any, Vertex]) -> Optional[List[Edge]]:
        """Verify every pattern edge between ``key`` and mapped keys."""
        matched: List[Edge] = []
        for pe in out_adj[key]:
            if pe.dst in mapping:
                hits = [
                    e
                    for e in pag.out_edges(v.id)
                    if e.dst_id == mapping[pe.dst].id and pe.matches(e)
                ]
                if not hits:
                    return None
                matched.append(hits[0])
        for pe in in_adj[key]:
            if pe.src in mapping:
                hits = [
                    e
                    for e in pag.in_edges(v.id)
                    if e.src_id == mapping[pe.src].id and pe.matches(e)
                ]
                if not hits:
                    return None
                matched.append(hits[0])
        return matched

    def backtrack(idx: int, mapping: Dict[Any, Vertex], edges: List[Edge]) -> bool:
        """Returns True when the embedding limit is reached."""
        if idx == len(order):
            results.append(Embedding(dict(mapping), list(edges)))
            return limit is not None and len(results) >= limit
        key = order[idx]
        used = {v.id for v in mapping.values()}
        pool = anchor_pool if idx == 0 else candidates_for(key, mapping)
        for v in pool:
            if v.id in used:
                continue
            matched = check_edges(key, v, mapping)
            if matched is None:
                continue
            mapping[key] = v
            if backtrack(idx + 1, mapping, edges + matched):
                return True
            del mapping[key]
        return False

    backtrack(0, {}, [])
    return results

"""Wire protocol for the analysis server: requests, errors, NDJSON events.

One endpoint does the work::

    POST /v1/analyze
    {
      "pipeline": "mpi_profiler",          # see repro.serve.pipelines
      "params":   {"top": 5},              # pipeline-specific, JSON scalars
      "pag":      {...}                    # inline saved-PAG document, OR
      "pag_path": "run.pag3",              # a PAG file the server can read
      "request_id": "client-7"             # optional, echoed back
    }

The response is a close-delimited ``application/x-ndjson`` stream — one
JSON object per line — so a client sees progress before the result::

    {"event": "accepted", "request_id": "client-7", "pipeline": "..."}
    {"event": "started",  "key": "<single-flight key>"}
    {"event": "result",   "collapsed": false, "elapsed_ms": 12.3,
     "result": {...}}

Failures before the stream starts are plain JSON error bodies with an
HTTP status (400 malformed request / failed ``check()``, 403 ``pag_path``
outside the configured ``--pag-root``, 404 unknown route, 413 oversized
body, 429 overloaded — with ``Retry-After`` — 431 oversized header
section, and 503 while draining).  Failures after the stream has started
arrive as a final ``{"event": "error", ...}`` line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "MAX_BODY_BYTES",
    "ProtocolError",
    "AnalyzeRequest",
    "parse_analyze_request",
    "canonical_params",
    "event_line",
    "error_body",
]

#: Largest accepted request body (inline PAG uploads included).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """A request the server refuses, mapped onto an HTTP status."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
        diagnostics: Optional[List[Dict[str, Any]]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.diagnostics = diagnostics


@dataclass
class AnalyzeRequest:
    """A parsed, structurally valid ``/v1/analyze`` body."""

    pipeline: str
    params: Dict[str, Any] = field(default_factory=dict)
    pag_doc: Optional[Dict[str, Any]] = None
    pag_path: Optional[str] = None
    request_id: Optional[str] = None


def _bad(message: str) -> ProtocolError:
    return ProtocolError(400, "bad-request", message)


def parse_analyze_request(body: bytes) -> AnalyzeRequest:
    """Parse and structurally validate an analyze body.

    Raises :class:`ProtocolError` (status 400) on anything malformed;
    pipeline existence and parameter names are checked later against
    the registry (:mod:`repro.serve.pipelines`).
    """
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise _bad(f"body is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise _bad(f"body must be a JSON object, got {type(doc).__name__}")

    pipeline = doc.get("pipeline")
    if not isinstance(pipeline, str) or not pipeline:
        raise _bad('"pipeline" must be a non-empty string')

    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise _bad('"params" must be a JSON object')
    for key, value in params.items():
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            raise _bad(
                f'param {key!r} must be a JSON scalar, '
                f"got {type(value).__name__}"
            )

    pag_doc = doc.get("pag")
    pag_path = doc.get("pag_path")
    if (pag_doc is None) == (pag_path is None):
        raise _bad('exactly one of "pag" (inline) or "pag_path" is required')
    if pag_doc is not None and not isinstance(pag_doc, dict):
        raise _bad('"pag" must be a saved-PAG JSON object')
    if pag_path is not None and not isinstance(pag_path, str):
        raise _bad('"pag_path" must be a string path')

    request_id = doc.get("request_id")
    if request_id is not None and not isinstance(request_id, str):
        raise _bad('"request_id" must be a string')

    unknown = sorted(
        set(doc) - {"pipeline", "params", "pag", "pag_path", "request_id"}
    )
    if unknown:
        raise _bad(f"unknown field(s): {', '.join(unknown)}")

    return AnalyzeRequest(
        pipeline=pipeline,
        params=dict(params),
        pag_doc=pag_doc,
        pag_path=pag_path,
        request_id=request_id,
    )


def canonical_params(params: Dict[str, Any]) -> str:
    """Deterministic rendering of a params dict for single-flight keys."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def event_line(event: str, **fields: Any) -> bytes:
    """One NDJSON stream line (newline-terminated, UTF-8)."""
    doc = {"event": event}
    doc.update(fields)
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def error_body(err: ProtocolError) -> bytes:
    doc: Dict[str, Any] = {
        "error": {"code": err.code, "message": err.message}
    }
    if err.retry_after is not None:
        doc["error"]["retry_after_s"] = err.retry_after
    if err.diagnostics:
        doc["error"]["diagnostics"] = err.diagnostics
    return json.dumps(doc, sort_keys=True).encode("utf-8")

"""Admission control for the analysis server.

Two bounds, enforced at different points of a request's life:

* **Admission** (`max_concurrent + max_queue`): a hard cap on requests
  inside the server at once.  Beyond it the server answers 429 with a
  ``Retry-After`` hint instead of queueing unboundedly — load sheds at
  the front door, not by OOM.
* **Execution slots** (`max_concurrent`): an asyncio semaphore bounding
  pipelines actually running on the worker pool.  Only single-flight
  *leaders* take a slot; followers wait on the leader's future without
  holding one, so collapsed requests never occupy workers.

Gauges ``serve.queue_depth`` (admitted but not running) and
``serve.inflight`` (running) track both populations on the global
metrics registry.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.obs import metrics as _metrics
from repro.serve.protocol import ProtocolError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Front-door capacity bookkeeping (single event loop; no locks)."""

    def __init__(self, max_concurrent: int = 4, max_queue: int = 16):
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self._admitted = 0
        self._running = 0
        # Created lazily in __aenter__: on Python 3.9 a Semaphore binds
        # events.get_event_loop() at construction, and the controller is
        # built before (and possibly on a different thread than) the
        # loop that serves — eager construction would make contended
        # acquire() await a future on the wrong loop and RuntimeError.
        self._slots: Optional[asyncio.Semaphore] = None
        self._publish()

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def running(self) -> int:
        return self._running

    def _publish(self) -> None:
        _metrics.gauge("serve.inflight").set(self._running)
        _metrics.gauge("serve.queue_depth").set(
            max(0, self._admitted - self._running)
        )

    def admit(self) -> None:
        """Claim an admission; 429 :class:`ProtocolError` when full."""
        capacity = self.max_concurrent + self.max_queue
        if self._admitted >= capacity:
            _metrics.counter("serve.rejected").inc()
            raise ProtocolError(
                429,
                "overloaded",
                f"server at capacity ({capacity} requests); retry later",
                retry_after=1.0,
            )
        self._admitted += 1
        self._publish()

    def release(self) -> None:
        self._admitted = max(0, self._admitted - 1)
        self._publish()

    async def __aenter__(self) -> "AdmissionController":
        """Acquire an execution slot (leaders only)."""
        if self._slots is None:  # first use: bind the running loop
            self._slots = asyncio.Semaphore(self.max_concurrent)
        await self._slots.acquire()
        self._running += 1
        self._publish()
        return self

    async def __aexit__(self, *exc: object) -> None:
        self._running = max(0, self._running - 1)
        assert self._slots is not None  # __aenter__ created it
        self._slots.release()
        self._publish()

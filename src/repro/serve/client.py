"""Minimal blocking client + in-process server harness.

Used by the test suite, the CI smoke script, and the load benchmark;
also a reference for talking to the server from plain stdlib code (the
protocol is ordinary HTTP/1.1 with close-delimited NDJSON responses, so
``curl`` works just as well).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.server import ReproServer, ServerConfig

__all__ = ["http_request", "analyze", "wait_ready", "ServerThread"]


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One blocking HTTP exchange; returns (status, headers, body)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        payload = resp.read()  # close-delimited: reads the full stream
        return resp.status, {k.lower(): v for k, v in resp.getheaders()}, payload
    finally:
        conn.close()


def analyze(
    host: str,
    port: int,
    payload: Dict[str, Any],
    timeout: float = 60.0,
) -> Tuple[int, List[Dict[str, Any]]]:
    """POST /v1/analyze; returns (status, parsed events-or-error).

    For a 200 the second element is the NDJSON event list; for errors
    it is a one-element list holding the JSON error body.
    """
    status, _headers, body = http_request(
        host,
        port,
        "POST",
        "/v1/analyze",
        body=json.dumps(payload).encode("utf-8"),
        timeout=timeout,
    )
    text = body.decode("utf-8", errors="replace")
    docs = [json.loads(line) for line in text.splitlines() if line.strip()]
    return status, docs


def wait_ready(host: str, port: int, timeout: float = 10.0) -> None:
    """Block until the server accepts connections (or raise TimeoutError)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(f"server at {host}:{port} never came up")
            time.sleep(0.02)


class ServerThread:
    """A :class:`ReproServer` on a background thread (tests, benchmarks).

    Runs the server's event loop off the main thread (so no signal
    handlers) and exposes ``host``/``port`` once listening::

        with ServerThread(ServerConfig(port=0)) as st:
            analyze(st.host, st.port, {...})
    """

    def __init__(self, config: Optional[ServerConfig] = None):
        self.server = ReproServer(config or ServerConfig(port=0))
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        async def _amain() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_forever(install_signals=False)

        try:
            asyncio.run(_amain())
        except BaseException as exc:  # surfaced via join()
            self._error = exc

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise TimeoutError("server thread never became ready")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def stop(self, timeout: float = 15.0) -> None:
        """Request a graceful drain and join the thread."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_drain)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

"""repro.serve — analysis-as-a-service front end.

Turns one-shot CLI analyses into a long-lived concurrent service:
``repro serve`` accepts PAG-plus-pipeline requests over HTTP/JSON,
validates them with ``PerFlowGraph.check()``, executes them on a
bounded worker pool (thread or process backend), collapses concurrent
identical requests into one execution (single-flight), and shares the
content-addressed result cache across every client.  See
``docs/SERVING.md``.
"""

from repro.serve.pipelines import (
    PipelineSpec,
    build_graph,
    get_pipeline,
    pipeline_names,
    register_pipeline,
    unregister_pipeline,
)
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    AnalyzeRequest,
    ProtocolError,
    parse_analyze_request,
)
from repro.serve.queue import AdmissionController
from repro.serve.server import ReproServer, ServerConfig
from repro.serve.singleflight import SingleFlight

__all__ = [
    "AdmissionController",
    "AnalyzeRequest",
    "MAX_BODY_BYTES",
    "PipelineSpec",
    "ProtocolError",
    "ReproServer",
    "ServerConfig",
    "SingleFlight",
    "build_graph",
    "get_pipeline",
    "parse_analyze_request",
    "pipeline_names",
    "register_pipeline",
    "unregister_pipeline",
]

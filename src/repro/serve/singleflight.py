"""In-flight request collapsing (single-flight) for the analysis server.

Concurrent requests with the same key — blake2 over (PAG fingerprint,
pipeline name, canonical params) — execute once: the first caller (the
*leader*) runs the supplier; everyone else (*followers*) awaits the
leader's future and shares its result.

Failure semantics: a failed leader must not poison followers with a
stale error.  On supplier failure the leader removes the key and wakes
followers with a retry sentinel; each follower loops, and exactly one
becomes the new leader (the rest collapse onto it).  Followers
therefore re-execute after a failure rather than re-raising an error
from work they never issued.

All state lives on one event loop — no locks needed.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Tuple

__all__ = ["SingleFlight"]

#: Future result meaning "leader failed; retry" (never returned to callers).
_RETRY = object()


class SingleFlight:
    """Collapse concurrent identical suppliers into one execution."""

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        self._waiters: Dict[str, int] = {}

    def waiters(self, key: str) -> int:
        """Followers currently awaiting this key (tests/metrics)."""
        return self._waiters.get(key, 0)

    def inflight(self) -> int:
        """Distinct keys currently executing."""
        return len(self._inflight)

    async def run(
        self, key: str, supplier: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        """Run (or join) the execution for ``key``.

        Returns ``(result, was_leader)``.  The leader's exception
        propagates to the leader only; followers retry.
        """
        while True:
            fut = self._inflight.get(key)
            if fut is None:
                loop = asyncio.get_running_loop()
                fut = loop.create_future()
                self._inflight[key] = fut
                try:
                    result = await supplier()
                except BaseException:
                    self._inflight.pop(key, None)
                    if not fut.done():
                        fut.set_result(_RETRY)
                    raise
                self._inflight.pop(key, None)
                if not fut.done():
                    fut.set_result(result)
                return result, True
            self._waiters[key] = self._waiters.get(key, 0) + 1
            try:
                result = await asyncio.shield(fut)
            finally:
                n = self._waiters.get(key, 0) - 1
                if n > 0:
                    self._waiters[key] = n
                else:
                    self._waiters.pop(key, None)
            if result is _RETRY:
                continue
            return result, False

"""Named analysis pipelines the server can run on an uploaded PAG.

A :class:`PipelineSpec` maps a wire name to a builder producing a
:class:`~repro.dataflow.graph.PerFlowGraph` with one declared input
``V`` (the PAG's full vertex set) and a final pass named ``result``
whose output is plain JSON-safe data (lists of dicts) — streamable to
the client and storable in the content-addressed result cache.

Builders close over *plain parameter values only* (never live graphs or
server objects): :func:`repro.cache.keys.pass_identity` keys a pass by
source + closure values, so two requests with the same pipeline, the
same params, and the same PAG fingerprint produce identical cache keys
— across threads, processes, and server restarts.  That identity is
also what the single-flight tier collapses on.

``register_pipeline`` is open: tests (and deployments embedding the
server) can add their own specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.dataflow.graph import PerFlowGraph
from repro.pag.sets import VertexSet
from repro.passes.filters import comm_filter
from repro.passes.hotspot import hotspot_detection
from repro.passes.imbalance import imbalance_analysis

__all__ = [
    "PipelineSpec",
    "register_pipeline",
    "unregister_pipeline",
    "get_pipeline",
    "pipeline_names",
    "build_graph",
]


@dataclass(frozen=True)
class PipelineSpec:
    """One servable pipeline: wire name, defaults, graph builder."""

    name: str
    description: str
    build: Callable[[Dict[str, Any]], PerFlowGraph]
    defaults: Dict[str, Any] = field(default_factory=dict)


_REGISTRY: Dict[str, PipelineSpec] = {}


def register_pipeline(spec: PipelineSpec) -> None:
    _REGISTRY[spec.name] = spec


def unregister_pipeline(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_pipeline(name: str) -> PipelineSpec:
    """The registered spec; raises :class:`KeyError` with alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pipeline {name!r}; available: "
            f"{', '.join(pipeline_names())}"
        )


def pipeline_names() -> List[str]:
    return sorted(_REGISTRY)


def build_graph(name: str, params: Dict[str, Any]) -> PerFlowGraph:
    """Build the named pipeline's graph with defaults + ``params`` merged.

    Raises :class:`KeyError` for an unknown pipeline and
    :class:`ValueError` for parameter names the pipeline doesn't take.
    """
    spec = get_pipeline(name)
    unknown = sorted(set(params) - set(spec.defaults))
    if unknown:
        raise ValueError(
            f"pipeline {name!r} takes no param(s) {', '.join(unknown)}; "
            f"accepted: {', '.join(sorted(spec.defaults)) or '(none)'}"
        )
    merged = dict(spec.defaults)
    merged.update(params)
    return spec.build(merged)


# ----------------------------------------------------------------------
# JSON-safe row formatters (module-level: stable pass identities)
# ----------------------------------------------------------------------
def _vertex_rows(V: VertexSet) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for v in V:
        rows.append(
            {
                "name": v.name,
                "site": str(v["debug-info"]),
                "time": float(v["time"] or 0.0),
                "count": int(v["count"] or 0),
            }
        )
    return rows


def _profile_rows(V_hot: VertexSet, V_all: VertexSet) -> List[Dict[str, Any]]:
    times = [float(t or 0.0) for t in V_all.values("time")]
    total = max(times) if times else 0.0  # root inclusive time
    rows: List[Dict[str, Any]] = []
    for v in V_hot:
        t = float(v["time"] or 0.0)
        if t <= 0.0:
            continue
        info = v["comm-info"] or {}
        rows.append(
            {
                "name": v.name,
                "site": str(v["debug-info"]),
                "time": t,
                "app_pct": 100.0 * t / total if total > 0 else 0.0,
                "count": int(v["count"] or 0),
                "bytes": float(info.get("bytes", 0.0)),
            }
        )
    return rows


# ----------------------------------------------------------------------
# built-in pipelines
# ----------------------------------------------------------------------
def _build_hotspot(params: Dict[str, Any]) -> PerFlowGraph:
    metric, top = str(params["metric"]), int(params["top"])
    g = PerFlowGraph("serve-hotspot")
    V = g.input("V", VertexSet)
    V_hot = g.add_pass(
        lambda s: hotspot_detection(s, metric=metric, n=top),
        V,
        name="hotspot",
        signature=((VertexSet,), (VertexSet,)),
    )
    g.add_pass(
        _vertex_rows,
        V_hot,
        name="result",
        signature=((VertexSet,), ("any",)),
    )
    return g


def _build_mpi_profiler(params: Dict[str, Any]) -> PerFlowGraph:
    top = int(params["top"])
    g = PerFlowGraph("serve-mpi-profiler")
    V = g.input("V", VertexSet)
    V_comm = g.add_pass(comm_filter, V, name="comm_filter")
    V_hot = g.add_pass(
        lambda s: hotspot_detection(s, metric="time", n=top),
        V_comm,
        name="hotspot",
        signature=((VertexSet,), (VertexSet,)),
    )
    g.add_pass(
        _profile_rows,
        V_hot,
        V,
        name="result",
        signature=((VertexSet, VertexSet), ("any",)),
    )
    return g


def _build_imbalance(params: Dict[str, Any]) -> PerFlowGraph:
    threshold = float(params["threshold"])
    top = int(params["top"])
    g = PerFlowGraph("serve-imbalance")
    V = g.input("V", VertexSet)
    V_imb = g.add_pass(
        lambda s: imbalance_analysis(s, threshold=threshold),
        V,
        name="imbalance",
        signature=((VertexSet,), (VertexSet,)),
    )
    V_top = g.add_pass(
        lambda s: hotspot_detection(s, metric="time", n=top),
        V_imb,
        name="top",
        signature=((VertexSet,), (VertexSet,)),
    )
    g.add_pass(
        _vertex_rows,
        V_top,
        name="result",
        signature=((VertexSet,), ("any",)),
    )
    return g


register_pipeline(
    PipelineSpec(
        name="hotspot",
        description="rank vertices by a metric, return the top N",
        build=_build_hotspot,
        defaults={"metric": "time", "top": 10},
    )
)
register_pipeline(
    PipelineSpec(
        name="mpi_profiler",
        description="mpiP-style per-call-site communication profile",
        build=_build_mpi_profiler,
        defaults={"top": 20},
    )
)
register_pipeline(
    PipelineSpec(
        name="imbalance",
        description="vertices with imbalanced per-process behaviour",
        build=_build_imbalance,
        defaults={"threshold": 1.2, "top": 10},
    )
)

"""The asyncio analysis server (``repro serve``).

Architecture — one event loop, one bounded thread pool::

    client ──HTTP──▶ asyncio loop ──▶ admission (429 beyond capacity)
                                 ──▶ prepare  (load PAG, build graph,
                                               check(), cache key)
                                 ──▶ single-flight (identical requests
                                               collapse onto one leader)
                                 ──▶ executor slot ──▶ graph.run(...)
                                               (thread or process backend)
                                 ◀── NDJSON events back to every caller

The HTTP layer is a deliberately small hand-rolled HTTP/1.1 subset
(request line + headers + Content-Length body; every response is
``Connection: close``) — stdlib only, enough for ``curl``,
``http.client``, and load generators, with zero new dependencies.

The shared :class:`~repro.cache.store.PassCache` is the multi-tenant
tier: a request whose ``(fingerprint, pipeline, params)`` was computed
before — by any client, or any previous server process when a disk
cache directory is configured — is a cache hit; an identical request
*currently executing* collapses onto it via
:class:`~repro.serve.singleflight.SingleFlight` without taking a
worker slot.

SIGTERM/SIGINT triggers a graceful drain: the listener closes, new
analyzes get 503, in-flight requests run to completion (bounded by
``drain_timeout``), then the process exits 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.serve import pipelines as _pipelines
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    AnalyzeRequest,
    ProtocolError,
    canonical_params,
    error_body,
    event_line,
    parse_analyze_request,
)
from repro.serve.queue import AdmissionController
from repro.serve.singleflight import SingleFlight

__all__ = ["ServerConfig", "ReproServer"]

_NULL_CM = contextlib.nullcontext()

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Pre-admission bounds on the header section: admission control only
#: applies once a request parses, so the raw read loop itself must not
#: let a client grow server memory without limit.
MAX_HEADER_LINES = 100
MAX_HEADER_BYTES = 16 * 1024


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8321
    jobs: Optional[int] = None
    backend: Optional[str] = None
    cache: Any = None
    cache_dir: Optional[str] = None
    max_concurrent: int = 4
    max_queue: int = 16
    drain_timeout: float = 10.0
    ledger: Optional[bool] = None
    ledger_dir: Optional[str] = None
    max_body_bytes: int = MAX_BODY_BYTES
    #: When set, ``pag_path`` requests must resolve (symlinks and ``..``
    #: included) under this directory; anything else is a 403.  ``None``
    #: (the default) trusts clients with any server-readable path —
    #: acceptable only behind the default loopback bind.
    pag_root: Optional[str] = None


@dataclass
class _Prepared:
    """A validated request, ready for (or collapsed into) execution."""

    request: AnalyzeRequest
    pag: Any
    graph: Any
    fingerprint: str
    key: str


class ReproServer:
    """One listening analysis server; see the module docstring."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        from repro.cache import resolve_cache
        from repro.dataflow.scheduler import resolve_backend, resolve_jobs

        self.jobs = resolve_jobs(self.config.jobs)
        self.backend = resolve_backend(self.config.backend)
        cache_spec: Any = self.config.cache
        if self.config.cache_dir:
            cache_spec = self.config.cache_dir
        # One shared PassCache for every request: this is the
        # multi-tenant tier (MemoryLRU is thread-safe; the disk tier is
        # multi-process safe).
        self.cache = resolve_cache(cache_spec)

        from repro.obs import ledger as _ledger

        self._ledger_dir = _ledger.resolve_ledger(
            self.config.ledger, self.config.ledger_dir
        )

        self._flight = SingleFlight()
        self._admission = AdmissionController(
            self.config.max_concurrent, self.config.max_queue
        )
        # +2 threads over the slot count so prepare work (PAG loads,
        # graph checks) is never starved by running pipelines.
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent + 2,
            thread_name_prefix="serve",
        )
        # Forking is not thread-safe: a worker forked while a sibling
        # execution holds a lock (the shm publish path takes the global
        # resource_tracker lock) inherits it held and deadlocks.  The
        # process backend forks lazily at submit, so the server must be
        # a single-forker: one process-backend run at a time, with the
        # run's own jobs=N worker pool providing the parallelism.
        self._fork_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set["asyncio.Task[Any]"] = set()
        self._stop: Optional[asyncio.Event] = None
        self.draining = False
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Start, run until :meth:`request_drain`, then drain cleanly."""
        if self._server is None:
            await self.start()
        assert self._stop is not None
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_drain)
                except (NotImplementedError, ValueError, RuntimeError):
                    break  # non-main thread or unsupported platform
        await self._stop.wait()
        await self.drain()

    def request_drain(self) -> None:
        """Begin graceful shutdown (signal handler / test hook)."""
        self.draining = True
        if self._stop is not None:
            self._stop.set()

    async def drain(self) -> None:
        """Close the listener and wait for in-flight connections."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            done, still = await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
            for task in still:
                task.cancel()
            if still:
                await asyncio.gather(*still, return_exceptions=True)
        self._pool.shutdown(wait=True)

    # -- connection handling ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target, headers, body = await self._read_request(reader)
        except ProtocolError as err:
            self._write_error(writer, err)
            await writer.drain()
            return
        except (ValueError, asyncio.LimitOverrunError):
            self._write_error(
                writer, ProtocolError(400, "bad-request", "malformed HTTP request")
            )
            await writer.drain()
            return

        if method == "GET" and target == "/healthz":
            self._write_json(writer, 200, self._health_doc())
        elif method == "GET" and target == "/metrics":
            self._write_json(writer, 200, _metrics.registry.to_dict())
        elif method == "POST" and target == "/v1/analyze":
            await self._handle_analyze(writer, body)
        else:
            self._write_error(
                writer,
                ProtocolError(404, "not-found", f"no route {method} {target}"),
            )
        await writer.drain()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        line = await reader.readline()
        if not line:
            raise ProtocolError(400, "bad-request", "empty request")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ProtocolError(400, "bad-request", "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        header_lines = 0
        header_bytes = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            header_lines += 1
            header_bytes += len(raw)
            if header_lines > MAX_HEADER_LINES or header_bytes > MAX_HEADER_BYTES:
                raise ProtocolError(
                    431,
                    "headers-too-large",
                    f"header section exceeds {MAX_HEADER_LINES} lines / "
                    f"{MAX_HEADER_BYTES} bytes",
                )
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            raise ProtocolError(
                413,
                "too-large",
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _health_doc(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "inflight": self._admission.running,
            "admitted": self._admission.admitted,
            "backend": self.backend,
            "jobs": self.jobs,
            "pipelines": _pipelines.pipeline_names(),
        }

    # -- the analyze endpoint -----------------------------------------------
    async def _handle_analyze(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        t0 = time.perf_counter()
        if self.draining:
            self._write_error(
                writer,
                ProtocolError(503, "draining", "server is draining; retry elsewhere"),
            )
            return
        try:
            self._admission.admit()
        except ProtocolError as err:
            self._write_error(writer, err)
            return
        _metrics.counter("serve.requests").inc()
        # From here on the admission slot is held: every exit path —
        # prepare failure, client disconnect at a drain point, forced
        # cancellation during drain — must run the release() in the
        # outer finally exactly once, or capacity leaks until restart.
        try:
            try:
                req = parse_analyze_request(body)
                loop = asyncio.get_running_loop()
                prepared = await loop.run_in_executor(
                    self._pool, self._prepare, req
                )
            except ProtocolError as err:
                _metrics.counter("serve.errors").inc()
                self._write_error(writer, err)
                return
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                _metrics.counter("serve.errors").inc()
                self._write_error(
                    writer,
                    ProtocolError(500, "internal", f"{type(exc).__name__}: {exc}"),
                )
                return

            # Validated: the response is now a close-delimited NDJSON stream.
            self._start_stream(writer)
            writer.write(
                event_line(
                    "accepted",
                    request_id=req.request_id,
                    pipeline=req.pipeline,
                    fingerprint=prepared.fingerprint,
                )
            )
            writer.write(event_line("started", key=prepared.key))
            await writer.drain()

            exit_code = 0
            try:
                result, was_leader = await self._flight.run(
                    prepared.key, lambda: self._run_leader(prepared)
                )
                if not was_leader:
                    _metrics.counter("serve.collapsed").inc()
                elapsed_ms = (time.perf_counter() - t0) * 1000.0
                writer.write(
                    event_line(
                        "result",
                        request_id=req.request_id,
                        collapsed=not was_leader,
                        elapsed_ms=round(elapsed_ms, 3),
                        result=result,
                    )
                )
            except asyncio.CancelledError:
                exit_code = 1
                raise
            except BaseException as exc:
                exit_code = 1
                _metrics.counter("serve.errors").inc()
                writer.write(
                    event_line(
                        "error",
                        request_id=req.request_id,
                        code="execution",
                        message=f"{type(exc).__name__}: {exc}",
                    )
                )
            finally:
                elapsed_ms = (time.perf_counter() - t0) * 1000.0
                _metrics.histogram("serve.latency_ms").observe(elapsed_ms)
                # Ledger appends do disk I/O (open/write/rename), so they
                # go to the pool — never the event loop thread.  Fire and
                # forget: _append_ledger never raises, and drain()'s
                # pool.shutdown(wait=True) flushes stragglers on exit.
                with contextlib.suppress(RuntimeError):
                    self._pool.submit(
                        self._append_ledger,
                        req,
                        prepared,
                        elapsed_ms / 1000.0,
                        exit_code,
                    )
        finally:
            self._admission.release()
        await writer.drain()

    async def _run_leader(self, prepared: _Prepared) -> Any:
        """Leader path: take an execution slot, run on the pool."""
        async with self._admission:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._pool, self._execute, prepared
            )

    # -- synchronous work (executor threads) --------------------------------
    def _prepare(self, req: AnalyzeRequest) -> _Prepared:
        pag = self._load_pag(req)
        try:
            graph = _pipelines.build_graph(req.pipeline, req.params)
        except KeyError as err:
            raise ProtocolError(400, "unknown-pipeline", str(err.args[0]))
        except ValueError as err:
            raise ProtocolError(400, "bad-params", str(err))
        diags = graph.check(V=pag.vs)
        if diags:
            raise ProtocolError(
                400,
                "pipeline-check",
                f"pipeline {req.pipeline!r} failed check() with "
                f"{len(diags)} diagnostic(s)",
                diagnostics=[
                    {"code": d.code, "message": d.message, "node": d.node}
                    for d in diags
                ],
            )
        fp = pag.fingerprint()
        key = hashlib.blake2b(
            f"{fp}|{req.pipeline}|{canonical_params(req.params)}".encode("utf-8"),
            digest_size=16,
        ).hexdigest()
        return _Prepared(req, pag, graph, fp, key)

    def _load_pag(self, req: AnalyzeRequest) -> Any:
        from repro.pag.formats import detect_format, load_pag, pag_from_dict
        from repro.pag.serialize import PAGFormatError

        try:
            if req.pag_doc is not None:
                return pag_from_dict(req.pag_doc, path="<inline>")
            assert req.pag_path is not None
            path = self._authorize_pag_path(req.pag_path)
            # mmap format-3 files: the open is O(header) and the header
            # fingerprint seeds PAG.fingerprint(), so a warm cache probe
            # on an on-disk PAG reads zero column bytes.
            use_mmap = detect_format(path) == 3
            return load_pag(path, mmap=use_mmap)
        except PAGFormatError as err:
            raise ProtocolError(400, "bad-pag", str(err))
        except OSError as err:
            raise ProtocolError(400, "bad-pag", f"cannot read PAG: {err}")

    def _authorize_pag_path(self, path: str) -> str:
        """Apply the optional ``pag_root`` allow-list to a ``pag_path``.

        ``pag_path`` makes the server open files on its own filesystem
        on a client's behalf; with a root configured, the request path
        must resolve (through symlinks and ``..``) to somewhere under
        it, and the 403 carries no filesystem detail — no
        existence/permission oracle outside the root.
        """
        if self.config.pag_root is None:
            return path
        root = os.path.realpath(self.config.pag_root)
        real = os.path.realpath(path)
        if real != root and not real.startswith(root + os.sep):
            raise ProtocolError(
                403,
                "path-denied",
                "pag_path must resolve under the server's --pag-root",
            )
        return real

    def _execute(self, prepared: _Prepared) -> Any:
        with _trace.timed_span(
            "serve.request",
            category="serve",
            pipeline=prepared.request.pipeline,
            fingerprint=prepared.fingerprint[:16],
        ):
            with self._fork_lock if self.backend == "process" else _NULL_CM:
                out = prepared.graph.run(
                    jobs=self.jobs,
                    backend=self.backend,
                    cache=self.cache if self.cache is not None else False,
                    V=prepared.pag.vs,
                )
        return out["result"]

    def _append_ledger(
        self, req: AnalyzeRequest, prepared: _Prepared, wall_s: float, exit_code: int
    ) -> None:
        """One ledger record per request (never raises)."""
        if not self._ledger_dir:
            return
        from repro.obs import ledger as _ledger
        from repro.obs.log import get_logger

        try:
            record = _ledger.build_run_record(
                command="serve",
                argv=[req.pipeline, canonical_params(req.params)],
                paradigm=req.pipeline,
                params=dict(req.params),
                recorder=None,
                wall_s=wall_s,
                exit_code=exit_code,
                pag_fingerprints=[prepared.fingerprint],
            )
            _ledger.Ledger(self._ledger_dir).append(record)
        except Exception as err:  # pragma: no cover - best-effort
            get_logger("serve").warning("ledger append failed: %s", err)

    # -- response writing ---------------------------------------------------
    def _write_json(
        self, writer: asyncio.StreamWriter, status: int, doc: Dict[str, Any]
    ) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self._write_head(
            writer, status, [("Content-Length", str(len(body)))]
        )
        writer.write(body)

    def _write_error(self, writer: asyncio.StreamWriter, err: ProtocolError) -> None:
        body = error_body(err)
        headers: List[Tuple[str, str]] = [("Content-Length", str(len(body)))]
        if err.retry_after is not None:
            headers.append(("Retry-After", f"{err.retry_after:g}"))
        self._write_head(writer, err.status, headers)
        writer.write(body)

    def _start_stream(self, writer: asyncio.StreamWriter) -> None:
        self._write_head(
            writer, 200, [], content_type="application/x-ndjson"
        )

    def _write_head(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: List[Tuple[str, str]],
        content_type: str = "application/json",
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))


def main_loop(config: ServerConfig, announce: Any = None) -> int:
    """Blocking entry point used by ``repro serve``; returns exit code."""
    server = ReproServer(config)

    async def _run() -> None:
        await server.start()
        if announce is not None:
            print(f"serving on {server.host}:{server.port}", file=announce)
            announce.flush()
        await server.serve_forever()

    asyncio.run(_run())
    return 0

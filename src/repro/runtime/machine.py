"""Communication and overhead cost model of the simulated machine.

Point-to-point transfers follow the classic latency/bandwidth (alpha-beta)
model; collectives add a logarithmic tree term.  Defaults approximate the
paper's clusters (100 Gbps-class interconnect): they matter only for the
*shape* of results (who waits for whom, how costs scale with P), never
for matching the authors' absolute seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.model import CommOp


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated cluster.

    Attributes
    ----------
    latency:
        Per-message latency in seconds (alpha).
    bandwidth:
        Link bandwidth in bytes/second (1/beta).
    nonblocking_overhead:
        CPU cost of posting an Isend/Irecv.
    thread_spawn_cost / thread_join_cost:
        pthread_create / join overheads.
    lock_overhead:
        Uncontended mutex acquire+release cost.
    """

    latency: float = 2.0e-6
    bandwidth: float = 10.0e9
    nonblocking_overhead: float = 5.0e-7
    thread_spawn_cost: float = 1.0e-5
    thread_join_cost: float = 2.0e-6
    lock_overhead: float = 2.0e-7
    #: Blocking sends at or below this size complete eagerly (the library
    #: buffers the payload and returns); above it they rendezvous with
    #: the receiver — standard MPI behaviour.
    eager_threshold: float = 65536.0
    #: Memory bandwidth of the eager buffer copy.
    copy_bandwidth: float = 20.0e9

    def transfer_time(self, nbytes: float) -> float:
        """Alpha-beta cost of moving ``nbytes`` point-to-point."""
        return self.latency + nbytes / self.bandwidth

    def eager_copy_time(self, nbytes: float) -> float:
        """Cost of buffering an eager send locally."""
        return self.latency + nbytes / self.copy_bandwidth

    def collective_time(self, op: CommOp, nbytes: float, nprocs: int) -> float:
        """Tree-based collective cost.

        Barrier: pure latency tree.  Rooted collectives (bcast/reduce):
        log2(P) stages each moving the payload.  All-* collectives move
        the payload twice (reduce+broadcast or gather+scatter phases).
        """
        if nprocs <= 1:
            return self.latency
        stages = max(1.0, math.ceil(math.log2(nprocs)))
        if op is CommOp.BARRIER:
            return stages * self.latency
        per_stage = self.latency + nbytes / self.bandwidth
        if op in (CommOp.BCAST, CommOp.REDUCE):
            return stages * per_stage
        if op in (CommOp.ALLREDUCE, CommOp.ALLGATHER):
            return 2.0 * stages * per_stage
        if op is CommOp.ALLTOALL:
            # Pairwise exchange: P-1 rounds of the payload slice.
            return (nprocs - 1) * (self.latency + nbytes / self.bandwidth)
        raise ValueError(f"{op} is not a collective")

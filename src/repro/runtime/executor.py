"""Facade: run a program model at a given scale.

:func:`run_program` is the only entry point the analysis layer uses —
it plays the role of ``pflow.run(bin=..., cmd="mpirun -np N ...")``
(Listing 1): execute the program and hand back everything needed to
build PAGs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.ir.model import Program
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.obs.trace import span as _span
from repro.runtime.engine import DeadlockError, Engine
from repro.runtime.interpreter import UnitInterpreter
from repro.runtime.machine import MachineModel
from repro.runtime.records import RunResult
from repro.runtime.tracer import Tracer

_LOG = get_logger("runtime.executor")


def run_program(
    program: Program,
    nprocs: int = 1,
    nthreads: int = 1,
    params: Optional[Dict[str, Any]] = None,
    machine: Optional[MachineModel] = None,
    on_deadlock: str = "raise",
) -> RunResult:
    """Simulate ``program`` on ``nprocs`` ranks and return the run record.

    ``nthreads`` is advisory: it is placed in ``params["nthreads"]`` so
    program models can size their thread teams from it (the modelled apps
    all do), and recorded on the result for reporting.

    ``on_deadlock`` controls what happens when the simulated program
    deadlocks: ``"raise"`` (the default) propagates the
    :class:`~repro.runtime.engine.DeadlockError`; ``"record"`` stores the
    blocked-unit evidence on ``result.deadlock`` and returns the partial
    run — the events recorded up to the deadlock are still available,
    which is what the concurrency lint's trace confirmation tier needs.

    The run is fully deterministic: same program + parameters always
    produce identical results.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if nthreads < 1:
        raise ValueError("nthreads must be >= 1")
    if on_deadlock not in ("raise", "record"):
        raise ValueError("on_deadlock must be 'raise' or 'record'")
    run_params = dict(params or {})
    run_params.setdefault("nthreads", nthreads)
    with _span(
        "run.program",
        category="runtime",
        program=program.name,
        nprocs=nprocs,
        nthreads=nthreads,
    ) as sp:
        result = RunResult(program=program, nprocs=nprocs, nthreads=nthreads, params=run_params)
        tracer = Tracer()
        engine = Engine(nprocs, machine or MachineModel(), tracer)
        with _span("run.build_units", category="runtime", nprocs=nprocs):
            for rank in range(nprocs):
                interp = UnitInterpreter(
                    program, result, tracer, rank=rank, thread=0, nthreads=nthreads
                )
                engine.add_unit(rank, 0, interp.run())
        with _span("run.engine", category="runtime") as esp:
            try:
                result.per_rank_elapsed = engine.run()
            except DeadlockError as err:
                if on_deadlock == "raise":
                    raise
                result.deadlock = {
                    "message": str(err),
                    "blocked": [
                        {
                            "rank": b["rank"],
                            "thread": b["thread"],
                            "blocker": b["blocker"],
                            "path": list(b["path"]) if b["path"] else None,
                        }
                        for b in err.blocked
                    ],
                }
                _LOG.warning("deadlock recorded for %s: %s", program.name, err)
            if esp:
                esp.set(simulated_elapsed=round(result.elapsed, 6))
        result.comm_events = tracer.comm_events
        result.lock_events = tracer.lock_events
        result.sync_events = tracer.sync_events
        result.access_events = tracer.access_events
        result.indirect_targets = tracer.indirect_targets
        if sp:
            sp.set(
                comm_events=len(result.comm_events),
                lock_events=len(result.lock_events),
            )
    _metrics.counter("runtime.runs").inc()
    _metrics.counter("runtime.comm_events").inc(len(result.comm_events))
    _metrics.counter("runtime.lock_events").inc(len(result.lock_events))
    _LOG.info(
        "simulated %s on %d ranks x %d threads: %.4fs elapsed, "
        "%d comm events, %d lock events",
        program.name,
        nprocs,
        nthreads,
        result.elapsed,
        len(result.comm_events),
        len(result.lock_events),
    )
    return result

"""Runtime substrate: a discrete-event simulator for MPI + threads.

The paper collects dynamic data by running real MPI/Pthreads binaries
under PMPI wrappers with PAPI sampling (§3.2).  This package replaces
that machinery with a deterministic discrete-event simulation:

* :mod:`~repro.runtime.engine` — the event engine.  Each execution unit
  (an MPI rank, or a thread within one) runs as a generator; blocking
  MPI operations, collectives, thread spawn/join and lock acquisitions
  are resolved by the engine with MPI matching semantics, so *wait
  states* — the phenomenon every case study diagnoses — emerge from the
  same causes as on a real machine (a collective completes when its last
  participant arrives; a rendezvous send completes when the receiver
  posts; a lock holder delays its waiters).
* :mod:`~repro.runtime.interpreter` — walks the program IR per rank,
  tracking the calling-context path and local clock, and records
  per-vertex statistics.
* :mod:`~repro.runtime.machine` — latency/bandwidth/collective cost
  model.
* :mod:`~repro.runtime.sampler` — simulated PMU sampling (counters +
  calling contexts) and the dynamic-overhead model of Table 1.
* :mod:`~repro.runtime.tracer` — the dynamic-structure collector:
  communication events, lock events, and runtime-resolved indirect
  calls.
* :mod:`~repro.runtime.executor` — the facade: run a program model at a
  given scale and get a :class:`~repro.runtime.records.RunResult`.
"""

from repro.runtime.machine import MachineModel
from repro.runtime.records import CommEvent, LockEvent, RunResult, VertexStat
from repro.runtime.engine import DeadlockError, Engine
from repro.runtime.tracer import Tracer
from repro.runtime.executor import run_program
from repro.runtime.sampler import Sampler, SampleRecord, dynamic_overhead_percent

__all__ = [
    "MachineModel",
    "CommEvent",
    "LockEvent",
    "VertexStat",
    "RunResult",
    "Engine",
    "DeadlockError",
    "Tracer",
    "run_program",
    "Sampler",
    "SampleRecord",
    "dynamic_overhead_percent",
]

"""IR interpreter: turns a program model into engine execution units.

Each MPI rank (and each spawned thread) gets a :class:`UnitInterpreter`
that walks the IR, keeps a local simulated clock, tracks the calling
context path — the same path keys the static analysis assigns, so
performance-data embedding is exact — and yields engine requests for
every synchronizing operation.

Accounting conventions
----------------------
* :class:`~repro.ir.model.Stmt` and opaque external calls add their cost
  to the local clock and record *exclusive* time at their own path;
  inclusive times are aggregated up the tree during embedding.
* Communication calls record the full time spent inside the call
  (wait + transfer) plus the wait portion separately.
* Loops record iteration counts; calls record call counts.
* Lock/allocator calls record hold + wait time at their path.

Only thread 0 of a rank may issue MPI operations (the usual
``MPI_THREAD_FUNNELED`` discipline, which all modelled apps follow).
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Sequence, Tuple

from repro.ir.context import ExecContext, evaluate
from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Loop,
    Node,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.runtime.engine import (
    CollReq,
    FinishReq,
    JoinReq,
    LockReq,
    RecvReq,
    SendReq,
    SpawnReq,
    WaitReq,
)
from repro.runtime.records import AccessEvent, Path, RunResult, SyncEvent
from repro.runtime.tracer import Tracer

_COLLECTIVES = {
    CommOp.BARRIER,
    CommOp.BCAST,
    CommOp.REDUCE,
    CommOp.ALLREDUCE,
    CommOp.ALLGATHER,
    CommOp.ALLTOALL,
}

#: Lock name used by the modelled (thread-unsafe) allocator.
MALLOC_LOCK = "__malloc__"


class UnitInterpreter:
    """Interprets IR for one execution unit (rank, thread)."""

    def __init__(
        self,
        program: Program,
        result: RunResult,
        tracer: Tracer,
        rank: int,
        thread: int,
        nthreads: int,
        start_clock: float = 0.0,
    ) -> None:
        self.program = program
        self.result = result
        self.tracer = tracer
        self.rank = rank
        self.thread = thread
        self.nthreads = nthreads
        self.clock = start_clock
        self._label_counter = itertools.count()
        #: user request label -> outstanding engine labels
        self._outstanding: Dict[str, List[str]] = {}
        #: thread ids spawned by the most recent CREATE (cleared at JOIN);
        #: mirrors the engine's children list for spawn/join sync events.
        self._children: List[int] = []

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """Top-level generator for a rank's main thread."""
        ctx = ExecContext(
            rank=self.rank,
            nprocs=self.result.nprocs,
            thread=self.thread,
            nthreads=self.nthreads,
            params=self.result.params,
        )
        entry = self.program.entry_function
        path: Path = (f"f:{entry.name}",)
        yield from self._exec_body(entry.body, path, ctx)
        yield FinishReq(t=self.clock)

    def run_body(self, body: Sequence[Node], path: Path, ctx: ExecContext) -> Generator:
        """Top-level generator for a spawned thread executing ``body``."""
        yield from self._exec_body(body, path, ctx)
        yield FinishReq(t=self.clock)

    # ------------------------------------------------------------------
    def _record(self, path: Path, time: float, wait: float = 0.0, nbytes: float = 0.0, count: int = 1) -> None:
        self.result.stat(path, self.rank, self.thread).add(time, wait, nbytes, count)

    def _exec_body(self, body: Sequence[Node], path: Path, ctx: ExecContext) -> Generator:
        for node in body:
            yield from self._exec_node(node, path + (node.uid,), ctx)

    def _exec_node(self, node: Node, path: Path, ctx: ExecContext) -> Generator:
        if isinstance(node, Stmt):
            cost = float(evaluate(node.cost, ctx))
            self.clock += cost
            self._record(path, cost)
            for var, mode in node.touches:
                self.tracer.record_access(AccessEvent(
                    rank=self.rank, thread=self.thread, var=var, mode=mode,
                    t=self.clock, uid=node.uid, path=path,
                ))
        elif isinstance(node, Loop):
            trips = int(evaluate(node.trips, ctx))
            self._record(path, 0.0, count=trips)
            for i in range(trips):
                yield from self._exec_body(node.body, path, ctx.push_iteration(i))
        elif isinstance(node, Branch):
            taken = bool(node.condition(ctx))
            self._record(path, 0.0)
            body = node.then_body if taken else node.else_body
            yield from self._exec_body(body, path, ctx)
        elif isinstance(node, Call):
            yield from self._exec_call(node, path, ctx)
        elif isinstance(node, CommCall):
            yield from self._exec_comm(node, path, ctx)
        elif isinstance(node, ThreadCall):
            yield from self._exec_thread(node, path, ctx)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown IR node {type(node).__name__}")

    # -- calls ---------------------------------------------------------------
    def _exec_call(self, node: Call, path: Path, ctx: ExecContext) -> Generator:
        if node.target is CallTarget.EXTERNAL:
            cost = float(evaluate(node.cost, ctx))
            self.clock += cost
            self._record(path, cost)
            return
        callee = evaluate(node.callee, ctx)
        if node.target is CallTarget.INDIRECT:
            self.tracer.record_indirect(node.uid, callee)
        if callee not in self.program.functions:
            # Body absent from the model: treat as opaque external work.
            cost = float(evaluate(node.cost, ctx))
            self.clock += cost
            self._record(path, cost)
            return
        self._record(path, 0.0)
        func = self.program.function(callee)
        fpath = path + (f"f:{callee}",)
        self._record(fpath, 0.0)
        yield from self._exec_body(func.body, fpath, ctx)

    # -- communication --------------------------------------------------------
    def _exec_comm(self, node: CommCall, path: Path, ctx: ExecContext) -> Generator:
        if self.thread != 0:
            raise RuntimeError(
                f"{node.name} issued from thread {self.thread}; the simulator "
                "models MPI_THREAD_FUNNELED (MPI from thread 0 only)"
            )
        t0 = self.clock
        op = node.op
        nbytes = float(evaluate(node.nbytes, ctx))
        if op in _COLLECTIVES:
            completion = yield CollReq(
                t=t0, path=path, op=op, nbytes=nbytes, root=node.root
            )
        elif op is CommOp.SEND:
            peer = int(evaluate(node.peer, ctx))
            completion = yield SendReq(
                t=t0, path=path, dst=peer, tag=node.tag, nbytes=nbytes, blocking=True
            )
        elif op is CommOp.RECV:
            peer = int(evaluate(node.peer, ctx))
            completion = yield RecvReq(
                t=t0, path=path, src=peer, tag=node.tag, nbytes=nbytes, blocking=True
            )
        elif op is CommOp.ISEND:
            peer = int(evaluate(node.peer, ctx))
            label = self._fresh(node.req or "isend")
            completion = yield SendReq(
                t=t0, path=path, dst=peer, tag=node.tag, nbytes=nbytes,
                blocking=False, label=label,
            )
        elif op is CommOp.IRECV:
            peer = int(evaluate(node.peer, ctx))
            label = self._fresh(node.req or "irecv")
            completion = yield RecvReq(
                t=t0, path=path, src=peer, tag=node.tag, nbytes=nbytes,
                blocking=False, label=label,
            )
        elif op in (CommOp.WAIT, CommOp.WAITALL):
            labels = self._collect_labels(node.requests)
            completion = yield WaitReq(t=t0, path=path, labels=labels, op=op)
        elif op is CommOp.SENDRECV:
            # Deadlock-free exchange: isend + irecv + waitall.  The receive
            # side defaults to the destination (symmetric pairwise swap) but
            # honors an explicit `source` for ring shifts.
            peer = int(evaluate(node.peer, ctx))
            src = peer if node.source is None else int(evaluate(node.source, ctx))
            ls = self._fresh("srs")
            lr = self._fresh("srr")
            completion = yield SendReq(
                t=self.clock, path=path, dst=peer, tag=node.tag, nbytes=nbytes,
                blocking=False, label=ls,
            )
            self.clock = completion.t
            completion = yield RecvReq(
                t=self.clock, path=path, src=src % self.result.nprocs, tag=node.tag,
                nbytes=nbytes, blocking=False, label=lr,
            )
            self.clock = completion.t
            completion = yield WaitReq(
                t=self.clock, path=path, labels=(ls, lr), op=CommOp.WAITALL
            )
            self._drop_labels((ls, lr))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled comm op {op}")
        self.clock = completion.t
        if op in (CommOp.WAIT, CommOp.WAITALL):
            self._drop_labels(labels)
        self._record(path, self.clock - t0, wait=completion.wait, nbytes=nbytes)

    def _fresh(self, user_label: str) -> str:
        label = f"{user_label}#{next(self._label_counter)}"
        self._outstanding.setdefault(user_label, []).append(label)
        return label

    def _collect_labels(self, user_labels: Sequence[str]) -> Tuple[str, ...]:
        if not user_labels:
            # Wait for everything outstanding.
            labels = tuple(
                lab for labs in self._outstanding.values() for lab in labs
            )
            return labels
        out: List[str] = []
        for ul in user_labels:
            out.extend(self._outstanding.get(ul, []))
        return tuple(out)

    def _drop_labels(self, labels: Sequence[str]) -> None:
        done = set(labels)
        for ul in list(self._outstanding):
            remaining = [lab for lab in self._outstanding[ul] if lab not in done]
            if remaining:
                self._outstanding[ul] = remaining
            else:
                del self._outstanding[ul]

    # -- threads ----------------------------------------------------------------
    def _exec_thread(self, node: ThreadCall, path: Path, ctx: ExecContext) -> Generator:
        t0 = self.clock
        if node.op is ThreadOp.CREATE:
            count = int(evaluate(node.count, ctx))
            nthreads = max(count, 1)

            spawned: List[int] = []

            def make_factory(body: Sequence[Node]):
                def factory(tid: int, t_start: float) -> Generator:
                    spawned.append(tid)
                    child = UnitInterpreter(
                        self.program, self.result, self.tracer,
                        self.rank, tid, nthreads, start_clock=t_start,
                    )
                    child_ctx = ctx.with_thread(tid, nthreads)
                    return child.run_body(body, path, child_ctx)

                return factory

            completion = yield SpawnReq(
                t=t0, path=path, factories=[make_factory(node.body) for _ in range(count)]
            )
            self.clock = completion.t
            # The engine invokes the factories synchronously while handling
            # the SpawnReq, so `spawned` is fully populated here.
            for tid in spawned:
                self.tracer.record_sync(SyncEvent(
                    kind="spawn", rank=self.rank, thread=self.thread,
                    t=self.clock, child=tid, uid=node.uid, path=path,
                ))
            self._children.extend(spawned)
            self._record(path, self.clock - t0, count=count)
        elif node.op is ThreadOp.JOIN:
            completion = yield JoinReq(t=t0, path=path)
            self.clock = completion.t
            for tid in self._children:
                self.tracer.record_sync(SyncEvent(
                    kind="join", rank=self.rank, thread=self.thread,
                    t=self.clock, child=tid, uid=node.uid, path=path,
                ))
            self._children.clear()
            self._record(path, self.clock - t0, wait=completion.wait)
        elif node.op in (ThreadOp.MUTEX_LOCK, ThreadOp.ALLOC, ThreadOp.REALLOC, ThreadOp.DEALLOC):
            hold = float(evaluate(node.hold, ctx))
            lock = node.lock or (MALLOC_LOCK if node.op is not ThreadOp.MUTEX_LOCK else "mutex")
            completion = yield LockReq(t=t0, path=path, lock=lock, hold=hold, op=node.op)
            self.clock = completion.t
            self.tracer.record_sync(SyncEvent(
                kind="acquire", rank=self.rank, thread=self.thread,
                t=t0 + completion.wait, lock=lock, uid=node.uid, path=path,
            ))
            if node.op is not ThreadOp.MUTEX_LOCK:
                # Allocator calls release the lock on return: record the
                # matching release immediately (program-order adjacent).
                self.tracer.record_sync(SyncEvent(
                    kind="release", rank=self.rank, thread=self.thread,
                    t=self.clock, lock=lock, uid=node.uid, path=path,
                ))
            self._record(path, self.clock - t0, wait=completion.wait)
        elif node.op is ThreadOp.MUTEX_UNLOCK:
            # Lock release is folded into MUTEX_LOCK's hold; an explicit
            # unlock marks where the critical section ends for the
            # happens-before checker (the engine itself does not block).
            lock = node.lock or "mutex"
            self.tracer.record_sync(SyncEvent(
                kind="release", rank=self.rank, thread=self.thread,
                t=self.clock, lock=lock, uid=node.uid, path=path,
            ))
            self._record(path, 0.0)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled thread op {node.op}")

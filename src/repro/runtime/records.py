"""Record types produced by a simulated run.

These are the inputs of PAG construction: per-context vertex statistics
feed performance-data embedding (§3.3), communication and lock events
become the inter-process and inter-thread edges of the parallel view
(§3.4), and runtime-resolved indirect calls complete the static
structure (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.ir.model import CommOp, Program

PathElem = Union[int, str]
Path = Tuple[PathElem, ...]
UnitKey = Tuple[int, int]  # (rank, thread)


@dataclass
class VertexStat:
    """Accumulated dynamic data for one (context path, rank, thread).

    ``time`` is total simulated seconds spent at the context (for
    communication calls this includes wait + transfer), ``wait`` the wait
    portion, ``nbytes`` total communicated payload, ``count`` the number
    of executions/calls.
    """

    time: float = 0.0
    wait: float = 0.0
    nbytes: float = 0.0
    count: int = 0

    def add(self, time: float, wait: float = 0.0, nbytes: float = 0.0, count: int = 1) -> None:
        self.time += time
        self.wait += wait
        self.nbytes += nbytes
        self.count += count


@dataclass
class CommEvent:
    """One matched communication.

    For point-to-point events ``src_*`` describe the sender side and
    ``dst_*`` the receive-completion side (the Recv call, or the
    Wait/Waitall that completed an Irecv).  For collectives
    ``participants`` lists ``(rank, path, arrival, wait)`` for every rank
    and ``src_rank`` is the *last-arriving* rank — the participant that
    made everyone else wait, which is where backtracking edges point
    from.
    """

    op: CommOp
    nbytes: float
    t_complete: float
    src_rank: int = -1
    dst_rank: int = -1
    src_path: Optional[Path] = None
    dst_path: Optional[Path] = None
    wait_time: float = 0.0
    sender_wait: float = 0.0
    participants: Optional[List[Tuple[int, Path, float, float]]] = None

    @property
    def is_collective(self) -> bool:
        return self.participants is not None


@dataclass
class LockEvent:
    """One contended lock acquisition inside a process.

    ``holder_*`` identify who held the lock while this waiter queued
    (absent for uncontended acquisitions, which produce no event).
    """

    rank: int
    lock: str
    waiter_thread: int
    waiter_path: Path
    holder_thread: int
    holder_path: Path
    t_acquire: float
    wait_time: float


@dataclass
class RunResult:
    """Everything a simulated run produced.

    This plus the program model is sufficient to build both PAG views:
    no other channel exists between the runtime and the analysis layer,
    mirroring the paper's profile-data-only interface.
    """

    program: Program
    nprocs: int
    nthreads: int
    params: Dict[str, Any] = field(default_factory=dict)
    #: (path -> (rank, thread) -> stats)
    vertex_stats: Dict[Path, Dict[UnitKey, VertexStat]] = field(default_factory=dict)
    comm_events: List[CommEvent] = field(default_factory=list)
    lock_events: List[LockEvent] = field(default_factory=list)
    #: call-site uid -> resolved callee names (runtime fill-in of §3.2)
    indirect_targets: Dict[int, Set[str]] = field(default_factory=dict)
    per_rank_elapsed: Dict[int, float] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Simulated wall time of the run (slowest rank)."""
        return max(self.per_rank_elapsed.values()) if self.per_rank_elapsed else 0.0

    @property
    def total_comm_calls(self) -> int:
        return len(self.comm_events)

    def stat(self, path: Path, rank: int, thread: int = 0) -> VertexStat:
        """Accumulator for one (context, rank, thread); creates if absent."""
        per_unit = self.vertex_stats.setdefault(path, {})
        key = (rank, thread)
        if key not in per_unit:
            per_unit[key] = VertexStat()
        return per_unit[key]

    def total_time(self, path: Path) -> float:
        """Summed time at a context across all ranks/threads."""
        per_unit = self.vertex_stats.get(path)
        if not per_unit:
            return 0.0
        return sum(s.time for s in per_unit.values())

"""Record types produced by a simulated run.

These are the inputs of PAG construction: per-context vertex statistics
feed performance-data embedding (§3.3), communication and lock events
become the inter-process and inter-thread edges of the parallel view
(§3.4), and runtime-resolved indirect calls complete the static
structure (§3.2).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.ir.model import CommOp, Program

PathElem = Union[int, str]
Path = Tuple[PathElem, ...]
UnitKey = Tuple[int, int]  # (rank, thread)


@dataclass
class VertexStat:
    """Accumulated dynamic data for one (context path, rank, thread).

    ``time`` is total simulated seconds spent at the context (for
    communication calls this includes wait + transfer), ``wait`` the wait
    portion, ``nbytes`` total communicated payload, ``count`` the number
    of executions/calls.
    """

    time: float = 0.0
    wait: float = 0.0
    nbytes: float = 0.0
    count: int = 0

    def add(self, time: float, wait: float = 0.0, nbytes: float = 0.0, count: int = 1) -> None:
        self.time += time
        self.wait += wait
        self.nbytes += nbytes
        self.count += count


@dataclass
class CommEvent:
    """One matched communication.

    For point-to-point events ``src_*`` describe the sender side and
    ``dst_*`` the receive-completion side (the Recv call, or the
    Wait/Waitall that completed an Irecv).  For collectives
    ``participants`` lists ``(rank, path, arrival, wait)`` for every rank
    and ``src_rank`` is the *last-arriving* rank — the participant that
    made everyone else wait, which is where backtracking edges point
    from.
    """

    op: CommOp
    nbytes: float
    t_complete: float
    src_rank: int = -1
    dst_rank: int = -1
    src_path: Optional[Path] = None
    dst_path: Optional[Path] = None
    wait_time: float = 0.0
    sender_wait: float = 0.0
    participants: Optional[List[Tuple[int, Path, float, float]]] = None

    @property
    def is_collective(self) -> bool:
        return self.participants is not None


@dataclass
class LockEvent:
    """One contended lock acquisition inside a process.

    ``holder_*`` identify who held the lock while this waiter queued
    (absent for uncontended acquisitions, which produce no event).
    """

    rank: int
    lock: str
    waiter_thread: int
    waiter_path: Path
    holder_thread: int
    holder_path: Path
    t_acquire: float
    wait_time: float


@dataclass
class SyncEvent:
    """One synchronization action inside a process.

    Unlike :class:`LockEvent` (contended acquisitions only, for the
    parallel-view wait edges), sync events record *every* ordering
    action — lock acquire/release, thread spawn/join — so a
    happens-before relation can be reconstructed from the stream.
    ``seq`` is a process-global record ordinal: within one execution
    unit, ascending ``seq`` is program order.
    """

    kind: str  #: "acquire" | "release" | "spawn" | "join"
    rank: int
    thread: int
    t: float
    lock: str = ""  #: acquire/release only
    child: int = -1  #: spawn/join only: the child thread id
    uid: int = -1  #: IR node uid of the originating call
    path: Optional[Path] = None
    seq: int = -1


@dataclass
class AccessEvent:
    """One declared shared-state access (a :class:`Stmt` ``touches`` entry).

    ``mode`` is ``"r"`` or ``"w"``.  ``seq`` orders the event against
    :class:`SyncEvent`\\ s of the same execution unit.
    """

    rank: int
    thread: int
    var: str
    mode: str
    t: float
    uid: int = -1
    path: Optional[Path] = None
    seq: int = -1


@dataclass
class RunResult:
    """Everything a simulated run produced.

    This plus the program model is sufficient to build both PAG views:
    no other channel exists between the runtime and the analysis layer,
    mirroring the paper's profile-data-only interface.
    """

    program: Program
    nprocs: int
    nthreads: int
    params: Dict[str, Any] = field(default_factory=dict)
    #: (path -> (rank, thread) -> stats)
    vertex_stats: Dict[Path, Dict[UnitKey, VertexStat]] = field(default_factory=dict)
    comm_events: List[CommEvent] = field(default_factory=list)
    lock_events: List[LockEvent] = field(default_factory=list)
    sync_events: List[SyncEvent] = field(default_factory=list)
    access_events: List[AccessEvent] = field(default_factory=list)
    #: call-site uid -> resolved callee names (runtime fill-in of §3.2)
    indirect_targets: Dict[int, Set[str]] = field(default_factory=dict)
    per_rank_elapsed: Dict[int, float] = field(default_factory=dict)
    #: set when the run was executed with ``on_deadlock="record"`` and
    #: deadlocked: ``{"message": str, "blocked": [{"rank", "thread",
    #: "blocker", "path"}, ...]}``.  ``None`` for completed runs.
    deadlock: Optional[Dict[str, Any]] = None

    @property
    def elapsed(self) -> float:
        """Simulated wall time of the run (slowest rank)."""
        return max(self.per_rank_elapsed.values()) if self.per_rank_elapsed else 0.0

    @property
    def total_comm_calls(self) -> int:
        return len(self.comm_events)

    def stat(self, path: Path, rank: int, thread: int = 0) -> VertexStat:
        """Accumulator for one (context, rank, thread); creates if absent."""
        per_unit = self.vertex_stats.setdefault(path, {})
        key = (rank, thread)
        if key not in per_unit:
            per_unit[key] = VertexStat()
        return per_unit[key]

    def total_time(self, path: Path) -> float:
        """Summed time at a context across all ranks/threads."""
        per_unit = self.vertex_stats.get(path)
        if not per_unit:
            return 0.0
        return sum(s.time for s in per_unit.values())


# ---------------------------------------------------------------------------
# recorded run traces (``repro run --record-trace`` / ``repro lint --trace``)
# ---------------------------------------------------------------------------
TRACE_FORMAT = "repro-run-trace/1"


@dataclass
class RunTrace:
    """The serializable event record of one simulated run.

    This is the dynamic-confirmation input of the concurrency lint tier
    (:mod:`repro.lint.concurrency`): the comm/lock/sync/access event
    streams plus — for runs recorded with ``on_deadlock="record"`` —
    the structured deadlock report.  The program *model* is not stored;
    ``program`` names it so a trace is never replayed against the wrong
    IR (event ``uid``\\ s are only meaningful for the builder that
    produced them).
    """

    program: str
    nprocs: int
    nthreads: int
    params: Dict[str, Any] = field(default_factory=dict)
    comm_events: List[CommEvent] = field(default_factory=list)
    lock_events: List[LockEvent] = field(default_factory=list)
    sync_events: List[SyncEvent] = field(default_factory=list)
    access_events: List[AccessEvent] = field(default_factory=list)
    deadlock: Optional[Dict[str, Any]] = None

    @property
    def deadlocked(self) -> bool:
        return self.deadlock is not None


def _path_out(path: Optional[Path]) -> Optional[List[Any]]:
    return list(path) if path is not None else None


def _path_in(path: Optional[List[Any]]) -> Optional[Path]:
    return tuple(path) if path is not None else None


def _jsonable_params(params: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for k, v in params.items():
        if isinstance(v, (bool, int, float, str)) or v is None:
            out[k] = v
    return out


def run_trace(result: RunResult) -> RunTrace:
    """Extract the serializable trace from a run result."""
    return RunTrace(
        program=result.program.name,
        nprocs=result.nprocs,
        nthreads=result.nthreads,
        params=_jsonable_params(result.params),
        comm_events=result.comm_events,
        lock_events=result.lock_events,
        sync_events=result.sync_events,
        access_events=result.access_events,
        deadlock=result.deadlock,
    )


def trace_to_dict(trace: RunTrace) -> Dict[str, Any]:
    """JSON-ready dict form of a trace (stable key order via json dump)."""
    return {
        "format": TRACE_FORMAT,
        "program": trace.program,
        "nprocs": trace.nprocs,
        "nthreads": trace.nthreads,
        "params": trace.params,
        "deadlock": trace.deadlock,
        "comm_events": [
            {
                "op": e.op.value,
                "nbytes": e.nbytes,
                "t_complete": e.t_complete,
                "src_rank": e.src_rank,
                "dst_rank": e.dst_rank,
                "src_path": _path_out(e.src_path),
                "dst_path": _path_out(e.dst_path),
                "wait_time": e.wait_time,
                "sender_wait": e.sender_wait,
                "participants": (
                    None
                    if e.participants is None
                    else [[r, _path_out(p), arr, w] for r, p, arr, w in e.participants]
                ),
            }
            for e in trace.comm_events
        ],
        "lock_events": [
            {
                "rank": e.rank,
                "lock": e.lock,
                "waiter_thread": e.waiter_thread,
                "waiter_path": _path_out(e.waiter_path),
                "holder_thread": e.holder_thread,
                "holder_path": _path_out(e.holder_path),
                "t_acquire": e.t_acquire,
                "wait_time": e.wait_time,
            }
            for e in trace.lock_events
        ],
        "sync_events": [
            {
                "kind": e.kind,
                "rank": e.rank,
                "thread": e.thread,
                "t": e.t,
                "lock": e.lock,
                "child": e.child,
                "uid": e.uid,
                "path": _path_out(e.path),
                "seq": e.seq,
            }
            for e in trace.sync_events
        ],
        "access_events": [
            {
                "rank": e.rank,
                "thread": e.thread,
                "var": e.var,
                "mode": e.mode,
                "t": e.t,
                "uid": e.uid,
                "path": _path_out(e.path),
                "seq": e.seq,
            }
            for e in trace.access_events
        ],
    }


def trace_from_dict(payload: Dict[str, Any]) -> RunTrace:
    """Inverse of :func:`trace_to_dict`; raises ``ValueError`` on bad input."""
    if not isinstance(payload, dict) or payload.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"not a {TRACE_FORMAT} document (format="
            f"{payload.get('format') if isinstance(payload, dict) else payload!r})"
        )
    try:
        comm = [
            CommEvent(
                op=CommOp(e["op"]),
                nbytes=e["nbytes"],
                t_complete=e["t_complete"],
                src_rank=e["src_rank"],
                dst_rank=e["dst_rank"],
                src_path=_path_in(e["src_path"]),
                dst_path=_path_in(e["dst_path"]),
                wait_time=e["wait_time"],
                sender_wait=e["sender_wait"],
                participants=(
                    None
                    if e["participants"] is None
                    else [
                        (r, _path_in(p), arr, w)
                        for r, p, arr, w in e["participants"]
                    ]
                ),
            )
            for e in payload["comm_events"]
        ]
        locks = [LockEvent(
            rank=e["rank"],
            lock=e["lock"],
            waiter_thread=e["waiter_thread"],
            waiter_path=_path_in(e["waiter_path"]),
            holder_thread=e["holder_thread"],
            holder_path=_path_in(e["holder_path"]),
            t_acquire=e["t_acquire"],
            wait_time=e["wait_time"],
        ) for e in payload["lock_events"]]
        syncs = [SyncEvent(
            kind=e["kind"],
            rank=e["rank"],
            thread=e["thread"],
            t=e["t"],
            lock=e["lock"],
            child=e["child"],
            uid=e["uid"],
            path=_path_in(e["path"]),
            seq=e["seq"],
        ) for e in payload["sync_events"]]
        accesses = [AccessEvent(
            rank=e["rank"],
            thread=e["thread"],
            var=e["var"],
            mode=e["mode"],
            t=e["t"],
            uid=e["uid"],
            path=_path_in(e["path"]),
            seq=e["seq"],
        ) for e in payload["access_events"]]
        return RunTrace(
            program=payload["program"],
            nprocs=payload["nprocs"],
            nthreads=payload["nthreads"],
            params=dict(payload.get("params") or {}),
            comm_events=comm,
            lock_events=locks,
            sync_events=syncs,
            access_events=accesses,
            deadlock=payload.get("deadlock"),
        )
    except (KeyError, TypeError) as err:
        raise ValueError(f"malformed {TRACE_FORMAT} document: {err}") from None


def save_run_trace(source: Union[RunResult, RunTrace], path: str) -> None:
    """Write a run's trace as JSON (``repro run --record-trace``)."""
    trace = run_trace(source) if isinstance(source, RunResult) else source
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_to_dict(trace), fh, indent=1, sort_keys=True)


def load_run_trace(path: str) -> RunTrace:
    """Read a trace written by :func:`save_run_trace`.

    Raises ``ValueError`` for files that are not (valid) run traces and
    ``OSError`` for unreadable paths.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as err:
            raise ValueError(f"{path} is not JSON: {err}") from None
    return trace_from_dict(payload)


def trace_digest(trace: RunTrace) -> str:
    """Stable content digest of a trace (incremental-lint cache key)."""
    blob = json.dumps(trace_to_dict(trace), sort_keys=True).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()

"""Simulated PMU sampling and the dynamic-overhead model (Table 1).

The paper samples at 200 Hz via libunwind + PAPI, attributing counters to
calling contexts.  The simulator knows exact per-context times, so the
sampler *derives* what a sampling profiler would have observed: one
sample per ``1/freq`` seconds of a context's exclusive time, with PMU
counters synthesized from per-statement rates.

The dynamic overhead PerFlow itself would add to a real run — the
"Dynamic(%)" row of Table 1 — is modelled as timer-interrupt cost plus a
per-communication-call PMPI-wrapper cost, which reproduces the paper's
observation that overhead tracks communication-pattern complexity (CG,
whose collectives are implemented with point-to-point messages, pays the
most).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.obs.trace import span as _span
from repro.runtime.records import Path, RunResult

#: Per-sample interrupt + unwind cost (seconds) of the collection module.
#: 200 Hz × 1.5 µs ≈ 0.03% — the floor that EP/IS/Vite sit at in Table 1.
SAMPLE_COST = 1.5e-6
#: Per-MPI-call PMPI wrapper cost (seconds).
COMM_WRAP_COST = 4.0e-5
#: Per-lock-event wrapper cost (seconds).  Lock waits are observed from
#: samples, not interposition, so the residual cost is tiny — Vite's
#: overhead stays at the sampling floor (0.03%) despite heavy locking.
LOCK_WRAP_COST = 5.0e-9

#: Default synthetic PMU rates (events per simulated second of compute).
DEFAULT_PMU_RATES = {
    "cycles": 2.5e9,
    "instructions": 2.0e9,
    "l1_misses": 1.2e7,
    "l2_misses": 1.5e6,
}


@dataclass(frozen=True)
class SampleRecord:
    """What one profile row would contain: a context and its counters."""

    path: Path
    rank: int
    thread: int
    nsamples: int
    counters: Dict[str, float] = field(default_factory=dict)


class Sampler:
    """Derives sampling-profiler output from a simulated run."""

    def __init__(self, frequency_hz: float = 200.0, pmu_rates: Dict[str, float] = None):
        if frequency_hz <= 0:
            raise ValueError("sampling frequency must be positive")
        self.frequency_hz = frequency_hz
        self.pmu_rates = dict(pmu_rates or DEFAULT_PMU_RATES)

    def samples(self, result: RunResult) -> Iterator[SampleRecord]:
        """One record per (context, rank, thread) with nonzero samples.

        ``nsamples`` is the deterministic expectation ``round(t * f)``; a
        real sampler would jitter around it, which none of the passes are
        sensitive to.
        """
        for path, per_unit in result.vertex_stats.items():
            for (rank, thread), stat in per_unit.items():
                nsamples = int(round(stat.time * self.frequency_hz))
                if nsamples <= 0 and stat.time <= 0:
                    continue
                counters = {
                    name: stat.time * rate for name, rate in self.pmu_rates.items()
                }
                yield SampleRecord(path, rank, thread, max(nsamples, 1 if stat.time > 0 else 0), counters)

    def collect(self, result: RunResult) -> List[SampleRecord]:
        with _span(
            "run.sample", category="runtime", frequency_hz=self.frequency_hz
        ) as sp:
            records = list(self.samples(result))
            if sp:
                sp.set(
                    records=len(records),
                    samples=sum(r.nsamples for r in records),
                )
        return records


def dynamic_overhead_percent(result: RunResult, frequency_hz: float = 200.0) -> float:
    """Model the runtime overhead PerFlow's collection adds (Table 1).

    Overhead has a flat sampling term (interrupts fire at ``frequency_hz``
    on every rank regardless of what the program does) and a term
    proportional to per-rank communication-call density, which is why
    communication-heavy codes like CG show ~3.7% while EP/IS sit near
    0.1%.
    """
    elapsed = result.elapsed
    if elapsed <= 0:
        return 0.0
    sampling = frequency_hz * SAMPLE_COST  # seconds of overhead per second
    # Every rank pays a wrapper per call it participates in: collectives
    # involve all ranks (one wrapper each), p2p events involve two.
    per_rank_wrap = 0.0
    for ev in result.comm_events:
        if ev.participants is not None:
            per_rank_wrap += COMM_WRAP_COST
        else:
            per_rank_wrap += 2.0 * COMM_WRAP_COST / max(result.nprocs, 1)
    lock_cost = LOCK_WRAP_COST * len(result.lock_events) / max(result.nprocs, 1)
    overhead_seconds = sampling * elapsed + per_rank_wrap + lock_cost
    return 100.0 * overhead_seconds / elapsed

"""The dynamic-structure collector.

PerFlow's dynamic analysis records what static analysis cannot see
(§3.2): communication events, lock/waiting events, and the targets of
indirect calls.  The :class:`Tracer` accumulates these during a
simulated run; its contents become the inter-process and inter-thread
edges of the parallel view and the expansion of indirect call sites.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.runtime.records import AccessEvent, CommEvent, LockEvent, SyncEvent


class Tracer:
    """Accumulates dynamic events during a run.

    ``record_sync`` / ``record_access`` stamp a process-global ``seq``
    on their events: the engine drives units in segments, so the append
    order across units is a scheduling artifact, but *within* one unit
    ascending ``seq`` is exactly program order — which is what the
    happens-before checker (lint PF104) reconstructs per-thread streams
    from.
    """

    def __init__(self) -> None:
        self.comm_events: List[CommEvent] = []
        self.lock_events: List[LockEvent] = []
        self.sync_events: List[SyncEvent] = []
        self.access_events: List[AccessEvent] = []
        self.indirect_targets: Dict[int, Set[str]] = {}
        self._seq = 0

    def record_comm(self, event: CommEvent) -> None:
        self.comm_events.append(event)

    def record_lock(self, event: LockEvent) -> None:
        self.lock_events.append(event)

    def record_sync(self, event: SyncEvent) -> None:
        event.seq = self._seq
        self._seq += 1
        self.sync_events.append(event)

    def record_access(self, event: AccessEvent) -> None:
        event.seq = self._seq
        self._seq += 1
        self.access_events.append(event)

    def record_indirect(self, call_uid: int, target: str) -> None:
        self.indirect_targets.setdefault(call_uid, set()).add(target)

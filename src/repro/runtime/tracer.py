"""The dynamic-structure collector.

PerFlow's dynamic analysis records what static analysis cannot see
(§3.2): communication events, lock/waiting events, and the targets of
indirect calls.  The :class:`Tracer` accumulates these during a
simulated run; its contents become the inter-process and inter-thread
edges of the parallel view and the expansion of indirect call sites.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.runtime.records import CommEvent, LockEvent


class Tracer:
    """Accumulates dynamic events during a run."""

    def __init__(self) -> None:
        self.comm_events: List[CommEvent] = []
        self.lock_events: List[LockEvent] = []
        self.indirect_targets: Dict[int, Set[str]] = {}

    def record_comm(self, event: CommEvent) -> None:
        self.comm_events.append(event)

    def record_lock(self, event: LockEvent) -> None:
        self.lock_events.append(event)

    def record_indirect(self, call_uid: int, target: str) -> None:
        self.indirect_targets.setdefault(call_uid, set()).add(target)

"""The discrete-event engine.

Execution units (one per MPI rank, plus one per spawned thread) are
Python generators that yield :class:`Request` objects and are resumed
with :class:`Completion` objects carrying the simulated completion time
and wait time.  The engine resolves MPI matching, collective
synchronization, thread spawn/join, and lock serialization.

Determinism: message matching is per-(src, dst, tag) FIFO (MPI
non-overtaking); collectives match by per-rank call ordinal (MPI
requires identical collective sequences per communicator); locks are
granted in arrival order with deterministic tie-breaking.  Completion
*times* are computed from posted times on both sides, so the order in
which the engine happens to process units never changes results.

Wildcard receives (``MPI_ANY_SOURCE``) are deliberately unsupported:
their matching is timing-dependent on real machines, and none of the
modelled applications need them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.ir.model import CommOp, ThreadOp
from repro.runtime.machine import MachineModel
from repro.runtime.records import CommEvent, LockEvent, Path, UnitKey
from repro.runtime.tracer import Tracer


class DeadlockError(RuntimeError):
    """Raised when no unit can make progress but some are blocked.

    ``blocked`` carries one dict per permanently blocked unit —
    ``{"rank", "thread", "blocker", "path"}`` — so callers recording a
    deadlock (``run_program(..., on_deadlock="record")``) can persist
    the evidence instead of just the rendered message.
    """

    def __init__(self, message: str, blocked: Optional[List[Dict[str, Any]]] = None):
        super().__init__(message)
        self.blocked: List[Dict[str, Any]] = list(blocked or [])


# ---------------------------------------------------------------------------
# requests / completions
# ---------------------------------------------------------------------------
@dataclass
class Request:
    """Base class; ``t`` is the requesting unit's clock at the call."""

    t: float = 0.0
    path: Optional[Path] = None


@dataclass
class SendReq(Request):
    dst: int = -1
    tag: int = 0
    nbytes: float = 0.0
    blocking: bool = True
    label: str = ""


@dataclass
class RecvReq(Request):
    src: int = -1
    tag: int = 0
    nbytes: float = 0.0
    blocking: bool = True
    label: str = ""


@dataclass
class WaitReq(Request):
    #: request labels to complete; empty tuple means "all outstanding".
    labels: Tuple[str, ...] = ()
    op: CommOp = CommOp.WAITALL


@dataclass
class CollReq(Request):
    op: CommOp = CommOp.BARRIER
    nbytes: float = 0.0
    root: int = 0


@dataclass
class LockReq(Request):
    lock: str = ""
    hold: float = 0.0
    op: ThreadOp = ThreadOp.MUTEX_LOCK


@dataclass
class SpawnReq(Request):
    #: callables (thread_id, start_clock) -> generator; the engine
    #: allocates thread ids and start times (serialized create cost).
    factories: List[Callable[[int, float], Generator]] = field(default_factory=list)


@dataclass
class JoinReq(Request):
    pass


@dataclass
class FinishReq(Request):
    """Yielded once by every unit before returning, carrying its final clock."""


@dataclass
class Completion:
    """Engine's answer to a request."""

    t: float
    wait: float = 0.0
    info: Any = None


# ---------------------------------------------------------------------------
# internal state
# ---------------------------------------------------------------------------
@dataclass
class _PendingMsg:
    """A posted send or recv awaiting its counterpart."""

    unit: UnitKey
    t_post: float
    nbytes: float
    label: str
    path: Optional[Path]
    blocking: bool
    is_recv: bool = False
    #: filled at match time
    matched: bool = False
    t_complete: float = 0.0
    peer_unit: Optional[UnitKey] = None
    peer_path: Optional[Path] = None
    event_emitted: bool = False


@dataclass
class _CollInstance:
    op: Optional[CommOp] = None
    nbytes: float = 0.0
    arrivals: Dict[int, Tuple[float, Optional[Path]]] = field(default_factory=dict)


@dataclass
class _Unit:
    key: UnitKey
    gen: Generator
    clock: float = 0.0
    status: str = "ready"  # ready | blocked | done
    pending: Optional[Completion] = None
    blocker: Optional[str] = None
    #: children spawned by this unit, for JoinReq
    children: List[UnitKey] = field(default_factory=list)
    #: unit waiting on our FinishReq via join, if any
    parent: Optional[UnitKey] = None
    #: outstanding nonblocking requests by label
    requests: Dict[str, _PendingMsg] = field(default_factory=dict)
    #: set when blocked on a WaitReq / blocking msg / join
    waiting_on: Any = None


class Engine:
    """Runs a set of execution units to completion."""

    def __init__(self, nprocs: int, machine: MachineModel, tracer: Tracer):
        self.nprocs = nprocs
        self.machine = machine
        self.tracer = tracer
        self._units: Dict[UnitKey, _Unit] = {}
        self._ready: Deque[UnitKey] = deque()
        self._sends: Dict[Tuple[int, int, int], Deque[_PendingMsg]] = {}
        self._recvs: Dict[Tuple[int, int, int], Deque[_PendingMsg]] = {}
        self._coll_seq: Dict[int, int] = {}
        self._coll: Dict[int, _CollInstance] = {}
        #: lock name -> (free_at, holder_thread, holder_path) per rank
        self._locks: Dict[Tuple[int, str], Tuple[float, int, Optional[Path]]] = {}
        #: parked lock requests per (rank, lock): (t, seq, unit key, req)
        self._lock_pending: Dict[Tuple[int, str], List[Tuple[float, int, UnitKey, LockReq]]] = {}
        self._lock_seq = 0
        self._next_thread: Dict[int, int] = {}
        self._anon_label = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def add_unit(self, rank: int, thread: int, gen: Generator, clock: float = 0.0) -> UnitKey:
        key = (rank, thread)
        if key in self._units:
            raise ValueError(f"duplicate unit {key}")
        # pending=None: the first resume is gen.send(None), which starts the
        # generator; units learn their start clock from their constructor.
        self._units[key] = _Unit(key=key, gen=gen, clock=clock, pending=None)
        self._ready.append(key)
        self._next_thread[rank] = max(self._next_thread.get(rank, 0), thread + 1)
        return key

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> Dict[int, float]:
        """Run all units to completion; returns per-rank elapsed time."""
        while True:
            while self._ready:
                key = self._ready.popleft()
                unit = self._units[key]
                if unit.status == "done":
                    continue
                unit.status = "running"
                while True:
                    completion, unit.pending = unit.pending, None
                    try:
                        req = unit.gen.send(completion)
                    except StopIteration:
                        self._finish(unit)
                        break
                    unit.clock = max(unit.clock, req.t)
                    done_now = self._handle(unit, req)
                    if not done_now:
                        unit.status = "blocked"
                        break
                    # request completed synchronously; keep driving this unit
                # the unit paused: its clock is now a firm lower bound on its
                # future lock requests, so parked grants may have unblocked.
                self._drain_all_locks()
            self._drain_all_locks()
            if not self._ready:
                break
        blocked = [u for u in self._units.values() if u.status == "blocked"]
        if blocked:
            detail = ", ".join(
                f"rank {u.key[0]} thread {u.key[1]} on {u.blocker}" for u in blocked[:8]
            )
            evidence = [
                {
                    "rank": u.key[0],
                    "thread": u.key[1],
                    "blocker": u.blocker,
                    "path": getattr(u.waiting_on, "path", None),
                }
                for u in sorted(blocked, key=lambda u: u.key)
            ]
            raise DeadlockError(
                f"{len(blocked)} unit(s) blocked forever: {detail}", blocked=evidence
            )
        per_rank: Dict[int, float] = {}
        for (rank, _thread), unit in self._units.items():
            per_rank[rank] = max(per_rank.get(rank, 0.0), unit.clock)
        return per_rank

    def _finish(self, unit: _Unit) -> None:
        unit.status = "done"
        parent_key = unit.parent
        if parent_key is not None:
            parent = self._units[parent_key]
            if parent.status == "blocked" and isinstance(parent.waiting_on, JoinReq):
                self._try_complete_join(parent)

    def _wake(self, unit: _Unit, completion: Completion) -> None:
        unit.pending = completion
        unit.clock = max(unit.clock, completion.t)
        unit.status = "ready"
        unit.blocker = None
        unit.waiting_on = None
        self._ready.append(unit.key)

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def _handle(self, unit: _Unit, req: Request) -> bool:
        """Process a request.

        Returns True if the request completed synchronously (``unit.pending``
        holds the completion); False if the unit is now blocked.
        """
        if isinstance(req, FinishReq):
            unit.clock = max(unit.clock, req.t)
            # Let StopIteration follow on the next resume.
            unit.pending = Completion(unit.clock)
            return True
        if isinstance(req, SendReq):
            return self._handle_send(unit, req)
        if isinstance(req, RecvReq):
            return self._handle_recv(unit, req)
        if isinstance(req, WaitReq):
            return self._handle_wait(unit, req)
        if isinstance(req, CollReq):
            return self._handle_coll(unit, req)
        if isinstance(req, LockReq):
            return self._handle_lock(unit, req)
        if isinstance(req, SpawnReq):
            return self._handle_spawn(unit, req)
        if isinstance(req, JoinReq):
            unit.waiting_on = req
            return self._try_complete_join(unit, initial=True)
        raise TypeError(f"unknown request {type(req).__name__}")

    # -- point-to-point -----------------------------------------------------
    def _post(self, table, key, msg) -> None:
        table.setdefault(key, deque()).append(msg)

    def _match_key(self, src: int, dst: int, tag: int) -> Tuple[int, int, int]:
        return (src, dst, tag)

    def _try_match(self, src: int, dst: int, tag: int) -> None:
        key = self._match_key(src, dst, tag)
        sends = self._sends.get(key)
        recvs = self._recvs.get(key)
        while sends and recvs:
            s = sends.popleft()
            r = recvs.popleft()
            xfer = self.machine.transfer_time(s.nbytes)
            t_complete = max(s.t_post, r.t_post) + xfer
            for msg, peer in ((s, r), (r, s)):
                msg.matched = True
                msg.t_complete = t_complete
                msg.peer_unit = peer.unit
                msg.peer_path = peer.path
            # Blocking sides resume now that completion time is known.
            if s.blocking:
                sender = self._units[s.unit]
                wait = max(0.0, r.t_post - s.t_post)
                self._wake(sender, Completion(t_complete, wait))
            if r.blocking:
                receiver = self._units[r.unit]
                wait = max(0.0, s.t_post - r.t_post)
                self._emit_p2p_event(s, r, r.path, wait, t_complete, blocking_recv=True)
                self._wake(receiver, Completion(t_complete, wait))
            # Nonblocking receivers parked in a Wait get re-checked.
            for side in (s, r):
                u = self._units[side.unit]
                if u.status == "blocked" and isinstance(u.waiting_on, WaitReq):
                    self._try_complete_waitreq(u)

    def _emit_p2p_event(
        self,
        send: _PendingMsg,
        recv: _PendingMsg,
        dst_path: Optional[Path],
        wait: float,
        t_complete: float,
        blocking_recv: bool,
    ) -> None:
        if recv.event_emitted:
            return
        recv.event_emitted = True
        op = CommOp.RECV if blocking_recv else CommOp.IRECV
        self.tracer.record_comm(
            CommEvent(
                op=op,
                nbytes=send.nbytes,
                t_complete=t_complete,
                src_rank=send.unit[0],
                dst_rank=recv.unit[0],
                src_path=send.path,
                dst_path=dst_path,
                wait_time=wait,
                sender_wait=max(0.0, recv.t_post - send.t_post),
            )
        )

    def _handle_send(self, unit: _Unit, req: SendReq) -> bool:
        rank = unit.key[0]
        if not (0 <= req.dst < self.nprocs):
            raise ValueError(f"send to invalid rank {req.dst} (nprocs={self.nprocs})")
        label = req.label or self._fresh_label()
        msg = _PendingMsg(unit.key, req.t, req.nbytes, label, req.path, req.blocking)
        # Eager protocol: a small blocking send buffers the payload and
        # returns; the data is available to the receiver after the copy.
        eager = req.blocking and req.nbytes <= self.machine.eager_threshold
        if eager:
            msg.t_post = req.t + self.machine.eager_copy_time(req.nbytes)
            msg.blocking = False  # nothing left to wake the sender for
        elif not req.blocking:
            msg.t_post = req.t + self.machine.nonblocking_overhead
            unit.requests[label] = msg
        self._post(self._sends, self._match_key(rank, req.dst, req.tag), msg)
        self._try_match(rank, req.dst, req.tag)
        if eager:
            unit.pending = Completion(msg.t_post)
            return True
        if req.blocking:
            if msg.matched:
                # _try_match woke us already via _wake; but we are the running
                # unit, so pending was set — report synchronous completion.
                return self._adopt_wake(unit)
            unit.blocker = f"MPI_Send to {req.dst}"
            unit.waiting_on = msg
            return False
        unit.pending = Completion(msg.t_post)
        return True

    def _handle_recv(self, unit: _Unit, req: RecvReq) -> bool:
        rank = unit.key[0]
        if not (0 <= req.src < self.nprocs):
            raise ValueError(
                f"recv from invalid rank {req.src} (nprocs={self.nprocs}); "
                "MPI_ANY_SOURCE is unsupported by the simulator"
            )
        label = req.label or self._fresh_label()
        msg = _PendingMsg(
            unit.key, req.t, req.nbytes, label, req.path, req.blocking, is_recv=True
        )
        if not req.blocking:
            msg.t_post = req.t + self.machine.nonblocking_overhead
            unit.requests[label] = msg
        self._post(self._recvs, self._match_key(req.src, rank, req.tag), msg)
        self._try_match(req.src, rank, req.tag)
        if req.blocking:
            if msg.matched:
                return self._adopt_wake(unit)
            unit.blocker = f"MPI_Recv from {req.src}"
            unit.waiting_on = msg
            return False
        unit.pending = Completion(msg.t_post)
        return True

    def _adopt_wake(self, unit: _Unit) -> bool:
        """A _wake targeted us while we were the running unit.

        The wake enqueued us in _ready with a pending completion; claim it
        and keep running synchronously.
        """
        if unit.pending is None:  # pragma: no cover - defensive
            raise RuntimeError("expected a pending completion")
        try:
            self._ready.remove(unit.key)
        except ValueError:
            pass
        unit.status = "running"
        return True

    # -- wait ------------------------------------------------------------
    def _handle_wait(self, unit: _Unit, req: WaitReq) -> bool:
        labels = req.labels or tuple(unit.requests.keys())
        req.labels = labels
        unit.waiting_on = req
        done = self._try_complete_waitreq(unit, initial=True)
        if not done:
            unit.blocker = f"{req.op.value}({len(labels)} reqs)"
        return done

    def _try_complete_waitreq(self, unit: _Unit, initial: bool = False) -> bool:
        req = unit.waiting_on
        assert isinstance(req, WaitReq)
        msgs = []
        for label in req.labels:
            msg = unit.requests.get(label)
            if msg is None:
                raise ValueError(f"wait on unknown request {label!r}")
            msgs.append(msg)
        if not all(m.matched for m in msgs):
            return False
        t_complete = req.t
        for m in msgs:
            t_complete = max(t_complete, m.t_complete)
        wait = t_complete - req.t
        for label, m in zip(req.labels, msgs):
            del unit.requests[label]
            # Receive completions surface at the Wait site (paper Fig. 10:
            # backtracking edges land on mpi_waitall_ vertices), so the
            # inter-process edge is emitted here with the Wait's path as
            # destination and the sender's post path as source.
            if m.is_recv and not m.event_emitted and m.peer_unit is not None:
                m.event_emitted = True
                self.tracer.record_comm(
                    CommEvent(
                        op=CommOp.IRECV,
                        nbytes=m.nbytes,
                        t_complete=m.t_complete,
                        src_rank=m.peer_unit[0],
                        dst_rank=unit.key[0],
                        src_path=m.peer_path,
                        dst_path=req.path,
                        wait_time=max(0.0, m.t_complete - req.t),
                    )
                )
        if initial and unit.status == "running":
            unit.pending = Completion(t_complete, wait)
            unit.waiting_on = None
            return True
        self._wake(unit, Completion(t_complete, wait))
        return True

    # -- collectives -------------------------------------------------------
    def _handle_coll(self, unit: _Unit, req: CollReq) -> bool:
        rank = unit.key[0]
        seq = self._coll_seq.get(rank, 0)
        self._coll_seq[rank] = seq + 1
        inst = self._coll.setdefault(seq, _CollInstance())
        if inst.op is None:
            inst.op = req.op
        elif inst.op is not req.op:
            raise DeadlockError(
                f"collective mismatch at ordinal {seq}: rank {rank} called "
                f"{req.op.value}, others called {inst.op.value}"
            )
        if rank in inst.arrivals:
            raise DeadlockError(f"rank {rank} re-entered collective ordinal {seq}")
        inst.arrivals[rank] = (req.t, req.path)
        inst.nbytes = max(inst.nbytes, req.nbytes)
        unit.blocker = f"{req.op.value} (ordinal {seq})"
        unit.waiting_on = req
        if len(inst.arrivals) == self.nprocs:
            self._complete_collective(seq, inst)
            if unit.pending is not None:
                return self._adopt_wake(unit)
            return True
        return False

    def _complete_collective(self, seq: int, inst: _CollInstance) -> None:
        t_max = max(t for t, _ in inst.arrivals.values())
        src_rank = max(inst.arrivals, key=lambda r: (inst.arrivals[r][0], r))
        cost = self.machine.collective_time(inst.op, inst.nbytes, self.nprocs)
        t_complete = t_max + cost
        participants = [
            (rank, path, t_arr, t_max - t_arr)
            for rank, (t_arr, path) in sorted(inst.arrivals.items())
        ]
        self.tracer.record_comm(
            CommEvent(
                op=inst.op,
                nbytes=inst.nbytes,
                t_complete=t_complete,
                src_rank=src_rank,
                src_path=inst.arrivals[src_rank][1],
                participants=participants,
            )
        )
        del self._coll[seq]
        for rank, (t_arr, _path) in inst.arrivals.items():
            u = self._units[(rank, 0)]
            completion = Completion(t_complete, t_max - t_arr)
            if u.status == "running":
                u.pending = completion
                u.clock = max(u.clock, t_complete)
                u.waiting_on = None
                u.blocker = None
            else:
                self._wake(u, completion)

    # -- locks --------------------------------------------------------------
    #
    # Lock grants must follow *simulated* time, not engine processing
    # order: unit A may be driven through its whole program before unit B
    # starts, so A's requests are all processed first even though B's
    # happen earlier on the simulated clock.  Requests therefore park in
    # a per-lock queue and are granted earliest-first, but only once the
    # requested time is a safe lower bound: every other live unit of the
    # rank has advanced past it (a unit's clock is monotone and bounds
    # its future request times).  Units blocked on pthread_join are
    # exempt from the bound — their next request necessarily follows
    # their children's completion, which follows every parked request.
    def _handle_lock(self, unit: _Unit, req: LockReq) -> bool:
        rank = unit.key[0]
        key = (rank, req.lock)
        self._lock_seq += 1
        pending = self._lock_pending.setdefault(key, [])
        pending.append((req.t, self._lock_seq, unit.key, req))
        pending.sort(key=lambda item: (item[0], item[1]))
        unit.blocker = f"lock {req.lock!r}"
        unit.waiting_on = req
        self._drain_lock(key)
        if unit.pending is not None:
            return self._adopt_wake(unit)
        return False

    def _lock_bound(self, rank: int, exclude: UnitKey) -> float:
        bound = float("inf")
        for key, u in self._units.items():
            if key[0] != rank or key == exclude or u.status == "done":
                continue
            if isinstance(u.waiting_on, JoinReq):
                continue
            bound = min(bound, u.clock)
        return bound

    def _drain_lock(self, key: Tuple[int, str]) -> None:
        pending = self._lock_pending.get(key)
        while pending:
            t, _seq, ukey, req = pending[0]
            if t > self._lock_bound(key[0], exclude=ukey):
                return
            pending.pop(0)
            self._grant_lock(self._units[ukey], req)
        if pending is not None and not pending:
            self._lock_pending.pop(key, None)

    def _drain_all_locks(self) -> None:
        for key in list(self._lock_pending.keys()):
            self._drain_lock(key)

    def _grant_lock(self, unit: _Unit, req: LockReq) -> None:
        rank = unit.key[0]
        key = (rank, req.lock)
        free_at, holder_thread, holder_path = self._locks.get(key, (0.0, -1, None))
        start = max(req.t, free_at)
        wait = start - req.t
        t_complete = start + req.hold + self.machine.lock_overhead
        self._locks[key] = (t_complete, unit.key[1], req.path)
        if wait > 0.0 and holder_thread >= 0 and holder_path is not None:
            self.tracer.record_lock(
                LockEvent(
                    rank=rank,
                    lock=req.lock,
                    waiter_thread=unit.key[1],
                    waiter_path=req.path,
                    holder_thread=holder_thread,
                    holder_path=holder_path,
                    t_acquire=start,
                    wait_time=wait,
                )
            )
        if unit.status == "running":
            unit.pending = Completion(t_complete, wait)
            unit.clock = max(unit.clock, t_complete)
            unit.waiting_on = None
            unit.blocker = None
        else:
            self._wake(unit, Completion(t_complete, wait))

    # -- threads --------------------------------------------------------------
    def _handle_spawn(self, unit: _Unit, req: SpawnReq) -> bool:
        rank = unit.key[0]
        t = req.t
        for factory in req.factories:
            t += self.machine.thread_spawn_cost
            tid = self._next_thread.get(rank, 1)
            self._next_thread[rank] = tid + 1
            child_key = self.add_unit(rank, tid, factory(tid, t), clock=t)
            self._units[child_key].parent = unit.key
            unit.children.append(child_key)
        unit.pending = Completion(t)
        return True

    def _try_complete_join(self, unit: _Unit, initial: bool = False) -> bool:
        req = unit.waiting_on
        assert isinstance(req, JoinReq)
        children = [self._units[k] for k in unit.children]
        if any(c.status != "done" for c in children):
            unit.blocker = f"pthread_join({len(children)} threads)"
            return False
        t_complete = req.t
        for c in children:
            t_complete = max(t_complete, c.clock)
        t_complete += self.machine.thread_join_cost * len(children)
        wait = t_complete - req.t
        unit.children.clear()
        if initial and unit.status == "running":
            unit.pending = Completion(t_complete, wait)
            unit.waiting_on = None
            return True
        self._wake(unit, Completion(t_complete, wait))
        return True

    def _fresh_label(self) -> str:
        self._anon_label += 1
        return f"__anon{self._anon_label}"

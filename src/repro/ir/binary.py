"""Code-size and binary-size models (inputs of Tables 1 and 2).

The paper reports per-program code size (KLoC) and binary size; binary
size drives the Dyninst static-analysis cost.  Program models either
declare these directly in :attr:`Program.metadata` (the evaluated
applications do, with the paper's values) or get an estimate from the IR
node count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.model import Program

#: Rough bytes of machine code per modelled IR node, used only when a
#: program does not declare its binary size.
BYTES_PER_NODE = 600


@dataclass(frozen=True)
class BinaryInfo:
    """Size facts about a modelled binary."""

    name: str
    code_kloc: float
    binary_bytes: int


def binary_info(program: Program) -> BinaryInfo:
    """Resolve code and binary size for a program model.

    Precedence: ``metadata["binary_bytes"]`` if declared (the evaluated
    applications pin the paper's Table 2 values), else an estimate from
    the IR node count.
    """
    declared = program.metadata.get("binary_bytes")
    nbytes = int(declared) if declared else program.node_count() * BYTES_PER_NODE
    return BinaryInfo(
        name=program.name,
        code_kloc=float(program.code_kloc),
        binary_bytes=nbytes,
    )

"""Program-model IR and static analysis (the Dyninst substitute).

The paper extracts PAG structure from executable binaries with Dyninst
(§3.2).  Offline and in pure Python we cannot parse ELF binaries, so this
package provides a small declarative IR in which the evaluated programs
are modelled: functions, loops, branches, computation statements, call
sites (user / external / indirect), MPI communication calls, and
threading calls — each with debug information (file, line).

:mod:`repro.ir.static_analysis` plays Dyninst's role: it walks the IR
from the entry function, inlines user calls (the paper's top-down view is
a tree — Table 2 shows |E| = |V| - 1), assigns every expanded node a
stable *context path*, and emits the top-down view of the PAG.  Call
sites whose target is not statically resolvable (indirect calls) are
marked for runtime fill-in, exactly as §3.2 describes.

:mod:`repro.ir.binary` models code size (KLoC) and binary size so the
static-analysis cost model of Table 1 has an input to scale with.
"""

from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Function,
    Loop,
    Node,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.ir.context import ExecContext
from repro.ir.static_analysis import StaticAnalysisResult, analyze, static_analysis_cost
from repro.ir.binary import BinaryInfo, binary_info

__all__ = [
    "Program",
    "Function",
    "Node",
    "Stmt",
    "Loop",
    "Branch",
    "Call",
    "CallTarget",
    "CommCall",
    "CommOp",
    "ThreadCall",
    "ThreadOp",
    "ExecContext",
    "analyze",
    "StaticAnalysisResult",
    "static_analysis_cost",
    "BinaryInfo",
    "binary_info",
]

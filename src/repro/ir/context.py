"""Execution context threaded through IR evaluation.

Workload models (statement costs, loop trip counts, branch conditions,
communication peers/sizes) are written as callables of an
:class:`ExecContext`, so one program model can express rank-dependent
behaviour — the load imbalance, message-size skew, and scale-dependent
costs that the paper's case studies diagnose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass
class ExecContext:
    """Where execution currently is, and under which run parameters.

    Attributes
    ----------
    rank / nprocs:
        MPI rank and communicator size.
    thread / nthreads:
        Thread id within the process and thread count.
    iterations:
        Current iteration index of each enclosing loop, innermost last.
        ``iterations[-1]`` is the usual "i" of the nearest loop.
    params:
        Program-level run parameters (problem size, timesteps, …), set by
        the caller of :meth:`repro.runtime.executor.run_program`.
    """

    rank: int = 0
    nprocs: int = 1
    thread: int = 0
    nthreads: int = 1
    iterations: Tuple[int, ...] = ()
    params: Dict[str, Any] = field(default_factory=dict)

    def push_iteration(self, i: int) -> "ExecContext":
        return ExecContext(
            rank=self.rank,
            nprocs=self.nprocs,
            thread=self.thread,
            nthreads=self.nthreads,
            iterations=self.iterations + (i,),
            params=self.params,
        )

    def with_thread(self, thread: int, nthreads: int) -> "ExecContext":
        return ExecContext(
            rank=self.rank,
            nprocs=self.nprocs,
            thread=thread,
            nthreads=nthreads,
            iterations=self.iterations,
            params=self.params,
        )

    @property
    def iteration(self) -> int:
        """Innermost loop index (0 outside any loop)."""
        return self.iterations[-1] if self.iterations else 0


def evaluate(value: Any, ctx: ExecContext) -> Any:
    """Evaluate a model attribute: constants pass through, callables get ctx."""
    return value(ctx) if callable(value) else value

"""The declarative program-model IR.

Programs under analysis are described as trees of :class:`Node` inside
:class:`Function` bodies, collected in a :class:`Program`.  The model
carries exactly the structural features Dyninst extracts from a binary
(paper §3.2): control flow (loops, branches, statement sequences), the
static call graph, and debug information — plus the dynamic behaviour
the runtime simulator needs (costs, trip counts, communication
peers/sizes), expressed as constants or callables of
:class:`~repro.ir.context.ExecContext`.

Every node gets a process-wide unique ``uid`` when it is attached to a
:class:`Program`; context paths (tuples of uids) identify expanded
positions in the top-down view and are the keys of performance-data
embedding (§3.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.ir.context import ExecContext

#: A model attribute: a constant or a callable of the execution context.
Dyn = Union[int, float, Callable[[ExecContext], Any]]


class CommOp(enum.Enum):
    """MPI operations the runtime simulator understands."""

    SEND = "MPI_Send"
    RECV = "MPI_Recv"
    ISEND = "MPI_Isend"
    IRECV = "MPI_Irecv"
    WAIT = "MPI_Wait"
    WAITALL = "MPI_Waitall"
    BARRIER = "MPI_Barrier"
    BCAST = "MPI_Bcast"
    REDUCE = "MPI_Reduce"
    ALLREDUCE = "MPI_Allreduce"
    ALLTOALL = "MPI_Alltoall"
    ALLGATHER = "MPI_Allgather"
    SENDRECV = "MPI_Sendrecv"


class ThreadOp(enum.Enum):
    """Threading / allocator operations (the inter-thread substrate)."""

    CREATE = "pthread_create"
    JOIN = "pthread_join"
    MUTEX_LOCK = "pthread_mutex_lock"
    MUTEX_UNLOCK = "pthread_mutex_unlock"
    #: Heap operations; serialized on a process-wide allocator lock
    #: (the Vite case study's root cause).
    ALLOC = "allocate"
    REALLOC = "reallocate"
    DEALLOC = "deallocate"


class CallTarget(enum.Enum):
    """Static resolvability of a call site (§3.1/§3.2)."""

    USER = "user"
    EXTERNAL = "external"
    #: Unresolvable statically; the tracer fills the target in at runtime.
    INDIRECT = "indirect"


class Node:
    """Base class for IR nodes.

    ``uid`` is assigned by :meth:`Program.add_function`; ``-1`` means the
    node is not yet attached to a program.
    """

    __slots__ = ("name", "line", "uid")

    def __init__(self, name: str, line: int) -> None:
        self.name = name
        self.line = line
        self.uid = -1

    def children(self) -> Sequence["Node"]:
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, uid={self.uid})"


class Stmt(Node):
    """A straight-line computation block.

    ``cost`` is simulated seconds; ``pmu`` maps counter names to rates per
    simulated second (defaults applied by the sampler when absent).
    ``touches`` declares shared-state accesses — ``(variable, mode)``
    pairs with mode ``"r"`` or ``"w"`` — that the runtime records as
    :class:`~repro.runtime.records.AccessEvent`\\ s for the
    happens-before race checker (lint rule PF104).  Thread-private state
    is simply not declared.
    """

    __slots__ = ("cost", "pmu", "touches")

    def __init__(
        self,
        name: str,
        cost: Dyn,
        line: int = 0,
        pmu: Optional[Dict[str, float]] = None,
        touches: Sequence[tuple] = (),
    ) -> None:
        super().__init__(name, line)
        self.cost = cost
        self.pmu = dict(pmu or {})
        self.touches = tuple(touches)


class Loop(Node):
    """A counted loop; ``trips`` may depend on the context (problem size)."""

    __slots__ = ("trips", "body")

    def __init__(
        self,
        trips: Dyn,
        body: Sequence[Node],
        name: str = "",
        line: int = 0,
    ) -> None:
        super().__init__(name, line)
        self.trips = trips
        self.body: List[Node] = list(body)

    def children(self) -> Sequence[Node]:
        return self.body


class Branch(Node):
    """A two-way branch; ``condition`` picks the then- or else-body."""

    __slots__ = ("condition", "then_body", "else_body")

    def __init__(
        self,
        condition: Callable[[ExecContext], bool],
        then_body: Sequence[Node],
        else_body: Sequence[Node] = (),
        name: str = "",
        line: int = 0,
    ) -> None:
        super().__init__(name, line)
        self.condition = condition
        self.then_body: List[Node] = list(then_body)
        self.else_body: List[Node] = list(else_body)

    def children(self) -> Sequence[Node]:
        return list(self.then_body) + list(self.else_body)


class Call(Node):
    """A call site.

    ``callee`` names a :class:`Function` for USER calls, a library symbol
    for EXTERNAL calls, and — for INDIRECT calls — the function actually
    taken at runtime (statically invisible; the static analysis only sees
    an unresolved call site and marks it, per §3.2).  EXTERNAL calls may
    carry a ``cost`` for their opaque body.
    """

    __slots__ = ("callee", "target", "cost")

    def __init__(
        self,
        callee: str,
        target: CallTarget = CallTarget.USER,
        cost: Dyn = 0.0,
        name: str = "",
        line: int = 0,
    ) -> None:
        super().__init__(name or callee, line)
        self.callee = callee
        self.target = target
        self.cost = cost


class CommCall(Node):
    """An MPI call site.

    ``peer`` gives the remote rank for point-to-point operations (callable
    of context or constant; ignored for collectives except REDUCE/BCAST
    root).  ``nbytes`` is the message payload.  ``requests`` names the
    non-blocking requests a WAIT/WAITALL completes: ISEND/IRECV sites tag
    their request with their own ``req`` label, and WAIT/WAITALL list the
    labels they complete (empty = all outstanding).
    """

    __slots__ = ("op", "peer", "source", "nbytes", "tag", "req", "requests", "root")

    def __init__(
        self,
        op: CommOp,
        peer: Dyn = -1,
        nbytes: Dyn = 0,
        tag: int = 0,
        req: str = "",
        requests: Sequence[str] = (),
        root: int = 0,
        source: Optional[Dyn] = None,
        name: str = "",
        line: int = 0,
    ) -> None:
        super().__init__(name or op.value, line)
        self.op = op
        self.peer = peer
        #: SENDRECV only: the rank received from (MPI_Sendrecv's separate
        #: ``source`` argument); defaults to ``peer`` (symmetric exchange).
        self.source = source
        self.nbytes = nbytes
        self.tag = tag
        self.req = req
        self.requests: List[str] = list(requests)
        self.root = root


class ThreadCall(Node):
    """A threading or allocator call site.

    CREATE runs ``body`` (a list of nodes) on ``count`` spawned threads;
    JOIN waits for them.  MUTEX_* name a lock; ALLOC/REALLOC/DEALLOC model
    heap calls that serialize on the process allocator lock, with
    ``hold`` simulated seconds inside the lock.
    """

    __slots__ = ("op", "body", "count", "lock", "hold")

    def __init__(
        self,
        op: ThreadOp,
        body: Sequence[Node] = (),
        count: Dyn = 0,
        lock: str = "",
        hold: Dyn = 0.0,
        name: str = "",
        line: int = 0,
    ) -> None:
        super().__init__(name or op.value, line)
        self.op = op
        self.body: List[Node] = list(body)
        self.count = count
        self.lock = lock
        self.hold = hold

    def children(self) -> Sequence[Node]:
        return self.body


@dataclass
class Function:
    """A named function with a body of IR nodes and debug info."""

    name: str
    body: List[Node]
    source_file: str = "<unknown>"
    line: int = 0


@dataclass
class Program:
    """A complete modelled program ("the binary").

    ``code_kloc`` and ``language``/``models`` feed the binary-size and
    static-analysis cost models (Table 1 / Table 2 columns that describe
    the program itself rather than the PAG).
    """

    name: str
    entry: str = "main"
    code_kloc: float = 1.0
    language: str = "C"
    models: List[str] = field(default_factory=lambda: ["MPI"])
    metadata: Dict[str, Any] = field(default_factory=dict)
    functions: Dict[str, Function] = field(default_factory=dict)
    _uid_counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def add_function(self, func: Function) -> Function:
        """Register a function and assign uids to all its nodes."""
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        stack: List[Node] = list(func.body)
        while stack:
            node = stack.pop()
            if node.uid == -1:
                node.uid = next(self._uid_counter)
            stack.extend(node.children())
        return func

    def register_nodes(self, nodes: Sequence[Node]) -> None:
        """Assign uids to nodes attached to an existing function's body
        after registration (used by structure padding)."""
        stack: List[Node] = list(nodes)
        while stack:
            node = stack.pop()
            if node.uid == -1:
                node.uid = next(self._uid_counter)
            stack.extend(node.children())

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"program {self.name!r} has no function {name!r}") from None

    @property
    def entry_function(self) -> Function:
        return self.function(self.entry)

    def node_count(self) -> int:
        """Total IR nodes across all functions (pre-inlining)."""
        total = 0
        for func in self.functions.values():
            stack: List[Node] = list(func.body)
            while stack:
                node = stack.pop()
                total += 1
                stack.extend(node.children())
        return total

"""Static structure extraction — PerFlow's Dyninst role (paper §3.2).

:func:`analyze` walks a :class:`~repro.ir.model.Program` from its entry
function and produces the *top-down view* of the PAG (paper §3.4,
Fig. 4): a tree whose root is the entry function, with user calls inlined
at each call site (hence |E| = |V| - 1, matching Table 2), communication
and external calls as leaf call vertices, and debug information attached
to every vertex.

Call sites that cannot be resolved statically — indirect calls — are
marked (``CallKind.INDIRECT``) and left unexpanded; when a runtime trace
supplies resolved targets they are expanded in place, which is exactly
the static-marks-it / dynamic-fills-it split the paper describes.

Context paths
-------------
Every expanded vertex is keyed by its *context path*: the tuple of node
uids (ints) and function-entry markers (``"f:<name>"`` strings) from the
entry function down.  The runtime interpreter tracks the same paths, so
performance-data embedding (§3.3) is a dictionary lookup with
longest-prefix fallback instead of a graph search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    Function,
    Loop,
    Node,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.obs.trace import timed_span as _timed_span
from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.vertex import CallKind, Vertex, VertexLabel

PathElem = Union[int, str]
Path = Tuple[PathElem, ...]

#: Maximum inlining depth for recursive call chains.
MAX_RECURSION_DEPTH = 2


@dataclass
class StaticAnalysisResult:
    """Output of :func:`analyze`.

    Attributes
    ----------
    pag:
        The top-down view of the PAG (a tree rooted at the entry function).
    path_to_vertex:
        Context path -> vertex id, the embedding index.
    unresolved_calls:
        Vertex ids of indirect call sites with no runtime target yet.
    static_seconds:
        Wall-clock seconds this analysis took (the measured quantity of
        Table 1's "Static" row for our substrate).
    modeled_static_seconds:
        What the paper's Dyninst-based analysis would cost for a binary of
        this size, from :func:`static_analysis_cost`.
    """

    pag: PAG
    path_to_vertex: Dict[Path, int]
    unresolved_calls: List[int] = field(default_factory=list)
    static_seconds: float = 0.0
    modeled_static_seconds: float = 0.0

    def vertex_for_path(self, path: Path) -> Optional[Vertex]:
        """Resolve a calling context to its vertex, longest prefix first.

        This is the embedding search of Fig. 3: contexts deeper than the
        expanded tree (e.g. below a recursion cut-off) resolve to the
        deepest known ancestor.
        """
        probe = tuple(path)
        while probe:
            vid = self.path_to_vertex.get(probe)
            if vid is not None:
                return self.pag.vertex(vid)
            probe = probe[:-1]
        return None

    def debug_of(self, path: Path) -> str:
        """``file:line`` debug info for a calling context ("" if unknown).

        Used by the concurrency lint to anchor trace-derived evidence
        (which carries context paths, not IR nodes) to source locations.
        """
        v = self.vertex_for_path(path)
        if v is None:
            return ""
        try:
            return v["debug-info"] or ""
        except (KeyError, TypeError):
            return ""


class _Expander:
    """Walks the IR and emits top-down-view vertices/edges."""

    def __init__(self, program: Program, indirect_targets: Dict[int, Set[str]]):
        self.program = program
        self.indirect_targets = indirect_targets
        self.pag = PAG(
            f"{program.name}/top-down",
            {"view": "top-down", "program": program.name},
        )
        self.path_to_vertex: Dict[Path, int] = {}
        self.unresolved: List[int] = []

    # -- helpers -----------------------------------------------------------
    def _add(
        self,
        path: Path,
        label: VertexLabel,
        name: str,
        parent: Optional[Vertex],
        edge_label: EdgeLabel,
        call_kind: Optional[CallKind] = None,
        line: int = 0,
        source_file: str = "",
    ) -> Vertex:
        v = self.pag.add_vertex(
            label,
            name,
            call_kind,
            {"debug-info": f"{source_file}:{line}" if source_file else f"line:{line}"},
        )
        self.path_to_vertex[path] = v.id
        if parent is not None:
            self.pag.add_edge(parent, v, edge_label)
        return v

    # -- expansion -----------------------------------------------------------
    def expand_function(
        self,
        fname: str,
        path: Path,
        parent: Optional[Vertex],
        call_chain: Tuple[str, ...],
    ) -> Vertex:
        func = self.program.function(fname)
        fpath = path + (f"f:{fname}",)
        fv = self._add(
            fpath,
            VertexLabel.FUNCTION,
            fname,
            parent,
            EdgeLabel.INTER_PROCEDURAL,
            line=func.line,
            source_file=func.source_file,
        )
        self.expand_body(func.body, fpath, fv, func, call_chain + (fname,), loop_prefix="")
        return fv

    def expand_body(
        self,
        body: Sequence[Node],
        path: Path,
        parent: Vertex,
        func: Function,
        call_chain: Tuple[str, ...],
        loop_prefix: str,
    ) -> None:
        loop_index = 0
        for node in body:
            npath = path + (node.uid,)
            if isinstance(node, Loop):
                loop_index += 1
                name = node.name or (
                    f"loop_{loop_prefix}{loop_index}" if not loop_prefix
                    else f"loop_{loop_prefix}.{loop_index}"
                )
                # The hierarchical numbering in names like "loop_10.1"
                # concatenates ancestor loop ordinals within the function.
                inner_prefix = (
                    f"{loop_prefix}.{loop_index}" if loop_prefix else str(loop_index)
                )
                lv = self._add(
                    npath, VertexLabel.LOOP, name, parent,
                    EdgeLabel.INTRA_PROCEDURAL, line=node.line,
                    source_file=func.source_file,
                )
                self.expand_body(node.body, npath, lv, func, call_chain, inner_prefix)
            elif isinstance(node, Branch):
                name = node.name or "branch"
                bv = self._add(
                    npath, VertexLabel.BRANCH, name, parent,
                    EdgeLabel.INTRA_PROCEDURAL, line=node.line,
                    source_file=func.source_file,
                )
                self.expand_body(
                    list(node.then_body) + list(node.else_body),
                    npath, bv, func, call_chain, loop_prefix,
                )
            elif isinstance(node, Stmt):
                self._add(
                    npath, VertexLabel.INSTRUCTION, node.name, parent,
                    EdgeLabel.INTRA_PROCEDURAL, line=node.line,
                    source_file=func.source_file,
                )
            elif isinstance(node, CommCall):
                self._add(
                    npath, VertexLabel.CALL, node.name, parent,
                    EdgeLabel.INTRA_PROCEDURAL, CallKind.COMM,
                    line=node.line, source_file=func.source_file,
                )
            elif isinstance(node, ThreadCall):
                tv = self._add(
                    npath, VertexLabel.CALL, node.name, parent,
                    EdgeLabel.INTRA_PROCEDURAL, CallKind.THREAD,
                    line=node.line, source_file=func.source_file,
                )
                if node.op is ThreadOp.CREATE and node.body:
                    self.expand_body(node.body, npath, tv, func, call_chain, loop_prefix)
            elif isinstance(node, Call):
                self._expand_call(node, npath, parent, func, call_chain)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown IR node type {type(node).__name__}")

    def _expand_call(
        self,
        node: Call,
        npath: Path,
        parent: Vertex,
        func: Function,
        call_chain: Tuple[str, ...],
    ) -> None:
        if node.target is CallTarget.EXTERNAL:
            self._add(
                npath, VertexLabel.CALL, node.name, parent,
                EdgeLabel.INTRA_PROCEDURAL, CallKind.EXTERNAL,
                line=node.line, source_file=func.source_file,
            )
            return
        if node.target is CallTarget.INDIRECT:
            cv = self._add(
                npath, VertexLabel.CALL, node.name, parent,
                EdgeLabel.INTRA_PROCEDURAL, CallKind.INDIRECT,
                line=node.line, source_file=func.source_file,
            )
            targets = self.indirect_targets.get(node.uid, set())
            if not targets:
                self.unresolved.append(cv.id)
            for target in sorted(targets):
                if target in self.program.functions:
                    self.expand_function(target, npath, cv, call_chain)
            return
        # USER call: inline, cutting recursion at MAX_RECURSION_DEPTH.
        depth = call_chain.count(node.callee)
        kind = CallKind.RECURSIVE if depth > 0 else CallKind.USER
        cv = self._add(
            npath, VertexLabel.CALL, node.name, parent,
            EdgeLabel.INTRA_PROCEDURAL, kind,
            line=node.line, source_file=func.source_file,
        )
        if node.callee not in self.program.functions:
            # Modelled as external if the body is absent from the program.
            return
        if depth < MAX_RECURSION_DEPTH:
            self.expand_function(node.callee, npath, cv, call_chain)


def analyze(
    program: Program,
    indirect_targets: Optional[Dict[int, Set[str]]] = None,
) -> StaticAnalysisResult:
    """Extract the top-down view of the PAG from a program model.

    Parameters
    ----------
    program:
        The modelled "binary".
    indirect_targets:
        Runtime-resolved indirect-call targets (call-site uid -> callee
        names), from :class:`repro.runtime.tracer.Tracer`.  Without it,
        indirect call sites stay as marked leaves (§3.2).
    """
    # timed_span measures even when tracing is disabled, so the phase
    # both appears in recorded traces and keeps feeding static_seconds.
    with _timed_span("static.analyze", category="static", program=program.name) as sp:
        exp = _Expander(program, indirect_targets or {})
        exp.expand_function(program.entry, (), None, ())
        sp.set(
            vertices=exp.pag.num_vertices,
            unresolved_calls=len(exp.unresolved),
        )
    return StaticAnalysisResult(
        pag=exp.pag,
        path_to_vertex=exp.path_to_vertex,
        unresolved_calls=exp.unresolved,
        static_seconds=sp.duration,
        modeled_static_seconds=static_analysis_cost(program),
    )


def static_analysis_cost(program: Program) -> float:
    """Model the paper's Dyninst static-analysis cost for this program.

    Table 1 shows the cost growing with binary size: ~0.03 s for the
    smallest NPB kernels up to 5.34 s for LAMMPS (14.67 MB binary).  We
    fit a simple affine model in binary megabytes: ``0.02 + 0.36 * MB``.
    """
    from repro.ir.binary import binary_info

    info = binary_info(program)
    return 0.02 + 0.36 * (info.binary_bytes / 1e6)

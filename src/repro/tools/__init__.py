"""Baseline performance tools, modelled for the §5.3 comparison.

Each tool consumes the same simulated runs PerFlow does and produces
what the real tool would: mpiP a statistical MPI profile, HPCToolkit a
sampled calling-context tree with scaling-loss flags, Scalasca full
event traces (with the overhead and storage bill that implies), and
ScalAna a scaling-loss report from its purpose-built graph analysis.

The comparison's claims live in the *cost and capability* differences:
tracing costs orders of magnitude more than sampling; profilers rank
hotspots but do not localize root causes; ScalAna localizes but is a
single-purpose tool of thousands of lines, where the PerFlow paradigm
is a couple dozen.
"""

from repro.tools.mpip import MpiPProfile, mpip_profile
from repro.tools.hpctoolkit import CCTNode, HPCToolkitProfile, hpctoolkit_profile
from repro.tools.scalasca import ScalascaTrace, scalasca_trace
from repro.tools.scalana import ScalAnaReport, scalana_analyze, SCALANA_SOURCE_LINES

__all__ = [
    "MpiPProfile",
    "mpip_profile",
    "CCTNode",
    "HPCToolkitProfile",
    "hpctoolkit_profile",
    "ScalascaTrace",
    "scalasca_trace",
    "ScalAnaReport",
    "scalana_analyze",
    "SCALANA_SOURCE_LINES",
]

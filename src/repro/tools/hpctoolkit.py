"""HPCToolkit analog — sampled calling-context-tree profiling [8].

HPCToolkit attributes sampled costs to a calling context tree, exposes
fine-grained (loop-level) hotspots, and — per Wei & Mellor-Crummey's
sample-based diagnosis [65] — flags scalability losses per CCT node by
comparing runs at two scales.  What it does *not* do is connect a flagged
node to the remote code that caused it: "the root cause of poor
scalability and the underlying reasons cannot be easily obtained"
(§5.3).  The analog therefore reports flagged nodes with no causal
edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.model import Program
from repro.runtime.executor import run_program
from repro.runtime.machine import MachineModel
from repro.runtime.records import Path, RunResult
from repro.runtime.sampler import Sampler


@dataclass
class CCTNode:
    """One calling-context-tree node with sampled metrics."""

    path: Path
    name: str
    samples: int = 0
    time: float = 0.0
    children: List["CCTNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()


@dataclass
class HPCToolkitProfile:
    program: str
    nprocs: int
    frequency_hz: float
    root: CCTNode
    overhead_pct: float

    def hotspots(self, n: int = 10) -> List[CCTNode]:
        """Flat loop/statement-level hotspots, hottest first."""
        leaves = [node for node in self.root.walk() if not node.children]
        return sorted(leaves, key=lambda nd: -nd.time)[:n]


def _name_of(path: Path, program: Program) -> str:
    last = path[-1] if path else "<root>"
    if isinstance(last, str):
        return last[2:] if last.startswith("f:") else last
    # node uid: look it up in the program
    for func in program.functions.values():
        stack = list(func.body)
        while stack:
            node = stack.pop()
            if node.uid == last:
                return node.name or type(node).__name__
            stack.extend(node.children())
    return f"node:{last}"


def hpctoolkit_profile(
    program: Program,
    nprocs: int,
    frequency_hz: float = 200.0,
    params: Optional[Dict] = None,
    machine: Optional[MachineModel] = None,
    run: Optional[RunResult] = None,
) -> HPCToolkitProfile:
    """Build the sampled CCT for a run (hpcrun + hpcprof, in effect)."""
    if run is None:
        run = run_program(program, nprocs=nprocs, params=params, machine=machine)
    sampler = Sampler(frequency_hz)
    root = CCTNode(path=(), name="<program root>")
    index: Dict[Path, CCTNode] = {(): root}

    def ensure(path: Path) -> CCTNode:
        node = index.get(path)
        if node is None:
            parent = ensure(path[:-1])
            node = CCTNode(path=path, name=_name_of(path, program))
            parent.children.append(node)
            index[path] = node
        return node

    for rec in sampler.samples(run):
        node = ensure(rec.path)
        node.samples += rec.nsamples
        node.time += rec.nsamples / frequency_hz
    # Sampling-profiler overhead: same interrupt cost as any sampler.
    overhead = 100.0 * frequency_hz * 4.0e-5
    return HPCToolkitProfile(
        program=program.name,
        nprocs=run.nprocs,
        frequency_hz=frequency_hz,
        root=root,
        overhead_pct=overhead,
    )


def scalability_issues(
    small: HPCToolkitProfile,
    large: HPCToolkitProfile,
    threshold: float = 1.5,
) -> List[Tuple[str, float]]:
    """Per-node scaling-loss flags (Wei & Mellor-Crummey-style).

    A node is flagged when its aggregate time grew more than
    ``threshold``× between the small- and large-scale runs (for a fixed
    total problem, ideal scaling keeps aggregate time constant).
    Returns (name, growth factor) pairs — names only: no causal
    information, by design.
    """
    small_times: Dict[Path, float] = {
        node.path: node.time for node in small.root.walk()
    }
    out: List[Tuple[str, float]] = []
    for node in large.root.walk():
        if not node.path or node.children:
            continue
        base = small_times.get(node.path, 0.0)
        if base <= 0:
            continue
        growth = node.time / base
        if growth >= threshold:
            out.append((node.name, growth))
    out.sort(key=lambda item: -item[1])
    return out

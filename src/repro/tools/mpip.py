"""mpiP analog — lightweight statistical MPI profiling [62].

mpiP interposes PMPI wrappers and aggregates per-call-site statistics;
it reports communication hotspots, message sizes, call counts, and
debug info, but performs *no* analysis beyond aggregation: "detecting
the scaling loss of each communication call still needs significant
human efforts" (§5.3).  Accordingly the analog exposes only aggregate
rows — localizing anything is the caller's (human's) job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.model import Program
from repro.pag.views import build_top_down_view
from repro.pag.vertex import CallKind, VertexLabel
from repro.runtime.executor import run_program
from repro.runtime.machine import MachineModel
from repro.runtime.records import RunResult

#: Per-MPI-call wrapper cost: mpiP is lighter than full tracing but
#: heavier than sampling (it intercepts every call synchronously).
WRAP_COST = 8.0e-5


@dataclass
class MpiPRow:
    name: str
    site: str
    time: float
    app_pct: float
    count: int
    avg_bytes: float


@dataclass
class MpiPProfile:
    """An mpiP-style report for one run."""

    program: str
    nprocs: int
    app_time: float
    rows: List[MpiPRow] = field(default_factory=list)
    overhead_pct: float = 0.0

    def pct_of(self, name: str) -> float:
        """Aggregate %-of-app-time of all sites of one MPI function —
        the number §5.3 quotes for mpi_allreduce_ (0.06% vs 7.93%)."""
        return sum(r.app_pct for r in self.rows if r.name == name)

    def to_text(self) -> str:
        lines = [
            f"@ mpiP profile: {self.program} ({self.nprocs} ranks)",
            f"@ app time (aggregate): {self.app_time:.4f} s",
            "@   call             site              time(s)    app%   count  avg-bytes",
        ]
        for r in sorted(self.rows, key=lambda r: -r.time):
            lines.append(
                f"    {r.name:16} {r.site:16} {r.time:9.4f} {r.app_pct:6.2f}  {r.count:6}  {r.avg_bytes:9.0f}"
            )
        return "\n".join(lines)


def mpip_profile(
    program: Program,
    nprocs: int,
    params: Optional[Dict] = None,
    machine: Optional[MachineModel] = None,
    run: Optional[RunResult] = None,
) -> MpiPProfile:
    """Profile a run the way mpiP would.

    ``run`` reuses an existing simulation; otherwise one is executed.
    """
    if run is None:
        run = run_program(program, nprocs=nprocs, params=params, machine=machine)
    pag, _static = build_top_down_view(program, run)
    app_time = float(pag.vertex(0)["time"] or 0.0)
    rows: List[MpiPRow] = []
    n_calls = 0
    for v in pag.vertices():
        if not (v.label is VertexLabel.CALL and v.call_kind is CallKind.COMM):
            continue
        t = float(v["time"] or 0.0)
        count = int(v["count"] or 0)
        if count == 0:
            continue
        n_calls += count
        info = v["comm-info"] or {}
        rows.append(
            MpiPRow(
                name=v.name,
                site=str(v["debug-info"]),
                time=t,
                app_pct=100.0 * t / app_time if app_time > 0 else 0.0,
                count=count,
                avg_bytes=float(info.get("bytes", 0.0)) / count,
            )
        )
    overhead = 100.0 * (WRAP_COST * n_calls / max(run.nprocs, 1)) / max(run.elapsed, 1e-12)
    return MpiPProfile(
        program=program.name,
        nprocs=run.nprocs,
        app_time=app_time,
        rows=rows,
        overhead_pct=overhead,
    )

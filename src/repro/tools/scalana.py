"""ScalAna analog — purpose-built scaling-loss detection [41].

ScalAna (the same group's SC'20 system, and the scalability paradigm's
inspiration) builds a Program Structure Graph, detects scaling loss by
differencing two scales, and backtracks dependence edges to root
causes.  Functionally it reaches the same answer as PerFlow's
scalability paradigm; the §5.3 comparison is about *implementation
effort*: ScalAna is a single-purpose tool of thousands of lines of
source, where the PerFlow paradigm is ~27 lines over reusable passes.

The analog reuses this repository's substrate (that *is* the point —
the functionality is a fixed pipeline here, not a programmable graph)
and pins the source-size constant used by the comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.difference import graph_difference
from repro.ir.model import Program
from repro.pag.views import build_parallel_view, build_top_down_view
from repro.passes.backtracking import backtracking_analysis
from repro.pag.sets import VertexSet
from repro.runtime.executor import run_program
from repro.runtime.machine import MachineModel

#: The paper: "the source code of ScalAna has thousands of lines."
SCALANA_SOURCE_LINES = 5200


@dataclass
class ScalAnaReport:
    program: str
    small_nprocs: int
    large_nprocs: int
    #: (name, debug-info, scaling loss seconds), worst first
    scaling_loss: List[tuple] = field(default_factory=list)
    #: (name, debug-info, rank) root-cause candidates from backtracking
    root_causes: List[tuple] = field(default_factory=list)


def scalana_analyze(
    program: Program,
    small_nprocs: int,
    large_nprocs: int,
    params: Optional[Dict] = None,
    machine: Optional[MachineModel] = None,
    runs: Optional[tuple] = None,
    top: int = 10,
    max_ranks: int = 32,
) -> ScalAnaReport:
    """ScalAna's fixed pipeline: difference two scales, backtrack causes.

    ``runs=(small_run, large_run)`` reuses existing simulations.
    """
    if runs is not None:
        run_small, run_large = runs
    else:
        run_small = run_program(program, nprocs=small_nprocs, params=params, machine=machine)
        run_large = run_program(program, nprocs=large_nprocs, params=params, machine=machine)
    pag_small, _ = build_top_down_view(program, run_small)
    pag_large, static_large = build_top_down_view(program, run_large)
    diff = graph_difference(pag_large, pag_small)

    losses = sorted(
        (v for v in diff.vertices() if (v["time"] or 0.0) > 0.0),
        key=lambda v: -(v["time"] or 0.0),
    )[:top]
    worst = [pag_large.vertex(v.id) for v in losses]

    pv = build_parallel_view(pag_large, static_large, run_large, max_ranks=max_ranks)
    ntd = pag_large.num_vertices
    instances = []
    for v in worst:
        arr = v["time_per_rank"]
        ranks = (
            [int(np.argmax(arr))]
            if isinstance(arr, np.ndarray) and arr.size
            else [0]
        )
        for r in ranks:
            if r < pv.metadata["nprocs"]:
                instances.append(pv.vertex(r * ntd + v.id))
    v_bt, _e_bt = backtracking_analysis(VertexSet(instances))
    roots = [
        (v.name, v["debug-info"], v["process"])
        for v in v_bt
        if v["backtrack_root"]
    ]
    return ScalAnaReport(
        program=program.name,
        small_nprocs=run_small.nprocs,
        large_nprocs=run_large.nprocs,
        scaling_loss=[(v.name, v["debug-info"], float(l["time"] or 0.0)) for v, l in zip(worst, losses)],
        root_causes=roots,
    )

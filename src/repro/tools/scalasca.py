"""Scalasca analog — trace-based automatic wait-state analysis [31].

Scalasca instruments function enters/exits and every MPI event, writes
the full trace, and replays it to locate wait states and their root
causes automatically.  The capability is real — it *does* find the
causes — but the bill is the point of §5.3's comparison: for ZeusMP at
128 ranks, **56.72% runtime overhead and 57.64 GB of traces**, where
PerFlow pays 1.56% and 2.4 MB.

Cost model: real codes execute on the order of ten million traced
function events per rank-second (our IR models coarse statements, so
the rate is a declared constant calibrated to the paper's ZeusMP
measurement), each costing instrumentation time and a fixed-size trace
record; MPI events are traced on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.model import Program
from repro.runtime.executor import run_program
from repro.runtime.machine import MachineModel
from repro.runtime.records import RunResult

#: Traced function-level events per rank per second of execution
#: (enter/exit pairs), and bytes per trace record.  Calibrated so a
#: ZeusMP-like run at 128 ranks yields ~56.7% overhead and ~58 GB —
#: note the simulator's timebase is compressed relative to the real
#: machine (simulated seconds cover far more application progress), so
#: the per-second rate is correspondingly inflated.
EVENT_RATE_HZ = 2.6e7
RECORD_BYTES = 185
PER_EVENT_COST = 2.18e-8
#: extra bytes per MPI event record.
COMM_RECORD_BYTES = 96


@dataclass
class WaitState:
    """One detected wait state with its root cause."""

    kind: str  # "late-sender" | "wait-at-collective"
    victim_rank: int
    victim_site: str
    cause_rank: int
    cause_site: str
    wait_time: float


@dataclass
class ScalascaTrace:
    program: str
    nprocs: int
    elapsed: float
    overhead_pct: float
    storage_bytes: int
    wait_states: List[WaitState] = field(default_factory=list)

    @property
    def storage_gb(self) -> float:
        return self.storage_bytes / 1e9


def scalasca_trace(
    program: Program,
    nprocs: int,
    params: Optional[Dict] = None,
    machine: Optional[MachineModel] = None,
    run: Optional[RunResult] = None,
    min_wait: float = 1e-6,
) -> ScalascaTrace:
    """Trace a run and perform the wait-state (root-cause) analysis."""
    if run is None:
        run = run_program(program, nprocs=nprocs, params=params, machine=machine)
    elapsed = run.elapsed
    func_events = EVENT_RATE_HZ * elapsed * run.nprocs
    comm_events = len(run.comm_events)
    storage = int(func_events * RECORD_BYTES + comm_events * COMM_RECORD_BYTES)
    overhead = 100.0 * EVENT_RATE_HZ * PER_EVENT_COST

    wait_states: List[WaitState] = []
    for ev in run.comm_events:
        if ev.participants is not None:
            cause_site = str(ev.src_path[-1]) if ev.src_path else "?"
            for rank, path, _arr, wait in ev.participants:
                if wait > min_wait and rank != ev.src_rank:
                    wait_states.append(
                        WaitState(
                            kind="wait-at-collective",
                            victim_rank=rank,
                            victim_site=str(path[-1]) if path else "?",
                            cause_rank=ev.src_rank,
                            cause_site=cause_site,
                            wait_time=wait,
                        )
                    )
        elif ev.wait_time > min_wait:
            wait_states.append(
                WaitState(
                    kind="late-sender",
                    victim_rank=ev.dst_rank,
                    victim_site=str(ev.dst_path[-1]) if ev.dst_path else "?",
                    cause_rank=ev.src_rank,
                    cause_site=str(ev.src_path[-1]) if ev.src_path else "?",
                    wait_time=ev.wait_time,
                )
            )
    wait_states.sort(key=lambda w: -w.wait_time)
    return ScalascaTrace(
        program=program.name,
        nprocs=run.nprocs,
        elapsed=elapsed,
        overhead_pct=overhead,
        storage_bytes=storage,
        wait_states=wait_states,
    )

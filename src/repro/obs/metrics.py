"""A process-global metrics registry: counters, gauges, histograms.

Metrics complement spans: a span tells you *when and how long*, a
metric aggregates *how often and how much* across the whole process —
columnar vs. legacy set-path hits, serialized bytes, fixpoint
non-convergence events.  The registry is deliberately tiny (no labels,
no time series) and always on: an increment is one lock-guarded
attribute add, cheap enough to live on hot paths like
:class:`~repro.pag.sets.VertexSet` construction.

Thread-safety: counters and histograms take a per-metric lock around
their read-modify-write updates — the parallel wavefront scheduler
(:mod:`repro.dataflow.scheduler`) bumps them from worker threads, and
an unguarded ``+=`` drops increments under contention.  Gauges are a
single attribute store (last write wins) and need no lock.

Naming convention: dotted lowercase, ``<layer>.<thing>[.<aspect>]`` —
``pag.sets.columnar``, ``pag.save.bytes``, ``dataflow.fixpoint.nonconverged``.
The full table lives in ``docs/OBSERVABILITY.md``.

Export: :meth:`MetricsRegistry.to_dict` / :meth:`MetricsRegistry.save`
produce a stable JSON document; :meth:`MetricsRegistry.to_text` a
console table.  Use :func:`counter` / :func:`gauge` / :func:`histogram`
for the process-global :data:`registry`, or instantiate a private
:class:`MetricsRegistry` in tests.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
]


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins; a single atomic store)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float, None] = None

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class _P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac).

    Five markers track (min, p/2, p, (1+p)/2, max); each observation
    shifts marker positions and adjusts interior heights with a
    piecewise-parabolic fit.  O(1) per observation, deterministic (no
    sampling), and exact for the first five values — the regression
    detector compares quantiles across runs, so a randomized reservoir
    would add cross-run noise exactly where stability matters.
    """

    __slots__ = ("p", "_q", "_n", "_npos", "_dn")

    def __init__(self, p: float):
        self.p = p
        self._q: list = []  # marker heights (sorted while warming up)
        self._n = [0.0, 1.0, 2.0, 3.0, 4.0]  # actual marker positions
        self._npos = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]  # desired positions
        self._dn = (0.0, p / 2, p, (1 + p) / 2, 1.0)

    def observe(self, x: float) -> None:
        q = self._q
        if len(q) < 5:
            bisect.insort(q, x)
            return
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        n, npos = self._n, self._npos
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            npos[i] += self._dn[i]
        for i in (1, 2, 3):
            d = npos[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d > 0 else -1.0
                # piecewise-parabolic prediction, linear fallback when it
                # would leave the bracketing markers
                qp = q[i] + d / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
                )
                if not (q[i - 1] < qp < q[i + 1]):
                    j = i + (1 if d > 0 else -1)
                    qp = q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
                q[i] = qp
                n[i] += d

    @property
    def value(self) -> float:
        q = self._q
        if not q:
            return 0.0
        if len(q) < 5:
            # exact (linear-interpolated) quantile over the warm-up buffer
            pos = self.p * (len(q) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(q) - 1)
            return q[lo] + (pos - lo) * (q[hi] - q[lo])
        return q[2]


#: Quantiles every histogram estimates (key in summary() -> probability).
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean plus
    p50/p95/p99 tail estimates.

    No buckets — the consumers here (CI artifacts, the self-analysis
    report, the run-ledger regression detector) want summary statistics
    and tail latencies, and a bucketed histogram would be the first
    thing to cut from a hot path.  Quantiles are P² streaming estimates
    (:class:`_P2Quantile`): O(1) per observation, deterministic, exact
    below five observations.  Thread-safe: the multi-field update is
    atomic under a per-histogram lock.
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "_quantiles", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self._quantiles = tuple(_P2Quantile(p) for _, p in QUANTILES)
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value
            for est in self._quantiles:
                est.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, p: float) -> float:
        """The estimate for one of the tracked quantiles (0.5/0.95/0.99)."""
        for est in self._quantiles:
            if est.p == p:
                return est.value
        raise KeyError(f"histogram {self.name!r} does not track p={p}")

    def summary(self) -> Dict[str, float]:
        if not self.count:
            out = {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
            out.update({key: 0.0 for key, _ in QUANTILES})
            return out
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
        }
        out.update(
            {key: est.value for (key, _), est in zip(QUANTILES, self._quantiles)}
        )
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.6g})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of named metrics.

    A name is bound to one metric kind for the registry's lifetime;
    asking for the same name as a different kind raises ``TypeError``
    (silent kind confusion would corrupt exported numbers).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric
        with self._lock:
            metric = self._metrics.setdefault(name, cls(name))
        if type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every metric (tests; CLI runs start from a clean slate)."""
        with self._lock:
            self._metrics.clear()

    # -- export ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Stable JSON-safe form, grouped by kind, names sorted."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.summary()
        return out

    def save(self, path: str) -> int:
        """Write the JSON export; returns bytes written."""
        doc = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(doc)
        return len(doc)

    def to_text(self) -> str:
        """Console table of every metric."""
        lines = []
        data = self.to_dict()
        for name, value in data["counters"].items():
            lines.append(f"{name:40} counter   {value}")
        for name, value in data["gauges"].items():
            lines.append(f"{name:40} gauge     {value}")
        for name, summ in data["histograms"].items():
            lines.append(
                f"{name:40} histogram n={summ['count']} sum={summ['sum']:.6g} "
                f"min={summ['min']:.6g} max={summ['max']:.6g} mean={summ['mean']:.6g} "
                f"p50={summ['p50']:.6g} p95={summ['p95']:.6g} p99={summ['p99']:.6g}"
            )
        return "\n".join(lines)


#: The process-global registry used by all library instrumentation.
registry = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter on the process-global :data:`registry`."""
    return registry.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the process-global :data:`registry`."""
    return registry.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram on the process-global :data:`registry`."""
    return registry.histogram(name)

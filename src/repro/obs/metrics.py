"""A process-global metrics registry: counters, gauges, histograms.

Metrics complement spans: a span tells you *when and how long*, a
metric aggregates *how often and how much* across the whole process —
columnar vs. legacy set-path hits, serialized bytes, fixpoint
non-convergence events.  The registry is deliberately tiny (no labels,
no time series) and always on: an increment is one lock-guarded
attribute add, cheap enough to live on hot paths like
:class:`~repro.pag.sets.VertexSet` construction.

Thread-safety: counters and histograms take a per-metric lock around
their read-modify-write updates — the parallel wavefront scheduler
(:mod:`repro.dataflow.scheduler`) bumps them from worker threads, and
an unguarded ``+=`` drops increments under contention.  Gauges are a
single attribute store (last write wins) and need no lock.

Naming convention: dotted lowercase, ``<layer>.<thing>[.<aspect>]`` —
``pag.sets.columnar``, ``pag.save.bytes``, ``dataflow.fixpoint.nonconverged``.
The full table lives in ``docs/OBSERVABILITY.md``.

Export: :meth:`MetricsRegistry.to_dict` / :meth:`MetricsRegistry.save`
produce a stable JSON document; :meth:`MetricsRegistry.to_text` a
console table.  Use :func:`counter` / :func:`gauge` / :func:`histogram`
for the process-global :data:`registry`, or instantiate a private
:class:`MetricsRegistry` in tests.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
]


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins; a single atomic store)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float, None] = None

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean.

    No buckets — the consumers here (CI artifacts, the self-analysis
    report) want the summary statistics, and a bucketed histogram would
    be the first thing to cut from a hot path.  Thread-safe: the
    multi-field update is atomic under a per-histogram lock.
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.6g})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of named metrics.

    A name is bound to one metric kind for the registry's lifetime;
    asking for the same name as a different kind raises ``TypeError``
    (silent kind confusion would corrupt exported numbers).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric
        with self._lock:
            metric = self._metrics.setdefault(name, cls(name))
        if type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every metric (tests; CLI runs start from a clean slate)."""
        with self._lock:
            self._metrics.clear()

    # -- export ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Stable JSON-safe form, grouped by kind, names sorted."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.summary()
        return out

    def save(self, path: str) -> int:
        """Write the JSON export; returns bytes written."""
        doc = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(doc)
        return len(doc)

    def to_text(self) -> str:
        """Console table of every metric."""
        lines = []
        data = self.to_dict()
        for name, value in data["counters"].items():
            lines.append(f"{name:40} counter   {value}")
        for name, value in data["gauges"].items():
            lines.append(f"{name:40} gauge     {value}")
        for name, summ in data["histograms"].items():
            lines.append(
                f"{name:40} histogram n={summ['count']} sum={summ['sum']:.6g} "
                f"min={summ['min']:.6g} max={summ['max']:.6g} mean={summ['mean']:.6g}"
            )
        return "\n".join(lines)


#: The process-global registry used by all library instrumentation.
registry = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter on the process-global :data:`registry`."""
    return registry.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the process-global :data:`registry`."""
    return registry.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram on the process-global :data:`registry`."""
    return registry.histogram(name)

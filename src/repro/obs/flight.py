"""Always-on flight recorder: the last N span/log events, cheaply.

The full :class:`~repro.obs.trace.SpanRecorder` keeps every span and is
opt-in (``--trace``); when a run hangs or crashes with tracing off, the
evidence is gone.  The flight recorder is the production answer: a
**preallocated bounded ring buffer** of recent span begin/end and log
events that is cheap enough to leave on for every CLI invocation
(budget: the same <2% guard as disabled tracing, enforced in
``benchmarks/test_obs_overhead.py``).  Old events are overwritten in
place — memory use is fixed at ``capacity`` slots forever.

Integration is a single hook: :func:`enable` installs the ring via
:func:`repro.obs.trace.set_flight`.  When only the flight recorder is
on, ``span()`` returns a falsy ``_FlightSpan`` that taps begin/end into
the ring; when a full recorder is *also* on, real :class:`Span` objects
tap the same ring from ``__enter__``/``__exit__`` — one source of
truth, no double-wrapping.  ``logging`` records on the ``repro.*``
hierarchy are mirrored into the ring by a handler (WARNING and up by
default), so the crash report shows what the library said last.

Two dump triggers, both producing the same crash-report JSON
(:meth:`FlightRecorder.crash_report`):

* **unhandled CLI exception** — ``repro.cli.main`` wraps dispatch and
  writes ``crash-*.json`` under ``$PERFLOW_CRASH_DIR`` (default
  ``.perflow/``) before re-raising;
* **SIGUSR2** — :func:`install_signal_dump` registers a handler for
  live hang diagnosis: ``kill -USR2 <pid>`` snapshots the ring, the
  per-thread active-span stacks, and the metrics registry without
  stopping the process.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import sys
import threading
import time
import traceback as _traceback
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs import trace as _trace

__all__ = [
    "FlightRecorder",
    "enable",
    "disable",
    "enabled",
    "get",
    "crash_dir",
    "install_signal_dump",
    "uninstall_signal_dump",
    "ENV_CRASH_DIR",
    "DEFAULT_CAPACITY",
]

#: Environment override for where crash reports land.
ENV_CRASH_DIR = "PERFLOW_CRASH_DIR"

#: Default ring capacity (events, not spans — a span is two events).
DEFAULT_CAPACITY = 2048

#: Event kinds stored in the ring.
KIND_BEGIN = "B"
KIND_END = "E"
KIND_LOG = "L"

# One ring slot: (seq, wall_time, mono_time, tid, kind, name, detail).
# ``wall_time`` (time.time) orients the reader in calendar time;
# ``mono_time`` (time.perf_counter) is what durations are derived from,
# so an NTP step mid-run cannot produce negative or wildly wrong span
# durations in a crash report.
_Event = Tuple[int, float, float, int, str, str, Optional[str]]


class FlightRecorder:
    """A fixed-capacity ring of recent span begin/end and log events.

    All mutation happens under one lock: a slot write is a tuple store
    plus a counter increment, and the per-thread active-span stacks are
    maintained in the same critical section so a crash report's
    "active spans" view is consistent with its event tail.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: List[Optional[_Event]] = [None] * capacity
        self._n = 0  # total events ever written
        self._stacks: Dict[int, List[str]] = {}
        self._lock = threading.Lock()

    # -- recording (called from repro.obs.trace span enter/exit) -----------
    def begin(self, name: str, tid: int) -> None:
        with self._lock:
            self._ring[self._n % self.capacity] = (
                self._n,
                time.time(),
                time.perf_counter(),
                tid,
                KIND_BEGIN,
                name,
                None,
            )
            self._n += 1
            self._stacks.setdefault(tid, []).append(name)

    def end(self, name: str, tid: int) -> None:
        with self._lock:
            self._ring[self._n % self.capacity] = (
                self._n,
                time.time(),
                time.perf_counter(),
                tid,
                KIND_END,
                name,
                None,
            )
            self._n += 1
            stack = self._stacks.get(tid)
            if stack:
                if stack[-1] == name:
                    stack.pop()
                elif name in stack:  # unbalanced exit; drop the match
                    stack.remove(name)

    def log(self, name: str, message: str, tid: Optional[int] = None) -> None:
        """Record a log line (logger name + rendered message)."""
        if tid is None:
            tid = threading.get_ident()
        with self._lock:
            self._ring[self._n % self.capacity] = (
                self._n,
                time.time(),
                time.perf_counter(),
                tid,
                KIND_LOG,
                name,
                message,
            )
            self._n += 1

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return min(self._n, self.capacity)

    @property
    def total(self) -> int:
        """Events ever written (>= len() once the ring has wrapped)."""
        return self._n

    @property
    def dropped(self) -> int:
        """Events overwritten by ring wrap-around."""
        return max(0, self._n - self.capacity)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first, as JSON-safe dicts.

        END events whose matching BEGIN is still in the retained window
        additionally carry ``dur`` — seconds derived from the monotonic
        stamps (never the wall clock) and clamped at >= 0, so a stepped
        system clock cannot yield a negative span duration.
        """
        with self._lock:
            n = self._n
            if n <= self.capacity:
                raw = [e for e in self._ring[:n]]
            else:
                cut = n % self.capacity
                raw = self._ring[cut:] + self._ring[:cut]
        out: List[Dict[str, Any]] = []
        # Per-thread stacks of (name, mono) for BEGINs seen in-window.
        open_spans: Dict[int, List[Tuple[str, float]]] = {}
        for ev in raw:
            if ev is None:  # pragma: no cover - defensive
                continue
            seq, t, mono, tid, kind, name, detail = ev
            rec: Dict[str, Any] = {
                "seq": seq,
                "t": round(t, 6),
                "mono": round(mono, 6),
                "tid": tid,
                "kind": kind,
                "name": name,
            }
            if kind == KIND_BEGIN:
                open_spans.setdefault(tid, []).append((name, mono))
            elif kind == KIND_END:
                stack = open_spans.get(tid)
                if stack and stack[-1][0] == name:
                    rec["dur"] = round(max(0.0, mono - stack.pop()[1]), 6)
                elif stack and any(n_ == name for n_, _ in stack):
                    # unbalanced exit: match the innermost same-named begin
                    for i in range(len(stack) - 1, -1, -1):
                        if stack[i][0] == name:
                            rec["dur"] = round(max(0.0, mono - stack[i][1]), 6)
                            del stack[i]
                            break
            if detail is not None:
                rec["detail"] = detail
            out.append(rec)
        return out

    def active_spans(self) -> Dict[str, List[str]]:
        """Open span names per thread id (outermost first)."""
        with self._lock:
            return {
                str(tid): list(stack)
                for tid, stack in sorted(self._stacks.items())
                if stack
            }

    # -- crash reporting -----------------------------------------------------
    def crash_report(
        self, reason: str, exc: Optional[BaseException] = None
    ) -> Dict[str, Any]:
        """The post-mortem document: ring tail + active spans + metrics."""
        import platform

        from repro.obs.metrics import registry as _metrics_registry

        exc_doc: Optional[Dict[str, Any]] = None
        if exc is not None:
            exc_doc = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(
                    _traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
            }
        return {
            "schema": 1,
            "reason": reason,
            "time": time.time(),
            "pid": os.getpid(),
            "argv": list(sys.argv),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "exception": exc_doc,
            "capacity": self.capacity,
            "events_total": self.total,
            "events_dropped": self.dropped,
            "events": self.events(),
            "active_spans": self.active_spans(),
            "metrics": _metrics_registry.to_dict(),
        }

    def dump_crash_report(
        self,
        directory: Union[str, "os.PathLike[str]", None] = None,
        reason: str = "crash",
        exc: Optional[BaseException] = None,
    ) -> str:
        """Write the crash report atomically; returns the file path.

        ``directory`` defaults to :func:`crash_dir`.  The write goes
        through a temp file + ``os.replace`` so a reader never sees a
        torn report, and the filename embeds pid + nanosecond time so
        concurrent processes never collide.
        """
        root = os.fspath(directory) if directory is not None else crash_dir()
        os.makedirs(root, exist_ok=True)
        fname = f"crash-{reason}-{os.getpid()}-{time.time_ns()}.json"
        path = os.path.join(root, fname)
        doc = json.dumps(self.crash_report(reason, exc), indent=1, sort_keys=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(doc)
        os.replace(tmp, path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlightRecorder(capacity={self.capacity}, total={self._n})"


class _FlightLogHandler(logging.Handler):
    """Mirrors ``repro.*`` log records into the flight ring."""

    def __init__(self, flight: FlightRecorder, level: int = logging.WARNING):
        super().__init__(level=level)
        self._flight = flight

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self._flight.log(record.name, record.getMessage())
        except Exception:  # pragma: no cover - never break the caller
            pass


_log_handler: Optional[_FlightLogHandler] = None
_prev_sigusr2: Any = None
_signal_installed = False


def crash_dir() -> str:
    """Where crash reports go: ``$PERFLOW_CRASH_DIR`` or ``.perflow``."""
    return os.environ.get(ENV_CRASH_DIR) or ".perflow"


def enable(
    capacity: int = DEFAULT_CAPACITY,
    logs: bool = True,
    log_level: int = logging.WARNING,
) -> FlightRecorder:
    """Install (and return) a flight recorder.

    ``logs=True`` also attaches a handler on the ``repro`` logger so
    warnings/errors land in the ring alongside span events.  Re-enabling
    replaces any existing ring (the old one stops receiving events).
    """
    global _log_handler
    fl = FlightRecorder(capacity)
    if logs:
        handler = _FlightLogHandler(fl, level=log_level)
        logger = logging.getLogger("repro")
        if _log_handler is not None:
            logger.removeHandler(_log_handler)
        logger.addHandler(handler)
        _log_handler = handler
    _trace.set_flight(fl)
    return fl


def disable() -> Optional[FlightRecorder]:
    """Remove the flight recorder (and its log handler); returns it."""
    global _log_handler
    fl = _trace.get_flight()
    _trace.set_flight(None)
    if _log_handler is not None:
        logging.getLogger("repro").removeHandler(_log_handler)
        _log_handler = None
    uninstall_signal_dump()
    return fl


def enabled() -> bool:
    return _trace.get_flight() is not None


def get() -> Optional[FlightRecorder]:
    """The installed flight recorder, or None."""
    return _trace.get_flight()


def install_signal_dump(
    directory: Union[str, "os.PathLike[str]", None] = None,
) -> bool:
    """Dump a crash report on SIGUSR2 (live hang diagnosis).

    Returns True when the handler was installed; False on platforms
    without SIGUSR2 (Windows) or off the main thread, where Python
    forbids ``signal.signal``.  The previous handler is restored by
    :func:`uninstall_signal_dump` (called from :func:`disable`).
    """
    global _prev_sigusr2, _signal_installed
    if not hasattr(signal, "SIGUSR2"):
        return False

    def _on_sigusr2(signum: int, frame: Any) -> None:
        fl = _trace.get_flight()
        if fl is not None:
            try:
                fl.dump_crash_report(directory, reason="sigusr2")
            except OSError:  # pragma: no cover - unwritable dump dir
                pass

    try:
        _prev_sigusr2 = signal.signal(signal.SIGUSR2, _on_sigusr2)
    except ValueError:  # not the main thread
        return False
    _signal_installed = True
    return True


def uninstall_signal_dump() -> None:
    """Restore the pre-install SIGUSR2 disposition (no-op otherwise)."""
    global _prev_sigusr2, _signal_installed
    if not _signal_installed:
        return
    try:
        signal.signal(
            signal.SIGUSR2,
            _prev_sigusr2 if _prev_sigusr2 is not None else signal.SIG_DFL,
        )
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    _prev_sigusr2 = None
    _signal_installed = False

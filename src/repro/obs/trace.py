"""Span tracing: record *where PerFlow's own time goes*.

A **span** is one timed region of PerFlow's execution — a pipeline
node, a parallel-view construction phase, a simulated-run stage — with
a name, a category, a monotonic start/end, the recording thread, and
free-form ``args`` (set cardinalities, fixpoint iteration counts, byte
counts).  Spans nest: the recorder keeps a per-thread stack, so a
``node:hotspot`` span recorded while ``pipeline:lammps-loop`` is open
becomes its child.

The module-level :func:`span` helper is what library code calls.  It is
engineered so that **disabled tracing is effectively free**: when no
recorder is installed it performs one global read, one identity check,
and returns a shared no-op span object — no allocation, no clock read,
no kwargs dict is ever inspected.  The overhead guard in
``benchmarks/test_obs_overhead.py`` holds this path to <2% of the
LAMMPS parallel-view paradigm.

Export formats:

* :meth:`SpanRecorder.to_chrome_trace` — the Chrome trace-event JSON
  format (``{"traceEvents": [{"ph": "X", "ts": …, "dur": …}, …]}``),
  loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Timestamps are microseconds relative to the
  first recorded span.
* :meth:`SpanRecorder.to_tree` — an indented console tree with
  durations and args, for quick terminal inspection.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "SpanRecorder",
    "NullRecorder",
    "NULL_SPAN",
    "span",
    "timed_span",
    "traced",
    "current_span",
    "enable",
    "disable",
    "enabled",
    "get_recorder",
    "set_recorder",
    "scoped_recorder",
    "get_flight",
    "set_flight",
]


class Span:
    """One recorded region.  Created by :meth:`SpanRecorder.span`.

    Use as a context manager; inside the block, :meth:`set` attaches
    args (``sp.set(out_size=len(result))``).  ``duration`` is valid
    after exit (and live-reads while open).
    """

    __slots__ = (
        "name",
        "category",
        "args",
        "t_start",
        "t_end",
        "tid",
        "children",
        "_recorder",
        "_parent",
    )

    def __init__(
        self,
        recorder: Optional["SpanRecorder"],
        name: str,
        category: Optional[str],
        args: Optional[Dict[str, Any]],
        parent: Optional["Span"] = None,
    ):
        self.name = name
        self.category = category
        self.args: Dict[str, Any] = dict(args) if args else {}
        self.t_start = 0.0
        self.t_end = 0.0
        self.tid = 0
        self.children: List["Span"] = []
        self._recorder = recorder
        self._parent = parent

    # -- annotation --------------------------------------------------------
    def set(self, **args: Any) -> "Span":
        """Attach/overwrite args on the span (chainable)."""
        self.args.update(args)
        return self

    def __setitem__(self, key: str, value: Any) -> None:
        self.args[key] = value

    def __bool__(self) -> bool:
        """True — real spans are truthy, the null span is falsy, so hot
        code can guard expensive annotation with ``if sp: sp.set(…)``."""
        return True

    @property
    def duration(self) -> float:
        """Elapsed seconds (to *now* while the span is still open)."""
        end = self.t_end if self.t_end else time.perf_counter()
        return end - self.t_start if self.t_start else 0.0

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        if self._recorder is not None:
            self._recorder._push(self)
        self.tid = threading.get_ident()
        fl = _flight
        if fl is not None:
            fl.begin(self.name, self.tid)
        self.t_start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.t_end = time.perf_counter()
        fl = _flight
        if fl is not None:
            fl.end(self.name, self.tid)
        if self._recorder is not None:
            self._recorder._pop(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, args={self.args})"


class _NullSpan:
    """Shared, falsy, no-op stand-in used when tracing is disabled.

    All methods are no-ops; a single instance is reused for every
    disabled ``span()`` call, so the disabled path never allocates.
    """

    __slots__ = ()

    def set(self, **args: Any) -> "_NullSpan":
        return self

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    @property
    def duration(self) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


#: The singleton no-op span returned while tracing is disabled.
NULL_SPAN = _NullSpan()


class _FlightSpan:
    """Falsy span recorded only into the flight-recorder ring.

    Returned by :func:`span` when no full recorder is installed but a
    flight recorder (:mod:`repro.obs.flight`) is — the always-on path.
    Deliberately minimal: no args dict, no parent bookkeeping, no
    per-span clock reads beyond what the ring itself stamps, so the
    always-on overhead stays inside the <2% benchmark guard.
    """

    __slots__ = ("name", "_fl", "_tid")

    def __init__(self, name: str, fl: Any):
        self.name = name
        self._fl = fl

    def set(self, **args: Any) -> "_FlightSpan":
        return self

    def __setitem__(self, key: str, value: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    @property
    def duration(self) -> float:
        return 0.0

    def __enter__(self) -> "_FlightSpan":
        self._tid = threading.get_ident()
        self._fl.begin(self.name, self._tid)
        return self

    def __exit__(self, *exc: Any) -> None:
        self._fl.end(self.name, self._tid)


class _TimedSpan(Span):
    """A span that times itself but records nowhere.

    Returned by :func:`timed_span` when tracing is disabled, for call
    sites that *consume* the measured duration (e.g. static analysis
    reporting its own cost) rather than merely contributing it to a
    trace.
    """

    __slots__ = ()

    def __init__(self, name: str):
        super().__init__(None, name, None, None)


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: List[Span] = []


class SpanRecorder:
    """Accumulates spans with per-thread nesting.

    Thread-safe: each thread nests into its own stack; the flat
    ``spans`` list (start order) and every ``children`` mutation are
    guarded by one lock.  Spans started on worker threads would
    normally become per-thread roots; callers that fan work out (the
    wavefront scheduler) pass an explicit ``parent=`` so the worker's
    span still nests under the submitting thread's open span.
    """

    def __init__(self) -> None:
        #: All recorded spans in start order (across threads).
        self.spans: List[Span] = []
        #: Spans with no parent (per-thread roots), in start order.
        self.roots: List[Span] = []
        self._local = _ThreadState()
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    def span(
        self,
        name: str,
        category: Optional[str] = None,
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        """Create a span attached to this recorder (enter to start it).

        ``parent`` overrides the thread-local nesting: the span becomes
        that span's child regardless of which thread enters it (used
        for cross-thread parenting of scheduler worker spans).
        """
        return Span(self, name, category, args, parent=parent)

    def _push(self, sp: Span) -> None:
        stack = self._local.stack
        with self._lock:
            self.spans.append(sp)
            if sp._parent is not None:
                sp._parent.children.append(sp)
            elif stack:
                stack[-1].children.append(sp)
            else:
                self.roots.append(sp)
        stack.append(sp)

    def _pop(self, sp: Span) -> None:
        stack = self._local.stack
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:  # pragma: no cover - unbalanced exit
            stack.remove(sp)

    def current(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._local.stack
        return stack[-1] if stack else None

    def record_completed(
        self,
        name: str,
        category: Optional[str] = None,
        parent: Optional[Span] = None,
        args: Optional[Dict[str, Any]] = None,
        t_start: float = 0.0,
        t_end: float = 0.0,
        tid: int = 0,
    ) -> Span:
        """Insert an already-finished span (timestamps supplied).

        The merge path for work measured outside this recorder — the
        process backend replays each worker's span batch into the
        parent trace with this, parenting the batch under the pipeline
        span and tagging ``tid`` with the worker's pid.  ``t_start`` /
        ``t_end`` are ``perf_counter`` readings; on platforms where
        that clock is system-wide (``CLOCK_MONOTONIC`` on Linux) they
        line up with the parent's own spans in the exported trace.
        Never touches the thread-local nesting stack, so it is safe to
        call while other spans are open.
        """
        sp = Span(None, name, category, args, parent=parent)
        sp.t_start = t_start
        sp.t_end = t_end
        sp.tid = tid
        with self._lock:
            self.spans.append(sp)
            if parent is not None:
                parent.children.append(sp)
            else:
                self.roots.append(sp)
        return sp

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str) -> List[Span]:
        """All spans with exactly this name, in start order."""
        return [s for s in self.spans if s.name == name]

    def iter_spans(self) -> Iterator[Span]:
        return iter(self.spans)

    # -- export ------------------------------------------------------------
    def to_chrome_trace(
        self,
        process_name: str = "repro",
        metrics: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The Chrome trace-event document (Perfetto-loadable).

        One complete event (``"ph": "X"``) per span, timestamps in
        microseconds relative to the earliest span start, plus process
        and thread name metadata events.  Thread ids are compacted to
        small integers in first-seen order.

        The current metrics snapshot rides along as one extra metadata
        event (``"name": "perflow_metrics"``) so a single Perfetto file
        carries both signals.  ``metrics`` overrides the snapshot (a
        :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` document);
        by default the process-global registry is used.  The event is
        omitted entirely when the snapshot is empty, and the export is
        byte-stable for identical spans + snapshot (metric names are
        sorted, ordering is deterministic).
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        t0 = min((s.t_start for s in self.spans), default=0.0)
        tid_map: Dict[int, int] = {}
        for s in self.spans:
            tid = tid_map.setdefault(s.tid, len(tid_map))
            event: Dict[str, Any] = {
                "name": s.name,
                "cat": s.category or "repro",
                "ph": "X",
                "ts": round((s.t_start - t0) * 1e6, 3),
                "dur": round((s.t_end - s.t_start) * 1e6, 3),
                "pid": pid,
                "tid": tid,
            }
            if s.args:
                event["args"] = _json_args(s.args)
            events.append(event)
        for ident, tid in tid_map.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"thread-{tid} ({ident})"},
                }
            )
        snapshot = metrics
        if snapshot is None:
            from repro.obs.metrics import registry as _registry

            snapshot = _registry.to_dict()
        if any(snapshot.get(k) for k in ("counters", "gauges", "histograms")):
            events.append(
                {
                    "name": "perflow_metrics",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"metrics": snapshot},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    @classmethod
    def from_chrome_trace(cls, doc: Dict[str, Any]) -> "SpanRecorder":
        """Rebuild a recorder from a Chrome trace-event document.

        The lossy inverse of :meth:`to_chrome_trace`: timestamps come
        back as seconds re-based at the export origin, thread ids are
        the compacted export ids, and nesting is recovered by interval
        containment per ``(pid, tid)`` track — the same reconstruction
        :mod:`repro.obs.selfpag` uses.  This is what lets
        ``repro obs analyze --tree trace.json`` render a saved trace.
        """
        rec = cls()
        by_track: Dict[Any, List[Dict[str, Any]]] = {}
        for ev in doc.get("traceEvents", []):
            if ev.get("ph") == "X":
                by_track.setdefault((ev.get("pid"), ev.get("tid")), []).append(ev)
        for track in sorted(by_track, key=repr):
            # Sort by (start, -duration): an enclosing span precedes the
            # children it contains, so a stack of open spans rebuilds
            # the nesting.
            evs = sorted(
                by_track[track],
                key=lambda e: (float(e.get("ts", 0.0)), -float(e.get("dur", 0.0))),
            )
            stack: List[Span] = []
            for ev in evs:
                t0 = float(ev.get("ts", 0.0)) / 1e6
                dur = float(ev.get("dur", 0.0)) / 1e6
                sp = Span(None, str(ev.get("name", "?")), ev.get("cat"), ev.get("args"))
                sp.t_start = t0
                sp.t_end = t0 + dur
                sp.tid = track[1] if isinstance(track[1], int) else 0
                while stack and sp.t_start >= stack[-1].t_end - 1e-12:
                    stack.pop()
                rec.spans.append(sp)
                if stack:
                    sp._parent = stack[-1]
                    stack[-1].children.append(sp)
                else:
                    rec.roots.append(sp)
                stack.append(sp)
        rec.spans.sort(key=lambda s: s.t_start)
        rec.roots.sort(key=lambda s: s.t_start)
        return rec

    def save(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write the Chrome trace-event JSON; returns bytes written."""
        doc = json.dumps(self.to_chrome_trace(), indent=1)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(doc)
        return len(doc)

    def to_tree(self, min_ms: float = 0.0) -> str:
        """Indented console tree: durations, names, args.

        ``min_ms`` hides spans shorter than the threshold (their
        children are hidden with them).
        """
        lines: List[str] = []

        def render(sp: Span, depth: int) -> None:
            ms = (sp.t_end - sp.t_start) * 1e3
            if ms < min_ms:
                return
            args = ""
            if sp.args:
                args = "  " + " ".join(f"{k}={v}" for k, v in sp.args.items())
            lines.append(f"{'  ' * depth}{ms:9.3f} ms  {sp.name}{args}")
            for child in sp.children:
                render(child, depth + 1)

        for root in self.roots:
            render(root, 0)
        return "\n".join(lines)


def _json_args(args: Dict[str, Any]) -> Dict[str, Any]:
    """Args coerced to JSON-safe values (repr() for anything exotic)."""
    out: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool, type(None))):
            out[key] = value
        else:
            out[key] = repr(value)
    return out


class NullRecorder:
    """The disabled-mode recorder: every span is :data:`NULL_SPAN`."""

    def span(
        self,
        name: str,
        category: Optional[str] = None,
        parent: Optional[Span] = None,
        **args: Any,
    ) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


_NULL_RECORDER = NullRecorder()
_recorder: Union[SpanRecorder, NullRecorder] = _NULL_RECORDER

#: The installed flight recorder (:class:`repro.obs.flight.FlightRecorder`)
#: or None.  It lives here — not in the flight module — so the
#: :func:`span` fast path can consult it with one module-global read,
#: and so :class:`Span` can tap begin/end events into the ring even
#: when a full recorder is also active (one source of truth, no
#: double-wrapping).
_flight: Optional[Any] = None


def set_flight(flight: Optional[Any]) -> None:
    """Install (or with None, remove) the process flight recorder.

    Called by :func:`repro.obs.flight.enable` / ``disable``; not meant
    for direct use.
    """
    global _flight
    _flight = flight


def get_flight() -> Optional[Any]:
    return _flight


# ----------------------------------------------------------------------
# module-level API (what library code calls)
# ----------------------------------------------------------------------
def span(
    name: str,
    category: Optional[str] = None,
    parent: Optional[Span] = None,
    **args: Any,
):
    """A span on the installed recorder — or the shared no-op when
    tracing is disabled.  This is the instrumentation entry point::

        with obs.span("pv.flows", category="pag", flows=n) as sp:
            ...
            sp.set(edges=pv.num_edges)

    ``parent`` (a :class:`Span`) pins the new span under an explicit
    parent across threads; passing the falsy :data:`NULL_SPAN` or
    ``None`` keeps the default per-thread nesting.
    """
    rec = _recorder
    if rec is _NULL_RECORDER:
        fl = _flight
        if fl is None:
            return NULL_SPAN
        return _FlightSpan(name, fl)
    if parent is not None and not isinstance(parent, Span):
        parent = None  # NULL_SPAN / foreign objects: thread-local nesting
    return rec.span(name, category, parent=parent, **args)


def timed_span(name: str, category: Optional[str] = None, **args: Any) -> Span:
    """Like :func:`span`, but *always* measures wall time.

    For call sites that consume ``sp.duration`` themselves (e.g.
    ``static_analysis`` reporting its measured cost): when tracing is
    enabled the span lands in the trace as usual; when disabled a
    fresh unrecorded span still times the block.
    """
    rec = _recorder
    if rec is _NULL_RECORDER:
        return _TimedSpan(name)
    return rec.span(name, category, **args)


def current_span() -> Union[Span, _NullSpan, None]:
    """The innermost open span on this thread (None/disabled-safe)."""
    return _recorder.current()


def get_recorder() -> Union[SpanRecorder, NullRecorder]:
    return _recorder


def set_recorder(recorder: Union[SpanRecorder, NullRecorder, None]) -> None:
    """Install ``recorder`` (None restores the disabled null recorder)."""
    global _recorder
    _recorder = recorder if recorder is not None else _NULL_RECORDER


def enable(recorder: Optional[SpanRecorder] = None) -> SpanRecorder:
    """Install (and return) a recorder; a fresh one if none is given."""
    rec = recorder if recorder is not None else SpanRecorder()
    set_recorder(rec)
    return rec


def disable() -> Union[SpanRecorder, NullRecorder]:
    """Restore the null recorder; returns the previously installed one."""
    prev = _recorder
    set_recorder(None)
    return prev


def enabled() -> bool:
    return _recorder is not _NULL_RECORDER


class scoped_recorder:
    """Context manager: install a fresh recorder, restore on exit.

    ::

        with obs.scoped_recorder() as rec:
            run_workload()
        rec.save("trace.json")
    """

    def __init__(self, recorder: Optional[SpanRecorder] = None):
        self.recorder = recorder if recorder is not None else SpanRecorder()
        self._prev: Union[SpanRecorder, NullRecorder, None] = None

    def __enter__(self) -> SpanRecorder:
        self._prev = _recorder
        set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc: Any) -> None:
        set_recorder(self._prev)


def traced(
    name_or_fn: Union[str, Callable, None] = None,
    category: Optional[str] = None,
) -> Callable:
    """Decorator form: wrap every call of ``fn`` in a span.

    ``@traced``, ``@traced("custom.name")`` and
    ``@traced(category="runtime")`` all work.  The disabled-mode cost
    is one global read plus a no-op context manager.
    """

    def decorate(fn: Callable, span_name: Optional[str] = None) -> Callable:
        label = span_name or getattr(fn, "__qualname__", fn.__name__)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            rec = _recorder
            if rec is _NULL_RECORDER:
                fl = _flight
                if fl is None:
                    return fn(*args, **kwargs)
                with _FlightSpan(label, fl):
                    return fn(*args, **kwargs)
            with rec.span(label, category):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)

"""The run ledger: persistent per-run telemetry with regression detection.

Spans and metrics (:mod:`repro.obs.trace` / :mod:`repro.obs.metrics`)
die with the process, so "did this pipeline get slower than last week?"
was unanswerable.  The ledger fixes that: every ``run`` / ``paradigm`` /
``lint`` CLI invocation appends one structured **run record** — run id,
command + argv, PAG fingerprint(s), per-node span rollups with in/out
sizes and cache hit/miss attribution, a metrics snapshot, wall/CPU
time, interpreter + platform info — as one JSON line under
``.perflow/ledger/`` (override: ``$PERFLOW_LEDGER_DIR``; disable:
``--no-ledger`` or ``PERFLOW_LEDGER=0``).

Storage discipline mirrors the disk cache (:mod:`repro.cache.store`):

* **atomic appends** — a record is a single ``os.write`` to an
  ``O_APPEND`` fd, so concurrent processes interleave whole lines, and
  a torn line (power loss) is skipped on read, never fatal;
* **bounded size** — one JSONL file per day; when the directory
  exceeds ``max_bytes`` the oldest files (mtime-LRU) are evicted,
  never the newest.

Analysis happens over accumulated records:

* :func:`diff_records` — per-node duration deltas between two runs
  (``repro obs diff RUN_A RUN_B``);
* :func:`find_regressions` — noise-aware detection: the baseline is
  the median per-node duration over the last N runs with the same
  **identity** (command + paradigm + program + params) *and* the same
  PAG fingerprints, and a node regresses only when it exceeds *all* of
  a relative threshold over the median, a MAD band (median absolute
  deviation × 1.4826 ≈ one robust sigma), and an absolute floor —
  three gates so jitter on sub-millisecond nodes never false-positives;
* :meth:`Ledger.cost_model` — median measured cost per node name,
  feedable straight into ``PerFlowGraph.run(cost_model=…)`` where the
  wavefront scheduler orders the ready heap by it (the first concrete
  step of the pipeline-optimizer roadmap item).

PAG fingerprints reach the record through a module-level collector:
the CLI wraps dispatch in :func:`collect_fingerprints`, and
:meth:`PerFlow.run <repro.dataflow.api.PerFlow.run>` calls
:func:`note_pag` on every PAG it builds — a no-op (one global read)
outside a collection scope.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ENV_LEDGER",
    "ENV_LEDGER_DIR",
    "DEFAULT_DIR",
    "Ledger",
    "CostModel",
    "resolve_ledger",
    "build_run_record",
    "rollup_spans",
    "diff_records",
    "find_regressions",
    "collect_fingerprints",
    "note_pag",
]

#: ``PERFLOW_LEDGER=0`` disables ledger writes process-wide.
ENV_LEDGER = "PERFLOW_LEDGER"
#: Where run records live (default ``.perflow/ledger``).
ENV_LEDGER_DIR = "PERFLOW_LEDGER_DIR"

DEFAULT_DIR = os.path.join(".perflow", "ledger")
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

#: Run-record schema version (bump on breaking shape changes).
SCHEMA = 1

#: Rollup groups kept per record (largest total_s first beyond this cap).
MAX_ROLLUP_GROUPS = 200

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def resolve_ledger(
    flag: Optional[bool] = None, directory: Optional[str] = None
) -> Optional[str]:
    """Resolve CLI/env configuration to a ledger directory, or None.

    ``flag`` (an explicit ``--ledger`` / ``--no-ledger``) wins; then
    ``$PERFLOW_LEDGER`` (garbage raises ``ValueError`` — a typo must
    not silently flip persistence); the ledger is **on by default**.
    ``directory`` falls back to ``$PERFLOW_LEDGER_DIR``, then
    ``.perflow/ledger``.
    """
    enabled = flag
    if enabled is None:
        raw = os.environ.get(ENV_LEDGER, "").strip().lower()
        if not raw:
            enabled = True
        elif raw in _TRUE:
            enabled = True
        elif raw in _FALSE:
            enabled = False
        else:
            raise ValueError(f"{ENV_LEDGER} must be a boolean flag, got {raw!r}")
    if not enabled:
        return None
    return directory or os.environ.get(ENV_LEDGER_DIR) or DEFAULT_DIR


# ----------------------------------------------------------------------
# PAG fingerprint collection (CLI dispatch scope)
# ----------------------------------------------------------------------
_collector: Optional[List[str]] = None


@contextmanager
def collect_fingerprints() -> Iterator[List[str]]:
    """Collect the fingerprints of every PAG built inside the scope."""
    global _collector
    prev = _collector
    collected: List[str] = []
    _collector = collected
    try:
        yield collected
    finally:
        _collector = prev


def note_pag(pag: Any) -> None:
    """Report a freshly built PAG to the active collection scope.

    One global read when no scope is active; fingerprinting failures
    are swallowed — telemetry must never break an analysis.
    """
    col = _collector
    if col is None:
        return
    try:
        fp = pag.fingerprint()
    except Exception:
        return
    if fp not in col:
        col.append(fp)


# ----------------------------------------------------------------------
# record construction
# ----------------------------------------------------------------------
def _new_run_id() -> str:
    return (
        time.strftime("%Y%m%dT%H%M%S")
        + f"-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    )


def rollup_spans(recorder: Any) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Aggregate a recorder's spans into ``(nodes, others)`` rollups.

    Spans are grouped by ``(name, category)``; each group carries
    count / total / min / max seconds.  ``node:*`` spans — the pipeline
    units the diff and regression machinery operates on — additionally
    carry the last seen ``in_size`` / ``out_size`` and cache hit/miss
    counts (from the ``cache_hit`` span tag), and are returned
    separately with the ``node:`` prefix stripped.  Both lists sort by
    descending total time; the non-node list is capped at
    :data:`MAX_ROLLUP_GROUPS`.
    """
    groups: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for sp in recorder.spans:
        dur = (sp.t_end - sp.t_start) if sp.t_end else 0.0
        key = (sp.name, sp.category or "")
        g = groups.get(key)
        if g is None:
            g = groups[key] = {
                "name": sp.name,
                "category": sp.category or "",
                "count": 0,
                "total_s": 0.0,
                "min_s": dur,
                "max_s": dur,
            }
        g["count"] += 1
        g["total_s"] += dur
        if dur < g["min_s"]:
            g["min_s"] = dur
        if dur > g["max_s"]:
            g["max_s"] = dur
        if sp.name.startswith("node:"):
            for size_key in ("in_size", "out_size"):
                size = sp.args.get(size_key)
                if isinstance(size, int):
                    g[size_key] = size
            hit = sp.args.get("cache_hit")
            if hit is True:
                g["cache_hits"] = g.get("cache_hits", 0) + 1
            elif hit is False:
                g["cache_misses"] = g.get("cache_misses", 0) + 1
    ordered = sorted(groups.values(), key=lambda g: (-g["total_s"], g["name"]))
    nodes: List[Dict[str, Any]] = []
    others: List[Dict[str, Any]] = []
    for g in ordered:
        g["total_s"] = round(g["total_s"], 9)
        g["min_s"] = round(g["min_s"], 9)
        g["max_s"] = round(g["max_s"], 9)
        if g["name"].startswith("node:"):
            g["name"] = g["name"][len("node:") :]
            nodes.append(g)
        elif len(others) < MAX_ROLLUP_GROUPS:
            others.append(g)
    return nodes, others


def run_identity(
    command: str,
    paradigm: Optional[str] = None,
    program: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
) -> str:
    """The baseline-matching key: what makes two runs "the same run"."""
    parts = [command, paradigm or "-", program or "-"]
    for key, value in sorted((params or {}).items()):
        parts.append(f"{key}={value}")
    return "|".join(parts)


def build_run_record(
    command: str,
    argv: Sequence[str],
    program: Optional[str] = None,
    paradigm: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
    recorder: Any = None,
    metrics: Any = None,
    wall_s: float = 0.0,
    cpu_s: float = 0.0,
    exit_code: int = 0,
    pag_fingerprints: Sequence[str] = (),
) -> Dict[str, Any]:
    """Assemble one ledger record (JSON-safe dict).

    ``recorder`` is the command's :class:`~repro.obs.trace.SpanRecorder`
    (rollups come from it; None produces empty rollups); ``metrics`` a
    registry or its ``to_dict()`` snapshot (default: the process-global
    registry).
    """
    import platform

    if metrics is None:
        from repro.obs.metrics import registry as metrics

    snapshot = metrics.to_dict() if hasattr(metrics, "to_dict") else metrics
    nodes: List[Dict[str, Any]] = []
    others: List[Dict[str, Any]] = []
    if recorder is not None and getattr(recorder, "spans", None):
        nodes, others = rollup_spans(recorder)
    return {
        "schema": SCHEMA,
        "run_id": _new_run_id(),
        "time": round(time.time(), 3),
        "command": command,
        "argv": list(argv),
        "program": program,
        "paradigm": paradigm,
        "params": dict(params or {}),
        "identity": run_identity(command, paradigm, program, params),
        "pag_fingerprints": sorted(pag_fingerprints),
        "wall_s": round(wall_s, 6),
        "cpu_s": round(cpu_s, 6),
        "exit_code": exit_code,
        "nodes": nodes,
        "spans": others,
        "metrics": snapshot,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "pid": os.getpid(),
    }


# ----------------------------------------------------------------------
# the ledger store
# ----------------------------------------------------------------------
class CostModel:
    """Measured per-node costs (seconds), built from ledger history.

    Consumed by the wavefront scheduler's ready-heap ordering
    (``PerFlowGraph.run(cost_model=…)``).  Lookup accepts both plain
    node names and span-style ``node:<name>``.
    """

    def __init__(
        self, costs: Dict[str, float], samples: Optional[Dict[str, int]] = None
    ):
        self._costs = dict(costs)
        self._samples = dict(samples or {})

    def cost(self, name: str) -> float:
        """Median measured seconds for ``name`` (0.0 when unknown)."""
        if name.startswith("node:"):
            name = name[len("node:") :]
        return self._costs.get(name, 0.0)

    def samples(self, name: str) -> int:
        return self._samples.get(name, 0)

    def to_dict(self) -> Dict[str, float]:
        return dict(self._costs)

    def __len__(self) -> int:
        return len(self._costs)

    def __contains__(self, name: str) -> bool:
        return name in self._costs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CostModel({len(self._costs)} nodes)"


def _median(values: Sequence[float]) -> float:
    xs = sorted(values)
    n = len(xs)
    if not n:
        return 0.0
    mid = n // 2
    if n % 2:
        return xs[mid]
    return (xs[mid - 1] + xs[mid]) / 2.0


class Ledger:
    """Append/read run records under one directory (JSONL, size-capped)."""

    def __init__(self, root: str, max_bytes: int = DEFAULT_MAX_BYTES):
        self.root = os.fspath(root)
        self.max_bytes = max_bytes

    # -- writing -----------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> str:
        """Append one record; returns the file path written.

        A single ``os.write`` to an ``O_APPEND`` fd — concurrent
        writers (parallel CI shards) interleave whole lines.  Eviction
        runs after the append so the file just written is never the
        one evicted.
        """
        os.makedirs(self.root, exist_ok=True)
        day = time.strftime("%Y%m%d", time.localtime(record.get("time") or None))
        path = os.path.join(self.root, f"runs-{day}.jsonl")
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self._evict()
        return path

    def _files(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            os.path.join(self.root, name)
            for name in os.listdir(self.root)
            if name.startswith("runs-") and name.endswith(".jsonl")
        )

    def _evict(self) -> int:
        """Drop oldest files (mtime-LRU) until under ``max_bytes``.

        The newest file always survives, even if oversized on its own —
        losing the run that was just recorded would make the ledger
        useless exactly when it is busiest.
        """
        entries = []
        for path in self._files():
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return 0
        entries.sort()  # oldest first
        evicted = 0
        for mtime, size, path in entries[:-1]:  # never the newest
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        return evicted

    # -- reading -----------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """All retained records, oldest first; corrupt lines skipped."""
        out: List[Dict[str, Any]] = []
        for path in self._files():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            rec = json.loads(line)
                        except ValueError:
                            continue  # torn/corrupt line
                        if isinstance(rec, dict) and "run_id" in rec:
                            out.append(rec)
            except OSError:
                continue
        return out

    def history(self, limit: int = 20) -> List[Dict[str, Any]]:
        """The most recent ``limit`` records, newest first."""
        recs = self.records()
        recs.reverse()
        return recs[:limit] if limit else recs

    def get(self, run_id: str) -> Dict[str, Any]:
        """Look a record up by run id (unambiguous prefixes accepted)."""
        matches = [r for r in self.records() if r["run_id"].startswith(run_id)]
        if not matches:
            raise KeyError(f"no ledger record matches {run_id!r}")
        exact = [r for r in matches if r["run_id"] == run_id]
        if exact:
            return exact[-1]
        if len(matches) > 1:
            ids = ", ".join(r["run_id"] for r in matches[:5])
            raise KeyError(f"run id {run_id!r} is ambiguous: {ids}")
        return matches[0]

    def baseline_for(
        self, target: Dict[str, Any], last: int = 8
    ) -> List[Dict[str, Any]]:
        """The baseline runs for ``target``: same identity, same PAG
        fingerprints, strictly older, most recent ``last``."""
        fps = target.get("pag_fingerprints") or []
        out = [
            r
            for r in self.records()
            if r["run_id"] != target["run_id"]
            and r.get("identity") == target.get("identity")
            and (r.get("pag_fingerprints") or []) == fps
            and r.get("time", 0) <= target.get("time", float("inf"))
        ]
        return out[-last:] if last else out

    # -- derived models ----------------------------------------------------
    def cost_model(
        self, identity: Optional[str] = None, last: int = 50
    ) -> CostModel:
        """Median measured seconds per node name across recent records.

        ``identity`` restricts history to one pipeline identity;
        ``last`` bounds how many records contribute (newest win).
        """
        recs = self.records()
        if identity is not None:
            recs = [r for r in recs if r.get("identity") == identity]
        if last:
            recs = recs[-last:]
        per_node: Dict[str, List[float]] = {}
        for rec in recs:
            for node in rec.get("nodes") or []:
                count = node.get("count") or 1
                per_node.setdefault(node["name"], []).append(
                    node.get("total_s", 0.0) / count
                )
        costs = {name: _median(vals) for name, vals in per_node.items()}
        samples = {name: len(vals) for name, vals in per_node.items()}
        return CostModel(costs, samples)


# ----------------------------------------------------------------------
# analysis over records
# ----------------------------------------------------------------------
def _node_totals(record: Dict[str, Any]) -> Dict[str, float]:
    return {
        node["name"]: node.get("total_s", 0.0) for node in record.get("nodes") or []
    }


def diff_records(
    a: Dict[str, Any], b: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Per-node duration deltas between two records (``b`` minus ``a``).

    One row per node name in either run: ``a_s`` / ``b_s`` (None when
    the node is absent from that run), ``delta_s``, and ``pct`` (None
    when ``a`` has no measurable time).  Sorted by descending absolute
    delta.
    """
    ta, tb = _node_totals(a), _node_totals(b)
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(ta) | set(tb)):
        a_s = ta.get(name)
        b_s = tb.get(name)
        delta = (b_s or 0.0) - (a_s or 0.0)
        pct = (delta / a_s * 100.0) if a_s else None
        rows.append(
            {
                "name": name,
                "a_s": a_s,
                "b_s": b_s,
                "delta_s": round(delta, 9),
                "pct": round(pct, 2) if pct is not None else None,
            }
        )
    rows.sort(key=lambda r: (-abs(r["delta_s"]), r["name"]))
    return rows


#: MAD → sigma consistency constant (normal distribution).
MAD_SIGMA = 1.4826

#: Baseline runs required before regressions can be judged at all.
MIN_BASELINE_RUNS = 3


def find_regressions(
    target: Dict[str, Any],
    baseline: Sequence[Dict[str, Any]],
    threshold_pct: float = 25.0,
    mad_k: float = 3.0,
    min_delta_s: float = 0.001,
) -> List[Dict[str, Any]]:
    """Nodes in ``target`` slower than the noise-aware baseline.

    A node regresses only when its duration exceeds **all three** gates
    over the baseline median: ``median × (1 + threshold_pct/100)``
    (relative), ``median + mad_k × 1.4826 × MAD`` (robust scatter —
    runs with naturally noisy nodes widen their own band), and
    ``median + min_delta_s`` (absolute floor — microsecond jitter on
    trivial nodes can be 10× the median and still not matter).  Returns
    one finding per regressed node, slowest-relative first; empty when
    the baseline has fewer than :data:`MIN_BASELINE_RUNS` runs.
    """
    if len(baseline) < MIN_BASELINE_RUNS:
        return []
    per_node: Dict[str, List[float]] = {}
    for rec in baseline:
        for name, total in _node_totals(rec).items():
            per_node.setdefault(name, []).append(total)
    findings: List[Dict[str, Any]] = []
    for name, current in _node_totals(target).items():
        history = per_node.get(name)
        if not history or len(history) < MIN_BASELINE_RUNS:
            continue
        med = _median(history)
        mad = _median([abs(x - med) for x in history])
        gate = max(
            med * (1.0 + threshold_pct / 100.0),
            med + mad_k * MAD_SIGMA * mad,
            med + min_delta_s,
        )
        if current > gate:
            findings.append(
                {
                    "name": name,
                    "current_s": round(current, 9),
                    "median_s": round(med, 9),
                    "mad_s": round(mad, 9),
                    "gate_s": round(gate, 9),
                    "pct": round((current - med) / med * 100.0, 2)
                    if med > 0
                    else None,
                    "samples": len(history),
                }
            )
    findings.sort(
        key=lambda f: (-(f["pct"] if f["pct"] is not None else float("inf")), f["name"])
    )
    return findings

"""``repro.obs`` — observability for PerFlow's own execution.

PerFlow's premise is that performance analysis should be automated and
graph-shaped; this package applies that premise to PerFlow itself.
Three small, dependency-free layers:

* :mod:`repro.obs.trace` — span tracing.  Library code wraps its phases
  in ``with obs.span("pv.flows", flows=n):`` blocks; when tracing is
  disabled (the default) a span costs one global read and returns a
  shared no-op object, and when enabled the recorder captures a
  monotonic start/end, thread id, nesting, and free-form args.
  Recorders export Chrome trace-event JSON (loadable in Perfetto /
  ``chrome://tracing``) and a pretty console tree.
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and histograms with JSON export (columnar fast/slow path
  hits, serialized bytes, fixpoint non-convergence, …).
* :mod:`repro.obs.log` — the ``logging.getLogger("repro.…")`` hierarchy
  so library code never prints to stdout directly; the CLI's
  ``--verbose``/``-q`` flags configure it.

Closing the loop, :mod:`repro.obs.selfpag` converts a recorded trace
into a PAG so the existing hotspot/imbalance passes run on PerFlow's
own execution (``repro obs analyze trace.json``).

Typical use::

    from repro import obs

    rec = obs.enable()                  # install a recorder
    ...                                  # run any PerFlow workload
    obs.disable()
    rec.save("trace.json")              # Chrome trace-event JSON
    print(rec.to_tree())                # console tree
    obs.metrics.registry.save("metrics.json")
"""

from __future__ import annotations

from repro.obs import flight, ledger, log, metrics, trace
from repro.obs.flight import FlightRecorder
from repro.obs.ledger import CostModel, Ledger, build_run_record
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.trace import (
    NULL_SPAN,
    NullRecorder,
    Span,
    SpanRecorder,
    current_span,
    disable,
    enable,
    enabled,
    get_recorder,
    scoped_recorder,
    set_recorder,
    span,
    timed_span,
    traced,
)

__all__ = [
    "flight",
    "ledger",
    "log",
    "metrics",
    "trace",
    "FlightRecorder",
    "CostModel",
    "Ledger",
    "build_run_record",
    "configure_logging",
    "get_logger",
    "MetricsRegistry",
    "registry",
    "NULL_SPAN",
    "NullRecorder",
    "Span",
    "SpanRecorder",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "get_recorder",
    "scoped_recorder",
    "set_recorder",
    "span",
    "timed_span",
    "traced",
]

"""Self-analysis: PerFlow's own execution trace *as a PAG*.

The paper's thesis is that performance analysis = graph abstraction +
dataflow of passes.  This module closes the loop: a recorded span trace
(:mod:`repro.obs.trace`) becomes a Program Abstraction Graph whose
vertices are spans (with ``time`` = exclusive seconds) and whose edges
are the nesting structure — so the *existing* hotspot and imbalance
passes analyze PerFlow itself, with no special-cased reporting code.

Mapping:

=====================  ==================================================
span                   PAG vertex (``VertexLabel.FUNCTION``)
span name              vertex name
span category          ``debug-info`` property (what imbalance groups by,
                       together with the name)
exclusive time         ``time`` property (seconds; what hotspot sorts by)
inclusive time         ``total_time`` property
thread                 ``thread`` property (compact id), ``process`` = pid
span args              numeric/bool args copied as properties verbatim
nesting                ``INTRA_PROCEDURAL`` edge parent → child
=====================  ==================================================

Entry points: :func:`trace_to_pag` accepts a live
:class:`~repro.obs.trace.SpanRecorder`, a Chrome trace-event document
(dict), or a path to one on disk; :func:`analyze_trace` builds the PAG,
runs hotspot + imbalance, and renders a report (the engine behind
``repro obs analyze trace.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.trace import SpanRecorder, Span
from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet
from repro.pag.vertex import VertexLabel

__all__ = ["trace_to_pag", "analyze_trace", "SelfAnalysis"]

TraceSource = Union[str, Path, Dict[str, Any], SpanRecorder]


def _copy_args(props: Dict[str, Any], args: Dict[str, Any]) -> None:
    for key, value in args.items():
        if isinstance(value, (int, float, bool, str)):
            props[key] = value


def _pag_shell(name: str) -> PAG:
    return PAG(f"{name}/self-trace", {"view": "self-trace", "program": name})


def trace_to_pag(source: TraceSource, name: str = "repro-trace") -> PAG:
    """Build the self-PAG from a recorder, trace document, or file."""
    if isinstance(source, SpanRecorder):
        return _from_recorder(source, name)
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        return _from_chrome(doc, name)
    return _from_chrome(source, name)


def _from_recorder(rec: SpanRecorder, name: str) -> PAG:
    pag = _pag_shell(name)
    root = pag.add_vertex(VertexLabel.FUNCTION, "trace", properties={"time": 0.0})
    tid_map: Dict[int, int] = {}

    def add(sp: Span, parent_id: int) -> None:
        inclusive = max(sp.t_end - sp.t_start, 0.0)
        exclusive = inclusive - sum(
            max(c.t_end - c.t_start, 0.0) for c in sp.children
        )
        props: Dict[str, Any] = {
            "time": max(exclusive, 0.0),
            "total_time": inclusive,
            "thread": tid_map.setdefault(sp.tid, len(tid_map)),
            "process": 0,
            "debug-info": sp.category or "repro",
            "count": 1,
        }
        _copy_args(props, sp.args)
        v = pag.add_vertex(VertexLabel.FUNCTION, sp.name, properties=props)
        pag.add_edge(parent_id, v.id, EdgeLabel.INTRA_PROCEDURAL)
        for child in sp.children:
            add(child, v.id)

    for top in rec.roots:
        add(top, root.id)
    return pag


def _from_chrome(doc: Dict[str, Any], name: str) -> PAG:
    """Rebuild nesting from complete events by interval containment.

    Events are grouped per (pid, tid) and replayed in start order with
    an open-span stack — the inverse of what
    :meth:`SpanRecorder.to_chrome_trace` wrote, and equally valid for
    traces produced by other Chrome-trace emitters.
    """
    if isinstance(doc, list):
        events = doc
    elif "traceEvents" in doc:
        events = doc["traceEvents"]
    else:
        raise ValueError(
            "not a Chrome trace-event document (no 'traceEvents' key)"
        )
    spans = [
        ev
        for ev in events
        if ev.get("ph") == "X" and isinstance(ev.get("ts"), (int, float))
    ]
    pag = _pag_shell(name)
    root = pag.add_vertex(VertexLabel.FUNCTION, "trace", properties={"time": 0.0})

    by_unit: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    for ev in spans:
        by_unit.setdefault((ev.get("pid", 0), ev.get("tid", 0)), []).append(ev)

    pid_map: Dict[Any, int] = {}
    for (pid, tid), unit_events in sorted(by_unit.items(), key=lambda kv: str(kv[0])):
        process = pid_map.setdefault(pid, len(pid_map))
        # start ascending; ties: longer (outer) span first
        unit_events.sort(key=lambda ev: (ev["ts"], -float(ev.get("dur", 0.0))))
        # stack of (vertex_id, end_ts, children_dur_accumulator)
        stack: List[List[Any]] = []
        for ev in unit_events:
            ts = float(ev["ts"])
            dur = float(ev.get("dur", 0.0))
            while stack and ts >= stack[-1][1] - 1e-9:
                _finish(pag, stack.pop())
            props: Dict[str, Any] = {
                "total_time": dur / 1e6,
                "thread": tid,
                "process": process,
                "debug-info": ev.get("cat", "repro"),
                "count": 1,
            }
            _copy_args(props, ev.get("args") or {})
            v = pag.add_vertex(VertexLabel.FUNCTION, ev.get("name", "?"), properties=props)
            parent_id = stack[-1][0] if stack else root.id
            if stack:
                stack[-1][2] += dur
            pag.add_edge(parent_id, v.id, EdgeLabel.INTRA_PROCEDURAL)
            stack.append([v.id, ts + dur, 0.0])
        while stack:
            _finish(pag, stack.pop())
    return pag


def _finish(pag: PAG, frame: List[Any]) -> None:
    vid, _end, children_dur = frame
    v = pag.vertex(vid)
    v["time"] = max(float(v["total_time"]) - children_dur / 1e6, 0.0)


@dataclass
class SelfAnalysis:
    """Hotspot + imbalance results over a self-PAG."""

    pag: PAG
    hotspots: VertexSet
    imbalanced: VertexSet
    metrics: Optional[Dict[str, Any]] = None

    def to_text(self, top: int = 10) -> str:
        from repro.passes.report import Report

        report = Report(f"self-analysis of {self.pag.name}")
        report.add_set(
            self.hotspots,
            attrs=["name", "time", "total_time", "debug-info", "thread"],
            heading=f"hotspots (top {len(self.hotspots)} spans by exclusive time)",
        )
        report.add_set(
            self.imbalanced,
            attrs=["name", "time", "imbalance", "debug-info", "thread"],
            heading="imbalanced span groups (same name+category, uneven time)",
        )
        lines = [report.to_text()]
        lines.append(
            f"trace: {self.pag.num_vertices - 1} spans, "
            f"{self.pag.num_edges} nesting edges"
        )
        if self.metrics:
            lines.append("\n## metrics")
            for kind in ("counters", "gauges"):
                for mname, value in sorted(self.metrics.get(kind, {}).items()):
                    lines.append(f"  {mname:40} {value}")
            for mname, summ in sorted(self.metrics.get("histograms", {}).items()):
                lines.append(
                    f"  {mname:40} n={summ.get('count')} sum={summ.get('sum'):.6g} "
                    f"mean={summ.get('mean'):.6g}"
                )
        return "\n".join(lines)


def analyze_trace(
    source: TraceSource,
    top: int = 10,
    metrics_path: Optional[Union[str, Path]] = None,
    imbalance_threshold: float = 1.2,
) -> SelfAnalysis:
    """Run PerFlow's hotspot + imbalance passes on its own trace.

    This is the exact Listing-1 shape applied to the self-PAG: filter
    (drop the synthetic root) → hotspot detection → imbalance analysis.
    """
    # Imported here: repro.obs must stay importable without the pass
    # library (and without triggering the passes/dataflow import cycle).
    import repro.dataflow  # noqa: F401 - resolves the passes import cycle
    from repro.passes.hotspot import hotspot_detection
    from repro.passes.imbalance import imbalance_analysis

    pag = trace_to_pag(source) if not isinstance(source, PAG) else source
    V = pag.vs.select(label=VertexLabel.FUNCTION).filter(lambda v: v.id != 0)
    hot = hotspot_detection(V, metric="time", n=top)
    imb = imbalance_analysis(V, threshold=imbalance_threshold)
    metrics_doc: Optional[Dict[str, Any]] = None
    if metrics_path is not None:
        with open(metrics_path, "r", encoding="utf-8") as fh:
            metrics_doc = json.load(fh)
    return SelfAnalysis(pag=pag, hotspots=hot, imbalanced=imb, metrics=metrics_doc)

"""The ``repro.*`` logger hierarchy.

Library code never prints to stdout: diagnostics, progress notes, and
warnings go through ``logging.getLogger("repro.<module>")`` so hosts
(the CLI, notebooks, services embedding PerFlow) control verbosity and
destination.  :func:`get_logger` normalizes names, and
:func:`configure_logging` maps the CLI's ``-v``/``-q`` flags onto the
root ``repro`` logger with a single idempotent stderr handler.

Levels follow the usual convention:

* ``WARNING`` (default) — things the user should act on (fixpoint
  non-convergence, dropped events);
* ``INFO`` (``-v``) — one line per major phase (runs, view builds,
  saves);
* ``DEBUG`` (``-vv``) — per-node / per-pass detail.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["ROOT_NAME", "get_logger", "configure_logging"]

#: Root of the library's logger hierarchy.
ROOT_NAME = "repro"

#: Marker attribute identifying the handler this module installed.
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("pag.views")`` and ``get_logger("repro.pag.views")``
    both return ``logging.getLogger("repro.pag.views")``; the empty
    string returns the root ``repro`` logger.
    """
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def _level_for(verbosity: int, quiet: bool) -> int:
    if quiet:
        return logging.ERROR
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0,
    quiet: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Configure the ``repro`` root logger for console use.

    Installs exactly one stream handler (idempotent across calls —
    repeated configuration replaces it rather than stacking), directed
    at ``stream`` (default ``sys.stderr``, so piped stdout stays pure
    data), and sets the level from ``verbosity``/``quiet``:

    =========  ==========
    flags      level
    =========  ==========
    ``-q``     ERROR
    (none)     WARNING
    ``-v``     INFO
    ``-vv``    DEBUG
    =========  ==========
    """
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(_level_for(verbosity, quiet))
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    # Console hosts own the output; don't double-log via the root logger
    # unless an embedding application explicitly configured one.
    root.propagate = False
    return root

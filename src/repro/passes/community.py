"""Community-scoping pass.

§2.1 and §4.3.1 list community detection among the graph algorithms the
pass library builds on: on the parallel view, ranks/threads that
exchange heavily form communities, and scoping a follow-up analysis to
one community keeps its pair-enumeration passes (causal analysis) and
pattern searches (contention) small.

The pass projects the parallel view onto its cross edges
(inter-process + inter-thread), weights them by communication volume or
waiting time, runs deterministic label propagation, and returns the
input set partitioned by community, most-afflicted community first.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dataflow.signatures import SetKind, signature
from repro.algorithms.community import label_propagation
from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet


@signature(inputs=(VertexSet,), outputs=(SetKind.ANY,))
def community_scope(
    V: VertexSet,
    weight: Optional[str] = "wait_time",
    min_size: int = 2,
) -> List[VertexSet]:
    """Partition ``V`` by interaction community on its parallel view.

    Only cross edges (inter-process/inter-thread) define the communities
    — flow edges would glue every flow into one blob.  Vertices whose
    flows never interact form singleton communities and are dropped when
    below ``min_size``.  Each returned vertex is annotated with its
    ``community`` id; sets are ordered by total wait inside the
    community, descending (most afflicted first).
    """
    pag: Optional[PAG] = V.pag
    if pag is None or len(V) == 0:
        return []

    # project: keep only cross edges for the community structure
    proj = PAG(f"{pag.name}/cross")
    for v in pag.vertices():
        proj.add_vertex(v.label, v.name, v.call_kind)
    cross = 0
    for e in pag.edges():
        if e.label in (EdgeLabel.INTER_PROCESS, EdgeLabel.INTER_THREAD):
            w = float(e[weight] or 0.0) if weight else 1.0
            proj.add_edge(e.src_id, e.dst_id, e.label, properties={"w": max(w, 1e-12)})
            cross += 1
    if cross == 0:
        return []
    labels = label_propagation(proj, weight="w")

    groups: Dict[int, List] = {}
    for v in V:
        community = labels.get(v.id)
        if community is None:
            continue
        v["community"] = community
        groups.setdefault(community, []).append(v)

    def group_wait(members) -> float:
        return sum(float(m["wait"] or 0.0) for m in members)

    ordered = sorted(
        (members for members in groups.values() if len(members) >= min_size),
        key=group_wait,
        reverse=True,
    )
    return [VertexSet(members) for members in ordered]

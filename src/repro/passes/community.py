"""Community-scoping pass.

§2.1 and §4.3.1 list community detection among the graph algorithms the
pass library builds on: on the parallel view, ranks/threads that
exchange heavily form communities, and scoping a follow-up analysis to
one community keeps its pair-enumeration passes (causal analysis) and
pattern searches (contention) small.

The pass projects the parallel view onto its cross edges
(inter-process + inter-thread), weights them by communication volume or
waiting time, runs deterministic label propagation, and returns the
input set partitioned by community, most-afflicted community first.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

import numpy as np

from repro.dataflow.signatures import SetKind, signature
from repro.algorithms.community import label_propagation
from repro.pag.columns import _np_view
from repro.pag.edge import ELABEL_CODE, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet


@signature(inputs=(VertexSet,), outputs=(SetKind.ANY,))
def community_scope(
    V: VertexSet,
    weight: Optional[str] = "wait_time",
    min_size: int = 2,
) -> List[VertexSet]:
    """Partition ``V`` by interaction community on its parallel view.

    Only cross edges (inter-process/inter-thread) define the communities
    — flow edges would glue every flow into one blob.  Vertices whose
    flows never interact form singleton communities and are dropped when
    below ``min_size``.  Each returned vertex is annotated with its
    ``community`` id; sets are ordered by total wait inside the
    community, descending (most afflicted first).
    """
    pag: Optional[PAG] = V.pag
    if pag is None or len(V) == 0:
        return []

    # project: keep only cross edges for the community structure — a
    # block copy of the vertex arrays plus one vectorized edge selection
    e_label = _np_view(pag._e_label, np.int8)
    cross_mask = (e_label == ELABEL_CODE[EdgeLabel.INTER_PROCESS]) | (
        e_label == ELABEL_CODE[EdgeLabel.INTER_THREAD]
    )
    eids = np.nonzero(cross_mask)[0]
    if len(eids) == 0:
        return []
    proj = PAG(f"{pag.name}/cross")
    proj.strings = pag.strings
    proj._vprops.strings = proj.strings
    proj._eprops.strings = proj.strings
    proj._v_label = array("b", pag._v_label)
    proj._v_kind = array("b", pag._v_kind)
    proj._v_name = array("q", pag._v_name)
    proj._vprops.add_rows(pag.num_vertices)
    proj._e_src = array("q", _np_view(pag._e_src, np.int64)[eids].tolist())
    proj._e_dst = array("q", _np_view(pag._e_dst, np.int64)[eids].tolist())
    proj._e_label = array("b", e_label[eids].tolist())
    proj._e_kind = array("b", _np_view(pag._e_kind, np.int8)[eids].tolist())
    proj._eprops.add_rows(len(eids))
    if weight:
        w = pag._eprops.numeric(weight, eids, 0.0)
    else:
        w = np.ones(len(eids))
    proj._eprops.set_numeric_bulk(
        "w", np.arange(len(eids)), np.maximum(w, 1e-12)
    )
    labels = label_propagation(proj, weight="w")

    groups: Dict[int, List] = {}
    for v in V:
        community = labels.get(v.id)
        if community is None:
            continue
        v["community"] = community
        groups.setdefault(community, []).append(v)

    def group_wait(members) -> float:
        return sum(float(m["wait"] or 0.0) for m in members)

    ordered = sorted(
        (members for members in groups.values() if len(members) >= min_size),
        key=group_wait,
        reverse=True,
    )
    return [VertexSet(members) for members in ordered]

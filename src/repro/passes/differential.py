"""Performance differential analysis pass (paper Listing 4, Fig. 7).

Compares two runs of the same program (different inputs, parameters, or
scales).  The graph difference makes non-hotspot vertices whose cost
*changes* disproportionately stand out — Fig. 7's MPI_Reduce is not the
hottest vertex in either run but dominates the difference graph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dataflow.signatures import signature
from repro.algorithms.difference import graph_difference
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet


@signature(inputs=(VertexSet, VertexSet), outputs=(VertexSet,))
def differential_analysis(
    V1: VertexSet,
    V2: VertexSet,
    scale2: float = 1.0,
    min_delta: float = 0.0,
) -> VertexSet:
    """Difference vertices for two structurally identical runs.

    ``V1``/``V2`` are vertex sets of the two PAGs (typically ``pag.vs``
    of each).  Returns vertices of a fresh difference PAG, each carrying
    ``metric = v1[metric] - scale2 * v2[metric]`` for every diffable
    metric (Listing 4's loop), restricted to the ids present in ``V1``
    and filtered to ``time`` deltas above ``min_delta``.
    """
    g1: Optional[PAG] = V1.pag
    g2: Optional[PAG] = V2.pag
    if g1 is None or g2 is None:
        return VertexSet([])
    diff = graph_difference(g1, g2, scale2=scale2)
    ids = np.unique(V1.ids())
    out = VertexSet.from_ids(diff, ids)
    if min_delta > 0.0:
        keep = [float(t or 0.0) >= min_delta for t in out.values("time")]
        out = VertexSet.from_ids(diff, ids[np.asarray(keep, dtype=bool)])
    return out

"""Backtracking analysis pass (paper Listing 7's user-defined pass).

From each buggy vertex, walk *backwards* through the parallel view to
where its delay came from: at an MPI vertex follow the incoming
inter-process edge (the communication that delivered the wait), at a
loop/branch follow incoming control flow, elsewhere follow the incoming
flow edge.  The walk stops at collective communications (the paper's
``COLL_COMM`` guard — a collective synchronizes everyone, so blame
cannot be traced *through* it by local edges alone), at flow roots, or
on revisits.

The union of walked vertices/edges is the propagation forest: Fig. 10's
red bold arrows, whose sources are the root causes.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.dataflow.signatures import signature
from repro.pag.edge import Edge, EdgeLabel
from repro.pag.sets import EdgeSet, VertexSet
from repro.pag.vertex import CallKind, Vertex, VertexLabel

#: Collective communication names that terminate a backtracking walk.
COLL_COMM = (
    "MPI_Allreduce",
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Alltoall",
    "MPI_Allgather",
)


def _is_collective(v: Vertex) -> bool:
    name = v.name.strip("_").lower()
    return any(name == c.lower() for c in COLL_COMM)


def _pick_in_edge(pag, v: Vertex) -> Optional[Edge]:
    in_edges = list(pag.in_edges(v.id))
    if not in_edges:
        return None
    if v.label is VertexLabel.CALL and v.call_kind is CallKind.COMM:
        comm = [e for e in in_edges if e.label is EdgeLabel.INTER_PROCESS]
        if comm:
            # Follow the communication that contributed the most waiting.
            return max(comm, key=lambda e: (float(e["wait_time"] or 0.0), -e.id))
    if v.label in (VertexLabel.LOOP, VertexLabel.BRANCH):
        ctrl = [e for e in in_edges if e.label is not EdgeLabel.INTER_PROCESS]
        if ctrl:
            return ctrl[0]
    # Default: the flow/data edge (intra-procedural first).
    flow = [e for e in in_edges if e.label is not EdgeLabel.INTER_PROCESS]
    return flow[0] if flow else in_edges[0]


@signature(inputs=(VertexSet,), outputs=(VertexSet, EdgeSet))
def backtracking_analysis(
    V: VertexSet,
    max_steps: int = 10000,
) -> Tuple[VertexSet, EdgeSet]:
    """Backward propagation walk from each buggy vertex.

    Returns ``(V_bt, E_bt)``: the vertices and edges on all backtracking
    paths, in walk order, deduplicated.  Walk sources (the deepest
    vertices reached) are the root-cause candidates and are annotated
    with ``backtrack_root = True``.
    """
    pag = V.pag
    if pag is None:
        return VertexSet([]), EdgeSet([])
    V_bt: List[Vertex] = []
    E_bt: List[Edge] = []
    scanned: Set[int] = set()
    for start in V:
        if start.id in scanned:
            continue
        v = start
        steps = 0
        arrived_via_comm = False
        while steps < max_steps:
            steps += 1
            if v.id in scanned and v is not start:
                break
            scanned.add(v.id)
            V_bt.append(v)
            # Stopping at a collective applies to collectives reached along
            # the local flow: blame cannot pass *through* a synchronization
            # point locally.  Arriving at a collective over an
            # inter-process edge is different — that instance belongs to
            # the late participant, and its lateness comes from the code
            # before it, so the walk continues up that rank's flow.
            if _is_collective(v) and v is not start and not arrived_via_comm:
                break
            e = _pick_in_edge(pag, v)
            if e is None:
                v["backtrack_root"] = True
                break
            E_bt.append(e)
            arrived_via_comm = e.label is EdgeLabel.INTER_PROCESS
            v = e.src
        else:
            # Step budget exhausted: mark where we stopped.
            v["backtrack_root"] = True
    return VertexSet(V_bt), EdgeSet(E_bt)

"""Causal analysis pass (paper Listing 5).

Performance bugs propagate through inter-process communication and
inter-thread locks, producing *secondary* bugs; the vertices where
propagation chains meet — lowest common ancestors on the parallel
view — are the causes.  For each unscanned pair of input vertices the
pass runs LCA and collects the detected ancestors plus the edge paths
(the propagation chains).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dataflow.signatures import signature
from repro.algorithms.lca import lowest_common_ancestor
from repro.algorithms.traversal import EdgePredicate
from repro.pag.edge import EdgeLabel
from repro.pag.sets import EdgeSet, VertexSet
from repro.pag.vertex import Vertex


def _localize(pag, v: Vertex, max_hops: int = 25) -> Vertex:
    """Walk back from a comm-relay LCA to the time-generating vertex.

    An LCA that lands on an MPI call is a *relay*: it transported the
    delay but did not create it.  Follow incoming inter-process edges
    (largest wait first — toward the delaying rank) or flow edges until
    a non-communication vertex with actual time is reached; that vertex
    generated the delay.  Non-MPI LCAs (loops, allocator calls) are
    already generators and are returned unchanged.
    """
    hops = 0
    while hops < max_hops:
        is_relay = v.is_comm() or (v["time"] or 0.0) == 0.0
        if not is_relay:
            return v
        in_edges = list(pag.in_edges(v.id))
        if not in_edges:
            return v
        comm = [e for e in in_edges if e.label is EdgeLabel.INTER_PROCESS]
        if v.is_comm() and comm:
            e = max(comm, key=lambda e: (float(e["wait_time"] or 0.0), -e.id))
        else:
            flow = [e for e in in_edges if e.label is not EdgeLabel.INTER_PROCESS]
            e = flow[0] if flow else in_edges[0]
        v = e.src
        hops += 1
    return v


@signature(inputs=(VertexSet,), outputs=(VertexSet, EdgeSet))
def causal_analysis(
    V: VertexSet,
    edge_ok: Optional[EdgePredicate] = None,
    restrict_to_input: bool = False,
    localize: bool = True,
    max_pairs: int = 2000,
) -> Tuple[VertexSet, EdgeSet]:
    """Common-ancestor causes for a set of buggy vertices.

    Parameters
    ----------
    V:
        Parallel-view vertices with performance bugs (the descendants).
    edge_ok:
        Optional edge filter for the upward search (e.g. only edges with
        positive wait time).
    localize:
        When the LCA lands on an MPI relay vertex, continue to the
        time-generating code behind it (see :func:`_localize`) — this is
        how the LAMMPS case study's answer is ``loop_1.1`` rather than
        the MPI_Send that transported its delay.
    restrict_to_input:
        Listing 5's literal behaviour keeps an LCA only when it is itself
        in ``V`` (``if v in V``); the default ``False`` reports every
        detected ancestor, which is what the LAMMPS case study's
        PerFlowGraph needs to surface loop_1.1 (not itself flagged
        imbalanced on every rank).
    max_pairs:
        Pair-enumeration cap; pairs are scanned in set order and — as in
        Listing 5 — each vertex participates in at most one pair (the
        scanned-set ``S``), so the cost is linear in practice.

    Returns ``(V_res, path_edges)``: cause vertices (deduplicated,
    annotated with ``causes`` — the names of the affected descendants)
    and the union of propagation-path edges.
    """
    pag = V.pag
    if pag is None:
        return VertexSet([]), EdgeSet([])
    items: List[Vertex] = V.to_list()
    scanned = set()
    causes: List[Vertex] = []
    path_edges = []
    pairs = 0
    input_ids = {v.id for v in items}
    for i, v1 in enumerate(items):
        for v2 in items[i + 1 :]:
            if v1.id == v2.id or v1.id in scanned or v2.id in scanned:
                continue
            if pairs >= max_pairs:
                break
            pairs += 1
            anc, path = lowest_common_ancestor(pag, v1, v2, edge_ok)
            if anc is None:
                continue
            scanned.add(v1.id)
            scanned.add(v2.id)
            if restrict_to_input and anc.id not in input_ids:
                continue
            if localize:
                gen = _localize(pag, anc)
                if gen.id != anc.id:
                    gen["localized_from"] = f"{anc.name}@{anc['debug-info']}"
                    anc = gen
            affected = anc["causes"] or []
            for desc in (v1, v2):
                tag = f"{desc.name}@{desc['debug-info']}"
                if tag not in affected:
                    affected.append(tag)
            anc["causes"] = affected
            causes.append(anc)
            path_edges.extend(path)
    return VertexSet(causes), EdgeSet(path_edges)

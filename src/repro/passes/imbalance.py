"""Imbalance analysis pass.

Detects code snippets whose cost is unevenly distributed across
processes (or threads).  Two input shapes are handled:

* **Top-down view** vertices carrying ``time_per_rank`` vectors: a
  vertex is imbalanced when ``max/mean`` of its per-rank time exceeds
  the threshold and the vertex carries non-negligible time.  The pass
  annotates ``imbalance`` (the ratio) and ``imbalanced_ranks`` (ranks
  above ``outlier_factor × mean``).
* **Parallel view** instance vertices (no per-rank vector): instances
  are grouped by (name, debug-info) — the same code snippet across
  flows — and outlier instances are returned directly, which is what
  Fig. 10/12 draw boxes around.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.dataflow.signatures import signature
from repro.pag.sets import VertexSet
from repro.pag.vertex import Vertex


def _per_rank_mode(
    V: VertexSet, threshold: float, outlier_factor: float, min_time_fraction: float
) -> VertexSet:
    # bulk column reads: one pass over the time column and the per-rank
    # spill column instead of per-vertex dict lookups
    elements = V.to_list()
    times = [float(t or 0.0) for t in V.values("time")]
    vectors = V.values("time_per_rank")
    total = max(times, default=0.0)
    floor = total * min_time_fraction
    flagged: List[Tuple[float, Vertex]] = []
    for v, t, arr in zip(elements, times, vectors):
        if not isinstance(arr, np.ndarray) or arr.size == 0:
            continue
        mean = float(arr.mean())
        if mean <= 0.0 or t < floor:
            continue
        ratio = float(arr.max()) / mean
        if ratio >= threshold:
            v["imbalance"] = ratio
            v["imbalanced_ranks"] = [
                int(r) for r in np.nonzero(arr > outlier_factor * mean)[0]
            ]
            flagged.append((ratio, v))
    flagged.sort(key=lambda pair: -pair[0])
    return VertexSet(v for _r, v in flagged)


def _instance_mode(V: VertexSet, threshold: float, outlier_factor: float) -> VertexSet:
    elements = V.to_list()
    names = V.values("name")
    dbg = V.values("debug-info")
    times_all = [float(t or 0.0) for t in V.values("time")]
    groups: Dict[Tuple[str, str], List[int]] = {}
    for idx, (nm, d) in enumerate(zip(names, dbg)):
        groups.setdefault((nm, str(d)), []).append(idx)
    out: List[Tuple[float, Vertex]] = []
    for _key, idxs in groups.items():
        times = np.asarray([times_all[i] for i in idxs])
        mean = float(times.mean())
        if mean <= 0.0 or len(idxs) < 2:
            continue
        ratio = float(times.max()) / mean
        if ratio >= threshold:
            for i, t in zip(idxs, times):
                if t > outlier_factor * mean:
                    v = elements[i]
                    v["imbalance"] = t / mean
                    out.append((t / mean, v))
    out.sort(key=lambda pair: -pair[0])
    return VertexSet(v for _r, v in out)


@signature(inputs=(VertexSet,), outputs=(VertexSet,))
def imbalance_analysis(
    V: VertexSet,
    threshold: float = 1.2,
    outlier_factor: float = 1.1,
    min_time_fraction: float = 0.001,
) -> VertexSet:
    """Vertices with imbalanced per-process behaviour, most severe first.

    Parameters
    ----------
    threshold:
        Minimum ``max/mean`` per-rank time ratio to flag a vertex.
    outlier_factor:
        Ranks (or instances) above ``outlier_factor × mean`` are reported
        as the imbalanced ones.
    min_time_fraction:
        Ignore vertices cheaper than this fraction of the set's largest
        time (top-down mode) — imbalance in negligible code is noise.
    """
    has_vectors = any(
        isinstance(x, np.ndarray) for x in V.values("time_per_rank")
    )
    if has_vectors:
        return _per_rank_mode(V, threshold, outlier_factor, min_time_fraction)
    return _instance_mode(V, threshold, outlier_factor)

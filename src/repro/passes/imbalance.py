"""Imbalance analysis pass.

Detects code snippets whose cost is unevenly distributed across
processes (or threads).  Two input shapes are handled:

* **Top-down view** vertices carrying ``time_per_rank`` vectors: a
  vertex is imbalanced when ``max/mean`` of its per-rank time exceeds
  the threshold and the vertex carries non-negligible time.  The pass
  annotates ``imbalance`` (the ratio) and ``imbalanced_ranks`` (ranks
  above ``outlier_factor × mean``).
* **Parallel view** instance vertices (no per-rank vector): instances
  are grouped by (name, debug-info) — the same code snippet across
  flows — and outlier instances are returned directly, which is what
  Fig. 10/12 draw boxes around.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.dataflow.signatures import signature
from repro.pag.sets import VertexSet
from repro.pag.vertex import Vertex


def _per_rank_mode(
    V: VertexSet, threshold: float, outlier_factor: float, min_time_fraction: float
) -> VertexSet:
    total = max((float(v["time"] or 0.0) for v in V), default=0.0)
    floor = total * min_time_fraction
    out: List[Vertex] = []
    for v in V:
        arr = v["time_per_rank"]
        if not isinstance(arr, np.ndarray) or arr.size == 0:
            continue
        mean = float(arr.mean())
        if mean <= 0.0 or float(v["time"] or 0.0) < floor:
            continue
        ratio = float(arr.max()) / mean
        if ratio >= threshold:
            v["imbalance"] = ratio
            v["imbalanced_ranks"] = [
                int(r) for r in np.nonzero(arr > outlier_factor * mean)[0]
            ]
            out.append(v)
    out.sort(key=lambda v: -(v["imbalance"] or 0.0))
    return VertexSet(out)


def _instance_mode(V: VertexSet, threshold: float, outlier_factor: float) -> VertexSet:
    groups: Dict[Tuple[str, str], List[Vertex]] = {}
    for v in V:
        groups.setdefault((v.name, str(v["debug-info"])), []).append(v)
    out: List[Vertex] = []
    for _key, vs in groups.items():
        times = np.asarray([float(v["time"] or 0.0) for v in vs])
        mean = float(times.mean())
        if mean <= 0.0 or len(vs) < 2:
            continue
        ratio = float(times.max()) / mean
        if ratio >= threshold:
            for v, t in zip(vs, times):
                if t > outlier_factor * mean:
                    v["imbalance"] = t / mean
                    out.append(v)
    out.sort(key=lambda v: -(v["imbalance"] or 0.0))
    return VertexSet(out)


@signature(inputs=(VertexSet,), outputs=(VertexSet,))
def imbalance_analysis(
    V: VertexSet,
    threshold: float = 1.2,
    outlier_factor: float = 1.1,
    min_time_fraction: float = 0.001,
) -> VertexSet:
    """Vertices with imbalanced per-process behaviour, most severe first.

    Parameters
    ----------
    threshold:
        Minimum ``max/mean`` per-rank time ratio to flag a vertex.
    outlier_factor:
        Ranks (or instances) above ``outlier_factor × mean`` are reported
        as the imbalanced ones.
    min_time_fraction:
        Ignore vertices cheaper than this fraction of the set's largest
        time (top-down mode) — imbalance in negligible code is noise.
    """
    has_vectors = any(isinstance(v["time_per_rank"], np.ndarray) for v in V)
    if has_vectors:
        return _per_rank_mode(V, threshold, outlier_factor, min_time_fraction)
    return _instance_mode(V, threshold, outlier_factor)

"""Filter passes (the filter set-operation of §4.3.1).

A filter delivers specific PAG vertices/edges to specific passes; the
metric can be the type, name, or any attribute.  ``filter_set`` is the
general form; ``comm_filter`` and ``io_filter`` are the two named
examples from the paper (communication vertices via ``MPI_*``, IO
vertices via stream-read symbols).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.dataflow.signatures import signature
from repro.pag.sets import VertexSet
from repro.pag.vertex import CallKind, VertexLabel


@signature(inputs=(VertexSet,), outputs=(VertexSet,))
def filter_set(
    V: VertexSet,
    name: Optional[str] = None,
    label: Optional[VertexLabel] = None,
    call_kind: Optional[CallKind] = None,
    **props: Any,
) -> VertexSet:
    """Keep vertices matching a name glob, label, call kind, or property.

    Pure set operation: the output is always a subset of the input.
    """
    return V.select(name=name, label=label, call_kind=call_kind, **props)


@signature(inputs=(VertexSet,), outputs=(VertexSet,))
def comm_filter(V: VertexSet) -> VertexSet:
    """Communication vertices: call vertices whose name matches ``MPI_*``
    (case-insensitively — Fortran symbols appear as ``mpi_waitall_``)."""
    upper = V.select(name="MPI_*")
    lower = V.select(name="mpi_*")
    by_kind = V.select(call_kind=CallKind.COMM)
    return upper.union(lower, by_kind)


#: Symbols treated as IO by the paper's example filter.
IO_SYMBOLS = ("istream::read", "ostream::write", "fread", "fwrite", "read", "write")


@signature(inputs=(VertexSet,), outputs=(VertexSet,))
def io_filter(V: VertexSet) -> VertexSet:
    """IO vertices by symbol name."""
    out = VertexSet([])
    for sym in IO_SYMBOLS:
        out = out.union(V.select(name=sym))
    return out

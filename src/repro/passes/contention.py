"""Contention detection pass (paper Listing 6).

Resource contention — threads serializing on a shared resource such as
the allocator lock — has a characteristic shape on the parallel view: a
hub vertex with multiple incoming and outgoing *inter-thread* wait
edges (several threads queue behind one holder, and the holder in turn
delays several waiters).  Subgraph matching finds all embeddings of
such candidate patterns around the suspect vertices.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dataflow.signatures import signature
from repro.algorithms.subgraph import Embedding, PatternGraph, subgraph_matching
from repro.pag.edge import EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet


def default_contention_pattern() -> PatternGraph:
    """Listing 6's candidate pattern: A,B -> C -> D,E over wait edges.

    Vertex C is the serialization hub — a lock holder that both inherited
    delay (in-edges from A and B) and passed it on (out-edges to D and
    E).  All five pattern vertices are unconstrained on labels; the edges
    must be inter-thread wait edges.
    """
    pat = PatternGraph()
    pat.add_vertices([(1, "A"), (2, "B"), (3, "C"), (4, "D"), (5, "E")])
    for src, dst in [(1, 3), (2, 3), (3, 4), (3, 5)]:
        pat.add_edge(src, dst, label=EdgeLabel.INTER_THREAD)
    return pat


@signature(inputs=(VertexSet,), outputs=(VertexSet, EdgeSet))
def contention_detection(
    V: VertexSet,
    pattern: Optional[PatternGraph] = None,
    limit: int = 50,
) -> Tuple[VertexSet, EdgeSet]:
    """Search contention-pattern embeddings around the input vertices.

    The input vertices anchor the pattern's hub: embeddings are searched
    with the hub restricted to the neighborhood (the vertex itself and
    its inter-thread neighbors) of each input vertex.  Returns the union
    of embedded vertices and edges (Listing 6's ``V_ebd, E_ebd``), each
    embedding's vertices annotated with ``contention_hub`` naming the
    hub vertex.
    """
    pag: Optional[PAG] = V.pag
    if pag is None:
        return VertexSet([]), EdgeSet([])
    pat = pattern or default_contention_pattern()

    # Anchor candidates: the inputs plus their inter-thread neighborhood.
    anchor_ids = set()
    for v in V:
        anchor_ids.add(v.id)
        for e in pag.incident(v.id):
            if e.label is EdgeLabel.INTER_THREAD:
                anchor_ids.add(e.other(v.id))
    anchors = [pag.vertex(vid) for vid in sorted(anchor_ids)]

    embeddings: List[Embedding] = subgraph_matching(pag, pat, candidates=anchors, limit=limit)
    out_vs, out_es = [], []
    for emb in embeddings:
        hub = max(
            emb.vertices.values(),
            key=lambda v: sum(1 for e in emb.edges if v.id in (e.src_id, e.dst_id)),
        )
        for v in emb.vertices.values():
            v["contention_hub"] = f"{hub.name}@{hub['debug-info']}"
            out_vs.append(v)
        out_es.extend(emb.edges)
    return VertexSet(out_vs), EdgeSet(out_es)

"""Critical-path analysis pass.

Wraps :func:`repro.algorithms.critical_path.critical_path` as a pass:
input is any vertex set of a parallel view (only its PAG matters),
output is the path's vertices/edges plus the path weight, with each
path vertex annotated ``on_critical_path = True``.
"""

from __future__ import annotations

from typing import Tuple

from repro.dataflow.signatures import SetKind, signature
from repro.algorithms.critical_path import critical_path, default_vertex_weight
from repro.pag.sets import EdgeSet, VertexSet


@signature(inputs=(VertexSet,), outputs=(VertexSet, EdgeSet, SetKind.ANY))
def critical_path_analysis(
    V: VertexSet,
    vertex_weight=default_vertex_weight,
) -> Tuple[VertexSet, EdgeSet, float]:
    """The longest weighted activity chain of the execution.

    Returns ``(vertices, edges, weight)``; vertices in path order.

    Parallel views aggregate repeated interactions onto the same vertex
    pair, which can create lateral cycles (a lock bouncing between two
    threads contributes edges in both directions).  When that happens,
    the path is computed over the acyclic id-increasing edge subset —
    flow edges always qualify, and exactly one direction of each lateral
    pair survives — a deterministic approximation whose weight is a
    lower bound on the true critical path.
    """
    pag = V.pag
    if pag is None:
        return VertexSet([]), EdgeSet([]), 0.0
    try:
        vertices, edges, weight = critical_path(pag, vertex_weight=vertex_weight)
    except ValueError:
        vertices, edges, weight = critical_path(
            pag,
            vertex_weight=vertex_weight,
            edge_ok=lambda e: e.src_id < e.dst_id,
        )
    for v in vertices:
        v["on_critical_path"] = True
    return VertexSet(vertices), EdgeSet(edges), weight

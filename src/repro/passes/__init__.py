"""The built-in performance-analysis pass library (paper §4.3).

A *pass* completes one analysis sub-task: it takes sets of PAG
vertices/edges, runs graph algorithms and set operations, and outputs
sets for the next pass.  The library covers the passes the paper names:

========================  ======================================================
hotspot_detection         top-N by a metric (Listing 3)
differential_analysis     graph difference between two runs (Listing 4, Fig. 7)
imbalance_analysis        per-rank outlier detection
breakdown_analysis        decompose a bug: wait vs transfer vs compute, and the
                          likely cause of communication imbalance (Fig. 2)
causal_analysis           pairwise LCA on the parallel view (Listing 5)
contention_detection      subgraph matching of contention patterns (Listing 6)
backtracking_analysis     backward cause traversal (Listing 7's user pass,
                          promoted to a built-in)
critical_path_analysis    longest weighted path through the parallel view
filters / set ops         the set-operation API surface of §4.3.1
========================  ======================================================

Passes are plain functions over sets so they compose both eagerly
(Listing 1 style) and inside a :class:`~repro.dataflow.graph.PerFlowGraph`.
"""

from repro.passes.filters import comm_filter, filter_set, io_filter
from repro.passes.hotspot import hotspot_detection
from repro.passes.differential import differential_analysis
from repro.passes.imbalance import imbalance_analysis
from repro.passes.breakdown import breakdown_analysis
from repro.passes.causal import causal_analysis
from repro.passes.contention import contention_detection, default_contention_pattern
from repro.passes.backtracking import backtracking_analysis
from repro.passes.critical import critical_path_analysis
from repro.passes.community import community_scope
from repro.passes.report import Report, format_table, to_dot

__all__ = [
    "filter_set",
    "comm_filter",
    "io_filter",
    "hotspot_detection",
    "differential_analysis",
    "imbalance_analysis",
    "breakdown_analysis",
    "causal_analysis",
    "contention_detection",
    "default_contention_pattern",
    "backtracking_analysis",
    "critical_path_analysis",
    "community_scope",
    "Report",
    "format_table",
    "to_dot",
]

"""The report module (the terminal node of every PerFlowGraph).

Produces human-readable text tables of vertex attributes and Graphviz
DOT documents of PAG fragments — the paper's "human-readable texts and
visualized graphs" (§2.2).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.pag.edge import Edge, EdgeLabel
from repro.pag.sets import EdgeSet, VertexSet
from repro.pag.vertex import Vertex


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, np.ndarray):
        if value.size > 6:
            head = ", ".join(f"{x:.3g}" for x in value[:4])
            return f"[{head}, … ×{value.size}]"
        return "[" + ", ".join(f"{x:.3g}" for x in value) + "]"
    if isinstance(value, dict):
        return json.dumps({k: _fmt(v) for k, v in value.items()}, separators=(",", ":"))
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_fmt(v) for v in value) + "]"
    return str(value)


def format_table(V: Iterable[Vertex], attrs: Sequence[str]) -> str:
    """Fixed-width text table of ``attrs`` for each vertex."""
    headers = list(attrs)
    rows: List[List[str]] = [[_fmt(v[a]) for a in headers] for v in V]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "  "
    lines = [sep.join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append(sep.join("-" * w for w in widths))
    for r in rows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


_EDGE_STYLE = {
    EdgeLabel.INTRA_PROCEDURAL: 'color="gray50"',
    EdgeLabel.INTER_PROCEDURAL: 'color="gray20",style=bold',
    EdgeLabel.INTER_PROCESS: 'color="red",style=bold',
    EdgeLabel.INTER_THREAD: 'color="blue",style=dashed',
}


def to_dot(
    vertices: Iterable[Vertex],
    edges: Iterable[Edge] = (),
    highlight: Iterable[Vertex] = (),
    name: str = "pag",
) -> str:
    """Graphviz DOT of a PAG fragment.

    Vertex fill saturation encodes ``time`` relative to the fragment's
    maximum — the paper's "color saturation represents the severity of
    hotspots".  ``highlight`` vertices get a bold box (the imbalance
    boxes of Fig. 10).
    """
    vs = list(vertices)
    es = list(edges)
    hi = {v.id for v in highlight}
    max_time = max((float(v["time"] or 0.0) for v in vs), default=0.0)
    lines = [f"digraph {json.dumps(name)} {{", "  node [shape=ellipse,style=filled];"]
    for v in vs:
        t = float(v["time"] or 0.0)
        sat = t / max_time if max_time > 0 else 0.0
        # HSV: fixed hue, saturation = severity.
        color = f"0.08 {0.15 + 0.85 * sat:.3f} 1.0"
        extra = ',shape=box,penwidth=3' if v.id in hi else ""
        label = v.name.replace('"', "'")
        proc = v["process"]
        if proc is not None:
            label += f"\\np{proc}"
            thread = v["thread"]
            if thread:
                label += f".t{thread}"
        lines.append(
            f'  v{v.id} [label="{label}",fillcolor="{color}"{extra}];'
        )
    present = {v.id for v in vs}
    for e in es:
        if e.src_id in present and e.dst_id in present:
            lines.append(f"  v{e.src_id} -> v{e.dst_id} [{_EDGE_STYLE[e.label]}];")
    lines.append("}")
    return "\n".join(lines)


class Report:
    """Accumulates report sections; renders to text and DOT.

    The high-level ``pflow.report(...)`` builds one of these from the
    sets it is given.
    """

    def __init__(self, title: str = "PerFlow report"):
        self.title = title
        self._sections: List[str] = []
        self._dots: List[str] = []

    def add_set(
        self,
        data: Union[VertexSet, EdgeSet],
        attrs: Sequence[str],
        heading: Optional[str] = None,
    ) -> "Report":
        lines = []
        if heading:
            lines.append(f"## {heading}")
        if isinstance(data, EdgeSet):
            rows = []
            for e in data:
                rows.append(
                    f"  {e.src.name} -> {e.dst.name}"
                    f"  [{e.label.value}"
                    + (f", wait={_fmt(e['wait_time'])}" if e["wait_time"] is not None else "")
                    + "]"
                )
            lines.append(f"{len(rows)} edges")
            lines.extend(rows[:200])
        else:
            lines.append(format_table(data, attrs))
        self._sections.append("\n".join(lines))
        return self

    def add_dot(self, dot: str) -> "Report":
        self._dots.append(dot)
        return self

    def to_text(self) -> str:
        header = f"=== {self.title} ==="
        return "\n\n".join([header] + self._sections)

    @property
    def dots(self) -> List[str]:
        return list(self._dots)

    def __str__(self) -> str:
        return self.to_text()

"""Hotspot detection pass (paper Listing 3).

Identify the code snippets with the highest value of a metric — total
time by default; any embedded counter (``cycles``, ``l1_misses``,
``instructions``) works the same way.
"""

from __future__ import annotations

from repro.dataflow.signatures import signature
from repro.pag.sets import VertexSet


@signature(inputs=(VertexSet,), outputs=(VertexSet,))
def hotspot_detection(V: VertexSet, metric: str = "time", n: int = 10) -> VertexSet:
    """Top-``n`` vertices of ``V`` by ``metric``, descending.

    The literal transcription of Listing 3: ``V.sort_by(m).top(n)``.
    """
    return V.sort_by(metric).top(n)

"""Breakdown analysis pass (the last stage of Fig. 2's task).

Once a communication call is known to be imbalanced, breakdown analysis
decides *why*: different message sizes across ranks, load imbalance in
the computation preceding the communication, or time genuinely spent
moving bytes.  Each input vertex is annotated with a ``breakdown``
dictionary:

* ``compute`` / ``wait`` / ``transfer`` — the time split,
* ``cause`` — ``"message-size imbalance"`` when per-rank byte counts
  vary beyond ``size_cv_threshold`` (coefficient of variation),
  ``"load imbalance before communication"`` when bytes are uniform but
  waits are skewed, ``"transfer-bound"`` when wait is small relative to
  total, else ``"balanced"``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dataflow.signatures import signature
from repro.pag.sets import VertexSet
from repro.pag.vertex import Vertex


def _cv(arr: np.ndarray) -> float:
    mean = float(arr.mean())
    return float(arr.std()) / mean if mean > 0 else 0.0


@signature(inputs=(VertexSet,), outputs=(VertexSet,))
def breakdown_analysis(
    V: VertexSet,
    size_cv_threshold: float = 0.25,
    wait_fraction_threshold: float = 0.3,
) -> VertexSet:
    """Annotate each vertex with its time breakdown and likely cause.

    Output equals the input set (annotated) — a pure set operation plus
    attribute computation, so downstream passes and the report module
    see the same vertices.
    """
    out: List[Vertex] = []
    elements = V.to_list()
    times = V.values("time")
    waits = V.values("wait")
    bytes_prs = V.values("bytes_per_rank")
    wait_prs = V.values("wait_per_rank")
    for v, t, w, bytes_pr, wait_pr in zip(elements, times, waits, bytes_prs, wait_prs):
        time = float(t or 0.0)
        wait = float(w or 0.0)
        transfer = max(0.0, time - wait)
        breakdown = {
            "compute": 0.0,
            "wait": wait,
            "transfer": transfer,
        }
        cause = "balanced"
        if isinstance(bytes_pr, np.ndarray) and bytes_pr.size and _cv(bytes_pr) > size_cv_threshold:
            cause = "message-size imbalance"
        elif time > 0 and wait / time >= wait_fraction_threshold:
            if isinstance(wait_pr, np.ndarray) and wait_pr.size and _cv(wait_pr) > size_cv_threshold:
                cause = "load imbalance before communication"
            else:
                cause = "synchronization wait"
        elif time > 0 and transfer / time > (1.0 - wait_fraction_threshold):
            cause = "transfer-bound"
        breakdown["cause"] = cause
        v["breakdown"] = breakdown
        out.append(v)
    return VertexSet(out)

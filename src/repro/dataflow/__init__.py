"""PerFlow programming abstraction: the dataflow layer.

* :mod:`~repro.dataflow.graph` — :class:`PerFlowGraph`: the dataflow
  graph of passes (vertices) and sets (edges) of §4.1/§4.2, with
  deterministic topological execution and fixpoint groups for
  repeat-until-stable analyses (Fig. 11).
* :mod:`~repro.dataflow.scheduler` — the dependency-counting wavefront
  scheduler behind ``PerFlowGraph.run(jobs=N)``: independent nodes run
  concurrently on a thread pool with serial-identical semantics.
* :mod:`~repro.dataflow.procpool` — the multiprocessing backend behind
  ``run(jobs=N, backend="process")``: the same wavefront core driving
  forked workers that attach the run's PAGs zero-copy from shared
  memory, for CPU-bound pipelines the GIL would serialize.
* :mod:`~repro.dataflow.lowlevel` — the low-level API surface of
  §4.3.1: graph operations, graph algorithms, set operations, and the
  constants (``MPI``, ``LOOP``, ``COMM``, ``COLL_COMM``, …) the paper's
  listings reference as ``pflow.*``.
* :mod:`~repro.dataflow.api` — the :class:`PerFlow` facade
  (``pflow = PerFlow(); pag = pflow.run(...)``) exposing the built-in
  pass library as high-level methods.
"""

from repro.dataflow.graph import PerFlowGraph, PipelineError
from repro.dataflow.procpool import (
    NotTransferable,
    ProcPoolError,
    ShmAttachError,
    WorkerCrashed,
)
from repro.dataflow.scheduler import (
    BACKENDS,
    ENV_BACKEND,
    ENV_JOBS,
    resolve_backend,
    resolve_jobs,
)
from repro.dataflow.signatures import PassSignature, SetKind, signature
from repro.dataflow.api import PerFlow

__all__ = [
    "PerFlowGraph",
    "PipelineError",
    "PerFlow",
    "PassSignature",
    "SetKind",
    "signature",
    "ENV_JOBS",
    "ENV_BACKEND",
    "BACKENDS",
    "resolve_jobs",
    "resolve_backend",
    "ProcPoolError",
    "WorkerCrashed",
    "ShmAttachError",
    "NotTransferable",
]

"""Interactive analysis mode (paper §4.5).

"For scenarios in which developers do not know what analysis to apply …
it is advisable to first use a general built-in analysis pass, such as
hotspot detection.  The output of the previous pass will provide some
insights to help determine or design the next passes."

:class:`InteractiveSession` packages that loop: every step records what
ran and what came out, and :meth:`suggest` inspects the newest output
with simple rules (the insights a human analyst would read off a
report) to propose the next pass:

* lock/allocator symbols among the hotspots → contention detection
  (the Vite flow);
* imbalance-annotated vertices → backtracking on the parallel view
  (the ZeusMP flow);
* communication calls among the hotspots → comm filter + imbalance
  analysis;
* wait-dominated vertices → breakdown analysis;
* two runs registered → differential analysis;
* otherwise → widen the hotspot search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.dataflow.api import PerFlow
from repro.pag.graph import PAG
from repro.pag.sets import VertexSet
from repro.pag.vertex import CallKind

#: symbols that smell like serialized resources
_LOCKY = ("alloc", "realloc", "dealloc", "mutex", "lock", "_M_", "free")


@dataclass
class Step:
    """One executed analysis step."""

    pass_name: str
    output: Any
    note: str = ""


@dataclass
class Suggestion:
    """What to run next, and why."""

    pass_name: str
    reason: str
    run: Any = None  # zero-argument callable executing the suggestion

    def __str__(self) -> str:
        return f"{self.pass_name}: {self.reason}"


@dataclass
class InteractiveSession:
    """A §4.5-style step-by-step analysis over one (or two) runs."""

    pflow: PerFlow
    pag: PAG
    pag_other: Optional[PAG] = None
    steps: List[Step] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record(self, pass_name: str, output: Any, note: str = "") -> Any:
        self.steps.append(Step(pass_name, output, note))
        return output

    def start(self, n: int = 15) -> VertexSet:
        """The advised first step: general hotspot detection."""
        hot = self.pflow.hotspot_detection(self.pag.vs, n=n)
        return self.record("hotspot_detection", hot, f"top {n} by time")

    @property
    def last_output(self) -> Any:
        return self.steps[-1].output if self.steps else None

    # ------------------------------------------------------------------
    def suggest(self) -> Suggestion:
        """Rule-based proposal for the next pass, with a ready-to-run
        closure."""
        out = self.last_output
        if out is None:
            return Suggestion(
                "hotspot_detection",
                "no analysis has run yet; start general",
                lambda: self.start(),
            )
        if not isinstance(out, VertexSet):
            return Suggestion(
                "report",
                "the last step produced non-set output; report and stop",
                lambda: self.pflow.report(*[s.output for s in self.steps if isinstance(s.output, VertexSet)][:1]),
            )

        comm = [v for v in out if v.call_kind is CallKind.COMM]
        locky = [v for v in out if any(tag in v.name.lower() for tag in _LOCKY)]
        imbalanced = [v for v in out if v["imbalance"]]
        waity = [
            v
            for v in out
            if (v["wait"] or 0.0) > 0.5 * (v["time"] or 1.0) and (v["time"] or 0) > 0
        ]

        if locky:
            def run_cont():
                inst = self.pflow.instances(
                    VertexSet(locky), self.pag, max_ranks=8, expand_threads=True, all_ranks=True
                )
                return self.record(
                    "contention_detection",
                    self.pflow.contention_detection(inst),
                    "allocator/lock symbols: look for serialization patterns",
                )

            return Suggestion(
                "contention_detection",
                f"{len(locky)} lock/allocator symbols among the hotspots",
                run_cont,
            )
        if imbalanced:
            def run_backtrack():
                inst = self.pflow.instances(VertexSet(imbalanced), self.pag, max_ranks=32)
                return self.record(
                    "backtracking_analysis",
                    self.pflow.backtracking_analysis(inst),
                    "trace the imbalance to its origin",
                )

            return Suggestion(
                "backtracking_analysis",
                f"{len(imbalanced)} imbalanced vertices: trace where their delay comes from",
                run_backtrack,
            )
        if comm and not self._ran("imbalance_analysis"):
            def run_imb():
                filtered = self.pflow.comm_filter(out)
                return self.record(
                    "imbalance_analysis",
                    self.pflow.imbalance_analysis(filtered),
                    "communication hotspots: check balance across ranks",
                )

            return Suggestion(
                "imbalance_analysis",
                f"{len(comm)} communication calls among the hotspots: check their balance",
                run_imb,
            )
        if waity and not self._ran("breakdown_analysis"):
            def run_bd():
                return self.record(
                    "breakdown_analysis",
                    self.pflow.breakdown_analysis(VertexSet(waity)),
                    "wait-dominated vertices: attribute the waiting",
                )

            return Suggestion(
                "breakdown_analysis",
                f"{len(waity)} vertices spend most of their time waiting",
                run_bd,
            )
        if self.pag_other is not None and not self._ran("differential_analysis"):
            def run_diff():
                return self.record(
                    "differential_analysis",
                    self.pflow.differential_analysis(self.pag.vs, self.pag_other.vs),
                    "two runs available: difference them",
                )

            return Suggestion(
                "differential_analysis",
                "a second run is registered: compare the two executions",
                run_diff,
            )

        def run_more():
            return self.record(
                "hotspot_detection",
                self.pflow.hotspot_detection(self.pag.vs, n=2 * max(len(out), 10)),
                "widen the hotspot set",
            )

        return Suggestion(
            "hotspot_detection",
            "no strong signal yet: widen the hotspot search",
            run_more,
        )

    def _ran(self, name: str) -> bool:
        return any(s.pass_name == name for s in self.steps)

    # ------------------------------------------------------------------
    def transcript(self) -> str:
        """Human-readable log of the session."""
        lines = [f"interactive session over {self.pag.name}:"]
        for i, step in enumerate(self.steps, 1):
            size = f"{len(step.output)} elements" if hasattr(step.output, "__len__") else type(step.output).__name__
            lines.append(f"  {i}. {step.pass_name} -> {size}  ({step.note})")
        return "\n".join(lines)

"""Set signatures for PerFlowGraph passes.

Paper §4.2: the values flowing along PerFlowGraph edges are *sets* of
PAG vertices and edges.  A :class:`PassSignature` declares which kind
each input position consumes and each output position produces, so a
pipeline can be type-checked **before** execution
(:meth:`repro.dataflow.graph.PerFlowGraph.check`) instead of failing
with a ``TypeError`` halfway through a run.

Declare signatures with the :func:`signature` decorator (it only
attaches metadata — the function is returned unchanged, with zero call
overhead)::

    @signature(inputs=(VertexSet,), outputs=(VertexSet, EdgeSet))
    def causal_analysis(V, **kwargs): ...

Kinds are spelled as the set classes themselves (``VertexSet`` /
``EdgeSet``), the strings ``"vertexset"`` / ``"edgeset"`` / ``"any"``,
or :class:`SetKind` members.  ``ANY`` opts a position out of checking,
so untyped lambdas and scalar-valued passes keep working unchecked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple, Union

from repro.pag.sets import EdgeSet, VertexSet

#: Attribute under which a signature is attached to a pass function.
SIGNATURE_ATTR = "__pf_signature__"


class SetKind(enum.Enum):
    """The kind of value flowing along one PerFlowGraph edge."""

    VERTEX_SET = "VertexSet"
    EDGE_SET = "EdgeSet"
    ANY = "any"

    def __str__(self) -> str:
        return self.value

    def compatible(self, other: "SetKind") -> bool:
        return SetKind.ANY in (self, other) or self is other

    @classmethod
    def of(cls, spec: Any) -> "SetKind":
        """Coerce a kind spec (class, string, SetKind, or value) to a kind."""
        if isinstance(spec, cls):
            return spec
        if spec is VertexSet or isinstance(spec, VertexSet):
            return cls.VERTEX_SET
        if spec is EdgeSet or isinstance(spec, EdgeSet):
            return cls.EDGE_SET
        if isinstance(spec, str):
            key = spec.strip().lower()
            if key in ("vertexset", "vertex_set", "vertices", "v"):
                return cls.VERTEX_SET
            if key in ("edgeset", "edge_set", "edges", "e"):
                return cls.EDGE_SET
            if key in ("any", "*"):
                return cls.ANY
            raise ValueError(f"unknown set kind {spec!r}")
        return cls.ANY


KindSpec = Union[SetKind, str, type, None]


@dataclass(frozen=True)
class PassSignature:
    """Declared input/output set kinds of a pass."""

    inputs: Tuple[SetKind, ...]
    outputs: Tuple[SetKind, ...]

    def __str__(self) -> str:
        ins = ", ".join(map(str, self.inputs))
        outs = ", ".join(map(str, self.outputs))
        return f"({ins}) -> ({outs})"

    @property
    def arity(self) -> int:
        return len(self.inputs)


def make_signature(
    inputs: Union[KindSpec, Sequence[KindSpec]] = (),
    outputs: Union[KindSpec, Sequence[KindSpec]] = (),
) -> PassSignature:
    """Build a :class:`PassSignature` from loose kind specs."""

    def coerce(spec) -> Tuple[SetKind, ...]:
        if spec is None:
            return ()
        if isinstance(spec, (list, tuple)):
            return tuple(SetKind.of(s) for s in spec)
        return (SetKind.of(spec),)

    return PassSignature(inputs=coerce(inputs), outputs=coerce(outputs))


def signature(
    inputs: Union[KindSpec, Sequence[KindSpec]] = (),
    outputs: Union[KindSpec, Sequence[KindSpec]] = (),
) -> Callable:
    """Decorator attaching a :class:`PassSignature` to a pass function."""
    sig = make_signature(inputs, outputs)

    def deco(fn: Callable) -> Callable:
        setattr(fn, SIGNATURE_ATTR, sig)
        return fn

    return deco


def signature_of(fn: Any) -> Optional[PassSignature]:
    """The signature attached to ``fn``, if any (methods included)."""
    sig = getattr(fn, SIGNATURE_ATTR, None)
    if sig is None:
        sig = getattr(getattr(fn, "__func__", None), SIGNATURE_ATTR, None)
    return sig

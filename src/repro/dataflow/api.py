"""The ``PerFlow`` facade — the paper's high-level Python API (§2.2).

One object exposes the whole workflow::

    pflow = PerFlow()
    pag = pflow.run(bin=program, cmd="mpirun -np 4 ./a.out")
    V_comm = pflow.filter(pag.V, name="MPI_*")
    V_hot = pflow.hotspot_detection(V_comm)
    V_imb = pflow.imbalance_analysis(V_hot)
    V_bd = pflow.breakdown_analysis(V_imb)
    pflow.report(V_imb, V_bd, attrs=["name", "comm-info", "debug-info", "time"])

plus the low-level constants and helpers of §4.3.1 (``pflow.MPI``,
``pflow.COLL_COMM``, ``pflow.lowest_common_ancestor``, …) so
user-defined passes can be written exactly as in the paper's listings.

The "binary" is a :class:`~repro.ir.model.Program` model; ``cmd`` is
parsed for ``-np N`` / ``-n N`` for fidelity with the paper's
``pflow.run(bin=..., cmd="mpirun -np 4 ./a.out")``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.dataflow import lowlevel
from repro.dataflow.graph import PerFlowGraph
from repro.ir.model import Program
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet
from repro.pag.views import build_parallel_view, build_top_down_view
from repro.passes import (
    Report,
    backtracking_analysis,
    breakdown_analysis,
    causal_analysis,
    comm_filter,
    contention_detection,
    critical_path_analysis,
    differential_analysis,
    filter_set,
    hotspot_detection,
    imbalance_analysis,
)
from repro.runtime.executor import run_program
from repro.runtime.machine import MachineModel
from repro.runtime.records import RunResult
from repro.runtime.sampler import dynamic_overhead_percent


@dataclass
class RunContext:
    """Everything PerFlow remembers about one executed run."""

    program: Program
    run: RunResult
    static_result: Any
    pag: PAG
    _pv_cache: Dict[Tuple[Optional[int], bool], PAG] = field(default_factory=dict)


def _parse_np(cmd: Optional[str]) -> Optional[int]:
    if not cmd:
        return None
    m = re.search(r"-(?:np|n)\s+(\d+)", cmd)
    return int(m.group(1)) if m else None


class PerFlow:
    """The high-level programming interface."""

    # -- low-level constants, re-exported for listing-fidelity -------------
    MPI = lowlevel.MPI
    LOOP = lowlevel.LOOP
    BRANCH = lowlevel.BRANCH
    FUNCTION = lowlevel.FUNCTION
    CALL = lowlevel.CALL
    INSTRUCTION = lowlevel.INSTRUCTION
    COMM = lowlevel.COMM
    CTRL_FLOW = lowlevel.CTRL_FLOW
    DATA_FLOW = lowlevel.DATA_FLOW
    CALL_EDGE = lowlevel.CALL_EDGE
    THREAD_DEP = lowlevel.THREAD_DEP
    COLL_COMM = lowlevel.COLL_COMM
    IN_EDGE = lowlevel.IN_EDGE
    OUT_EDGE = lowlevel.OUT_EDGE

    def __init__(
        self,
        sampling_hz: float = 200.0,
        machine: Optional[MachineModel] = None,
        jobs: Optional[int] = None,
        cache: Any = None,
        cache_dir: Any = None,
        backend: Optional[str] = None,
    ) -> None:
        self.sampling_hz = sampling_hz
        self.machine = machine or MachineModel()
        #: default worker count for PerFlowGraphs built via
        #: :meth:`perflowgraph` (None → ``PERFLOW_JOBS`` → serial).
        self.jobs = jobs
        #: default worker-pool flavor for PerFlowGraphs built via
        #: :meth:`perflowgraph` (None → ``PERFLOW_BACKEND`` →
        #: ``"thread"``; ``"process"`` runs passes on forked workers
        #: with shared-memory PAGs).
        self.backend = backend
        #: default result-cache spec for PerFlowGraphs built via
        #: :meth:`perflowgraph` (None → ``PERFLOW_CACHE`` → disabled).
        #: ``cache_dir`` implies an enabled disk-backed cache rooted
        #: there and overrides ``cache`` unless caching is explicitly
        #: disabled with ``cache=False``.
        self.cache = cache if (cache_dir is None or cache is False) else str(cache_dir)
        self._contexts: Dict[int, RunContext] = {}

    # ------------------------------------------------------------------
    # running programs
    # ------------------------------------------------------------------
    def run(
        self,
        bin: Program,  # noqa: A002 - paper API name
        cmd: Optional[str] = None,
        nprocs: Optional[int] = None,
        nthreads: int = 1,
        params: Optional[Dict[str, Any]] = None,
    ) -> PAG:
        """Run the program and return its top-down PAG (Listing 1).

        Rank count comes from ``nprocs`` or is parsed from ``cmd``
        (``mpirun -np N …``); default 1.
        """
        n = nprocs if nprocs is not None else (_parse_np(cmd) or 1)
        run = run_program(bin, nprocs=n, nthreads=nthreads, params=params, machine=self.machine)
        pag, static_result = build_top_down_view(bin, run)
        pag.metadata["dynamic_overhead_pct"] = dynamic_overhead_percent(run, self.sampling_hz)
        self._contexts[id(pag)] = RunContext(bin, run, static_result, pag)
        # Report the PAG's fingerprint to the run ledger when the CLI
        # has a collection scope open (no-op otherwise).
        from repro.obs import ledger as _ledger

        _ledger.note_pag(pag)
        return pag

    def context(self, pag: PAG) -> RunContext:
        """The run context of a PAG produced by :meth:`run`."""
        try:
            return self._contexts[id(pag)]
        except KeyError:
            raise KeyError(
                "this PAG was not produced by PerFlow.run() on this instance"
            ) from None

    def parallel_view(
        self,
        pag: PAG,
        max_ranks: Optional[int] = None,
        expand_threads: bool = False,
    ) -> PAG:
        """The parallel view of a run's PAG (§3.4), cached per arguments."""
        ctx = self.context(pag)
        key = (max_ranks, expand_threads)
        pv = ctx._pv_cache.get(key)
        if pv is None:
            pv = build_parallel_view(
                pag, ctx.static_result, ctx.run,
                max_ranks=max_ranks, expand_threads=expand_threads,
            )
            ctx._pv_cache[key] = pv
        return pv

    def instances(
        self,
        V: VertexSet,
        pag: PAG,
        max_ranks: Optional[int] = None,
        expand_threads: bool = False,
        all_ranks: bool = False,
    ) -> VertexSet:
        """Map top-down vertices to their parallel-view instances.

        For vertices annotated with ``imbalanced_ranks`` (the imbalance
        pass output) only those ranks' instances are returned unless
        ``all_ranks`` is set.  Vertices are matched to ``pag`` by id, so
        sets from a difference PAG (identical structure) work too.
        """
        pv = self.parallel_view(pag, max_ranks=max_ranks, expand_threads=expand_threads)
        ntd = pag.num_vertices
        nprocs = pv.metadata["nprocs"]
        nthreads = pv.metadata["nthreads"]
        threads = np.arange(nthreads if expand_threads else 1, dtype=np.int64)
        # one id-arithmetic broadcast per vertex instead of minting a
        # handle per (rank, thread) instance
        all_rank_ids = np.arange(nprocs, dtype=np.int64)
        vids = V.ids()
        rank_lists = V.values("imbalanced_ranks")
        chunks = []
        for vid, ranks in zip(vids, rank_lists):
            if all_ranks or not ranks:
                rank_ids = all_rank_ids
            else:
                rank_ids = np.asarray(
                    [r for r in ranks if 0 <= r < nprocs], dtype=np.int64
                )
            flows = (rank_ids[:, None] * nthreads + threads[None, :]).ravel()
            chunks.append(flows * ntd + vid)
        if not chunks:
            return VertexSet()
        return VertexSet.from_ids(pv, np.concatenate(chunks))

    # ------------------------------------------------------------------
    # built-in passes (high-level API)
    # ------------------------------------------------------------------
    def filter(self, V: VertexSet, **kwargs: Any) -> VertexSet:
        """Name/label/property filter (Listing 1's ``pflow.filter``)."""
        return filter_set(V, **kwargs)

    def comm_filter(self, V: VertexSet) -> VertexSet:
        return comm_filter(V)

    def hotspot_detection(self, V: VertexSet, metric: str = "time", n: int = 10) -> VertexSet:
        return hotspot_detection(V, metric=metric, n=n)

    def imbalance_analysis(self, V: VertexSet, **kwargs: Any) -> VertexSet:
        return imbalance_analysis(V, **kwargs)

    def breakdown_analysis(self, V: VertexSet, **kwargs: Any) -> VertexSet:
        return breakdown_analysis(V, **kwargs)

    def differential_analysis(
        self, V1: VertexSet, V2: VertexSet, scale2: float = 1.0, min_delta: float = 0.0
    ) -> VertexSet:
        return differential_analysis(V1, V2, scale2=scale2, min_delta=min_delta)

    def causal_analysis(self, V: VertexSet, **kwargs: Any) -> Tuple[VertexSet, EdgeSet]:
        return causal_analysis(V, **kwargs)

    def contention_detection(self, V: VertexSet, **kwargs: Any) -> Tuple[VertexSet, EdgeSet]:
        return contention_detection(V, **kwargs)

    def backtracking_analysis(self, V: VertexSet, **kwargs: Any) -> Tuple[VertexSet, EdgeSet]:
        return backtracking_analysis(V, **kwargs)

    def critical_path(self, V: VertexSet, **kwargs: Any):
        return critical_path_analysis(V, **kwargs)

    # -- set operations ------------------------------------------------------
    def union(self, *sets: VertexSet) -> VertexSet:
        return lowlevel.union(*sets)

    def intersection(self, a: VertexSet, b: VertexSet) -> VertexSet:
        return lowlevel.intersection(a, b)

    def difference(self, a: VertexSet, b: VertexSet) -> VertexSet:
        return lowlevel.difference(a, b)

    # -- low-level helpers ----------------------------------------------------
    def vertex(self, *args: Any, **kwargs: Any):
        return lowlevel.vertex(*args, **kwargs)

    def graph(self):
        return lowlevel.graph()

    def lowest_common_ancestor(self, v1, v2, edge_ok=None):
        return lowlevel.lowest_common_ancestor(v1, v2, edge_ok)

    def subgraph_matching(self, pag, sub_pag, candidates=None, limit=None):
        return lowlevel.subgraph_matching(pag, sub_pag, candidates=candidates, limit=limit)

    def perflowgraph(
        self,
        name: str = "perflowgraph",
        jobs: Optional[int] = None,
        cache: Any = None,
        cost_model: Any = None,
        backend: Optional[str] = None,
    ) -> PerFlowGraph:
        """A fresh dataflow graph for declarative pass composition.

        ``jobs`` sets the graph's default worker count for
        :meth:`PerFlowGraph.run` (falling back to this facade's
        ``jobs``, then ``PERFLOW_JOBS``, then serial); ``cache``
        likewise sets the graph's default result-cache spec (falling
        back to this facade's ``cache``, then ``PERFLOW_CACHE``, then
        disabled).  ``backend`` sets the graph's default worker-pool
        flavor (``"thread"`` / ``"process"``; falling back to this
        facade's ``backend``, then ``PERFLOW_BACKEND``, then threads).
        ``cost_model`` (e.g.
        :meth:`repro.obs.ledger.Ledger.cost_model`) becomes the graph's
        default wavefront cost ordering.
        """
        return PerFlowGraph(
            name,
            jobs=jobs if jobs is not None else self.jobs,
            cache=cache if cache is not None else self.cache,
            cost_model=cost_model,
            backend=backend if backend is not None else self.backend,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(
        self,
        *sets: Union[VertexSet, EdgeSet, Sequence[Union[VertexSet, EdgeSet]]],
        attrs: Sequence[str] = ("name", "time", "debug-info"),
        title: str = "PerFlow report",
        file=None,
    ) -> Report:
        """Render sets as a text report (Listing 1's ``pflow.report``).

        Accepts sets or (as in Listing 7) lists of sets.  Pass
        ``file=sys.stdout`` to print; the :class:`Report` is returned
        either way.
        """
        report = Report(title)
        flat = []
        for s in sets:
            if isinstance(s, (VertexSet, EdgeSet)):
                flat.append(s)
            else:
                flat.extend(s)
        for i, s in enumerate(flat):
            kind = "edges" if isinstance(s, EdgeSet) else "vertices"
            report.add_set(s, attrs, heading=f"set {i + 1} ({len(s)} {kind})")
        if file is not None:
            print(report.to_text(), file=file)
        return report

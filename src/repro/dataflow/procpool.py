"""Process-pool wavefront backend: PerFlowGraph execution beyond the GIL.

Selected with ``run(jobs=N, backend="process")`` or
``PERFLOW_BACKEND=process``.  The scheduling core — dependency counts,
the (optionally cost-ordered) ready heap, cache probes, and the
deterministic first error — is the same
:class:`~repro.dataflow.scheduler.WavefrontState` the thread pool uses;
this module only decides *where* a node's function executes and how its
inputs and outputs cross the process boundary.

One run proceeds in five steps:

1. **Publish.**  The coordinator walks the run's input values, collects
   every distinct columnar PAG, and serializes each once — the same
   format-3 byte layout files use — into a
   ``multiprocessing.shared_memory`` block.  A PAG is published only if
   the stamped fingerprint equals the live graph's (i.e. the serialized
   twin is provably content-identical); lossy graphs simply stay
   unpublished and their nodes run on the coordinator.
2. **Fork.**  Workers are forked (``mp_context("fork")``), so the graph
   object — pass closures, lambdas, captured facades and all — is
   inherited through a per-run payload slot (:data:`_PAYLOADS`) and
   never pickled.  A task on the wire is just ``(token, node_id,
   encoded args, want_spans)``.
3. **Attach.**  The first time a worker needs a PAG it attaches the
   block and reconstructs a read-only zero-copy twin with
   :func:`~repro.pag.formats.format3.load_format3_buffer`: columns are
   lazy numpy views over shared pages (the ``SegmentBacking`` path mmap
   loading uses), copy-on-write promotion stays local to the worker,
   and the twin's header-seeded fingerprint is verified against the
   published one.  The worker immediately unregisters the segment from
   its ``resource_tracker`` — the parent owns the unlink.
4. **Transfer.**  Arguments and results cross as the cache's wire form
   (:class:`~repro.cache.store.CachedValue`): ``VertexSet``/``EdgeSet``
   values travel as ``(kind, fingerprint, id-array)`` references and
   rebind to the receiver's live graph, raw PAG values as fingerprint
   markers.  Anything that cannot cross — an unpicklable value, a set
   over a PAG mutated since publication (its fingerprint no longer
   matches the published image) — degrades that node to coordinator
   execution instead of failing the run, so *every* pipeline keeps
   serial-equivalent semantics under this backend.
5. **Merge.**  With tracing enabled, each worker records its node span
   (plus any library-internal spans) in a private recorder and ships
   the flattened batch home; the parent replays it under the pipeline
   span via :meth:`~repro.obs.trace.SpanRecorder.record_completed`,
   ``tid`` = worker pid.  Fixpoint non-convergence warnings, cache
   stores, and the ``dataflow.fixpoint.nonconverged`` counter all land
   in the parent.

Pinned to the coordinator by construction: input nodes (trivial) and
``cacheable=False`` nodes — the flag marks side effects / hidden state
(closure accumulators, in-place vertex annotation), which must happen
in the parent process to be visible to the rest of the run.

Failure taxonomy (all :class:`ProcPoolError`, a ``RuntimeError``):

* a node's own exception re-raises with serial-equivalent first-error
  semantics, exactly like the thread pool;
* :class:`WorkerCrashed` — a worker died without reporting (SIGKILL,
  OOM); names the lowest-id node that was in flight;
* :class:`ShmAttachError` — a worker could not attach or validate a
  published segment (environmental, fails the run);
* :class:`NotTransferable` — internal signal for step 4's degradation;
  callers never see it escape ``run()``.

Shared-memory lifecycle: blocks are created in ``publish``, unlinked by
the parent in a ``finally`` after the pool has shut down — a crashed
run leaks nothing (asserted by ``tests/test_procpool_faults.py``).
"""

from __future__ import annotations

import gc
import itertools
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.cache.keys import Uncacheable
from repro.cache.store import CachedValue, CacheMiss, decode_value, encode_value
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.pag.formats.format3 import (
    load_format3_buffer,
    read_header_buffer,
    write_format3,
)
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.graph import PerFlowGraph

__all__ = [
    "ProcPoolError",
    "WorkerCrashed",
    "ShmAttachError",
    "NotTransferable",
    "collect_pags",
    "publish_pags",
    "run_procpool",
]

_LOG = get_logger("dataflow.procpool")


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
class ProcPoolError(RuntimeError):
    """Base class for process-backend infrastructure failures."""


class WorkerCrashed(ProcPoolError):
    """A worker process died without reporting a result (SIGKILL, OOM)."""


class ShmAttachError(ProcPoolError):
    """A worker could not attach or validate a published PAG segment."""


class NotTransferable(ProcPoolError):
    """A value cannot cross the process boundary (degrade to inline)."""


# ----------------------------------------------------------------------
# per-run payloads (fork-inherited; never pickled)
# ----------------------------------------------------------------------
@dataclass
class _Payload:
    graph: "PerFlowGraph"
    #: parent fingerprint -> shared-memory block name.
    shm_names: Dict[str, str]


_TOKENS = itertools.count(1)

#: token -> payload, set by the coordinator for the duration of a run.
#: ProcessPoolExecutor forks workers lazily (at submit time), so the
#: slot must stay populated for the whole run; the token key keeps
#: concurrent runs in one process from clobbering each other.
_PAYLOADS: Dict[int, _Payload] = {}

#: worker-side: token -> materialized state (graph + attached twins).
_WORKER_STATES: Dict[int, "_WorkerState"] = {}


# ----------------------------------------------------------------------
# publish: PAGs -> shared memory (coordinator side)
# ----------------------------------------------------------------------
def collect_pags(value: Any, out: Optional[Dict[str, PAG]] = None) -> Dict[str, PAG]:
    """Distinct columnar PAGs reachable from ``value``, by fingerprint.

    Walks sets (their backing graph), raw PAG values, and
    tuple/list/dict containers.  Legacy-mode sets (no backing graph)
    contribute nothing — they cannot travel by reference anyway.
    """
    if out is None:
        out = {}
    if isinstance(value, PAG):
        out.setdefault(value.fingerprint(), value)
    elif isinstance(value, (VertexSet, EdgeSet)):
        if value._els is None and value._pag is not None:
            pag = value._pag
            out.setdefault(pag.fingerprint(), pag)
    elif isinstance(value, (tuple, list)):
        for item in value:
            collect_pags(item, out)
    elif isinstance(value, dict):
        for item in value.values():
            collect_pags(item, out)
    return out


class _ShmSink:
    """A ``write_format3`` byte sink appending into a shared block."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: memoryview):
        self.buf = buf
        self.pos = 0

    def __call__(self, chunk: bytes) -> None:
        n = len(chunk)
        self.buf[self.pos : self.pos + n] = chunk
        self.pos += n


def publish_pags(pags: Dict[str, PAG]) -> Dict[str, SharedMemory]:
    """Serialize each PAG once into a fresh shared-memory block.

    Returns ``{parent fingerprint: SharedMemory}`` for every graph whose
    format-3 image round-trips to the *same* fingerprint; graphs that
    would not (non-serializable metadata or object cells) are skipped —
    their nodes degrade to coordinator execution rather than risk a
    worker computing on a lossy twin.  The caller owns every returned
    block and must ``close()`` + ``unlink()`` them; on error this
    function cleans up anything it already created.
    """
    segments: Dict[str, SharedMemory] = {}
    try:
        for fp, pag in pags.items():
            # Pass 1 counts bytes, pass 2 streams into the block.
            size = 0

            def count(chunk: bytes) -> None:
                nonlocal size
                size += len(chunk)

            write_format3(pag, count, include_per_rank=True)
            shm = SharedMemory(create=True, size=size)
            try:
                write_format3(pag, _ShmSink(shm.buf), include_per_rank=True)
                stamped = read_header_buffer(shm.buf, source=shm.name)["fingerprint"]
            except BaseException:
                shm.close()
                shm.unlink()
                raise
            if stamped != fp:
                # The serialized twin would not be content-identical
                # (e.g. metadata that json round-tripping drops).
                shm.close()
                shm.unlink()
                _metrics.counter("dataflow.procpool.unpublishable").inc()
                _LOG.debug(
                    "PAG %r not published: serialized fingerprint %s != live %s",
                    pag.name,
                    stamped[:12],
                    fp[:12],
                )
                continue
            segments[fp] = shm
    except BaseException:
        unpublish_pags(segments)
        raise
    return segments


def unpublish_pags(segments: Dict[str, SharedMemory]) -> None:
    """Close and unlink every published block (idempotent best effort)."""
    for shm in segments.values():
        for step in (shm.close, shm.unlink):
            try:
                step()
            except OSError:  # pragma: no cover - already gone
                pass
    segments.clear()


# ----------------------------------------------------------------------
# transfer: values <-> the cache's wire form
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PagMarker:
    """Stand-in for a raw PAG value inside a transferred payload."""

    fingerprint: str


def _swap_pags_out(value: Any, fps: Any) -> Any:
    """Replace raw PAG values with fingerprint markers (pre-encode walk)."""
    if isinstance(value, PAG):
        fp = value.fingerprint()
        if fp not in fps:
            raise NotTransferable(
                f"PAG {value.name!r} ({fp[:12]}…) is not published in shared memory"
            )
        return _PagMarker(fp)
    if isinstance(value, tuple):
        return tuple(_swap_pags_out(v, fps) for v in value)
    if isinstance(value, list):
        return [_swap_pags_out(v, fps) for v in value]
    if isinstance(value, dict):
        return {k: _swap_pags_out(v, fps) for k, v in value.items()}
    return value


def _swap_pags_in(value: Any, registry: Any) -> Any:
    """Replace fingerprint markers with live graphs (post-decode walk)."""
    if isinstance(value, _PagMarker):
        pag = registry.get(value.fingerprint)
        if pag is None:
            raise NotTransferable(
                f"no live PAG with fingerprint {value.fingerprint[:12]}…"
            )
        return pag
    if isinstance(value, tuple):
        return tuple(_swap_pags_in(v, registry) for v in value)
    if isinstance(value, list):
        return [_swap_pags_in(v, registry) for v in value]
    if isinstance(value, dict):
        return {k: _swap_pags_in(v, registry) for k, v in value.items()}
    return value


def encode_transfer(value: Any, fps: Any) -> CachedValue:
    """Encode a value for the wire; raises :class:`NotTransferable`.

    ``fps`` is the set of published fingerprints: every set reference
    and every raw PAG must resolve against it on the other side, so
    anything bound to an unpublished (or since-mutated — its current
    fingerprint no longer matches the published image) graph refuses to
    travel here rather than mis-rebinding there.
    """
    try:
        entry = encode_value(_swap_pags_out(value, fps))
    except Uncacheable as exc:
        raise NotTransferable(str(exc)) from exc
    for kind, fp, _ids in entry.set_refs:
        if fp is not None and fp not in fps:
            raise NotTransferable(
                f"a {'vertex' if kind == 'v' else 'edge'} set is bound to a "
                f"PAG ({fp[:12]}…) that is not published in shared memory"
            )
    return entry


def decode_transfer(entry: CachedValue, registry: Any) -> Any:
    """Rebind a wire value against ``registry`` (fingerprint -> PAG)."""
    try:
        value = decode_value(entry, registry)
    except CacheMiss as exc:
        raise NotTransferable(str(exc)) from exc
    return _swap_pags_in(value, registry)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _attach_segment(name: str, fp: str) -> Tuple[SharedMemory, PAG]:
    """Attach one published block and reconstruct its read-only twin."""
    try:
        shm = SharedMemory(name=name)
    except (OSError, ValueError) as exc:
        raise ShmAttachError(
            f"cannot attach shared-memory segment {name!r}: {exc}"
        ) from exc
    # Python's SharedMemory registers every attach with the resource
    # tracker.  Workers are forked, so they share the parent's tracker
    # daemon: the attach-side registration dedupes against the parent's
    # create-side one, and the parent's unlink clears it for everyone.
    # (Under a spawn context each worker would own a tracker that
    # unlinks the block at worker exit — one reason this backend
    # requires fork.)
    pag = None
    failure = cause = None
    try:
        pag = load_format3_buffer(shm.buf, source=f"shm://{name}")
        twin_fp = pag.fingerprint()
        if twin_fp != fp:
            failure = (
                f"shared-memory segment {name!r} holds fingerprint "
                f"{twin_fp[:12]}…, expected {fp[:12]}…"
            )
    except Exception as exc:
        cause = exc
        failure = (
            f"shared-memory segment {name!r} does not hold a valid "
            f"format-3 PAG: {exc}"
        )
    if failure is None:
        return shm, pag
    # Drop the half-built twin before closing — its views point into
    # shm.buf and close() refuses while they are exported.  A traceback
    # (the load failure's) can still pin stray views, so a BufferError
    # here is tolerated: the parent's unlink is the authoritative
    # cleanup, and this process is about to drop the mapping anyway.
    pag = None
    gc.collect()
    try:
        shm.close()
    except BufferError:  # pragma: no cover - traceback-pinned views
        pass
    raise ShmAttachError(failure) from cause


class _AttachRegistry:
    """Worker-side ``fingerprint -> live twin``, attaching lazily.

    Quacks like the dict :func:`~repro.cache.store.decode_value`
    expects (``.get``).  Attached blocks are kept open for the worker's
    lifetime — the twins' numpy views point into them.
    """

    def __init__(self, shm_names: Dict[str, str]):
        self._names = dict(shm_names)
        self._pags: Dict[str, PAG] = {}
        self._shms: List[SharedMemory] = []

    def get(self, fp: str, default: Any = None) -> Any:
        pag = self._pags.get(fp)
        if pag is not None:
            return pag
        name = self._names.get(fp)
        if name is None:
            return default
        shm, pag = _attach_segment(name, fp)
        self._shms.append(shm)
        self._pags[fp] = pag
        return pag


class _WorkerState:
    __slots__ = ("graph", "registry", "fps")

    def __init__(self, payload: _Payload):
        self.graph = payload.graph
        self.registry = _AttachRegistry(payload.shm_names)
        self.fps = frozenset(payload.shm_names)


def _worker_init(token: int) -> None:
    """Pool initializer: verify the fork-inherited payload arrived."""
    if token not in _PAYLOADS:  # pragma: no cover - fork guarantees it
        raise ProcPoolError(
            "worker has no fork-inherited run payload; the process "
            "backend requires the fork start method"
        )


def _flatten_spans(rec: Any) -> List[Dict[str, Any]]:
    """A recorder's span forest as a flat, picklable, preorder list."""
    out: List[Dict[str, Any]] = []

    def emit(sp: Any, parent_idx: Optional[int]) -> None:
        idx = len(out)
        out.append(
            {
                "name": sp.name,
                "cat": sp.category,
                "args": _trace._json_args(sp.args),
                "t0": sp.t_start,
                "t1": sp.t_end,
                "parent": parent_idx,
            }
        )
        for child in sp.children:
            emit(child, idx)

    for root in rec.roots:
        emit(root, None)
    return out


def _worker_run(
    token: int, nid: int, entry: CachedValue, want_spans: bool
) -> Tuple[CachedValue, Dict[str, Any]]:
    """Execute one node in a worker; returns (encoded result, meta).

    ``meta`` carries the worker pid, fixpoint ``extra`` (iterations /
    converged), and — when the parent is tracing — the flattened span
    batch to replay into the parent recorder.
    """
    from repro.dataflow.graph import _size_of, _sum_sizes

    state = _WORKER_STATES.get(token)
    if state is None:
        payload = _PAYLOADS.get(token)
        if payload is None:  # pragma: no cover - fork guarantees it
            raise ProcPoolError(
                "worker has no fork-inherited run payload; the process "
                "backend requires the fork start method"
            )
        state = _WORKER_STATES[token] = _WorkerState(payload)
    graph = state.graph
    node = graph._nodes[nid]
    args = list(decode_transfer(entry, state.registry))
    meta: Dict[str, Any] = {"pid": os.getpid()}

    def execute() -> Tuple[Any, Dict[str, Any]]:
        with _trace.span(
            f"node:{node.name}",
            category=f"dataflow.{node.kind}",
            node_id=node.node_id,
            worker=f"pid-{os.getpid()}",
        ) as sp:
            value, extra = graph._apply_node(node, args)
            if sp:
                sp.set(in_size=_sum_sizes(args), out_size=_size_of(value), **extra)
        return value, extra

    if want_spans:
        rec = _trace.SpanRecorder()
        with _trace.scoped_recorder(rec):
            value, extra = execute()
        meta["spans"] = _flatten_spans(rec)
    else:
        value, extra = execute()
    meta["extra"] = extra
    try:
        result = encode_transfer(value, state.fps)
    except NotTransferable:
        raise
    except Exception as exc:  # defensive: never hang the future
        raise NotTransferable(f"result of node {node.name!r} failed to encode: {exc}") from exc
    return result, meta


# ----------------------------------------------------------------------
# coordinator driver
# ----------------------------------------------------------------------
def _merge_spans(
    batch: List[Dict[str, Any]], parent: Any, pid: int
) -> List[Any]:
    """Replay a worker's span batch into the parent recorder."""
    rec = _trace.get_recorder()
    if not batch or not isinstance(rec, _trace.SpanRecorder):
        return []
    built: List[Any] = []
    for item in batch:
        pspan = built[item["parent"]] if item["parent"] is not None else parent
        built.append(
            rec.record_completed(
                item["name"],
                category=item["cat"],
                parent=pspan,
                args=item["args"],
                t_start=item["t0"],
                t_end=item["t1"],
                tid=pid,
            )
        )
    return built


def run_procpool(
    graph: "PerFlowGraph",
    inputs: Dict[str, Any],
    jobs: int,
    session: Any = None,
    cost_model: Any = None,
) -> List[Any]:
    """Execute ``graph`` on ``jobs`` forked worker processes.

    Same contract as :func:`~repro.dataflow.scheduler.run_wavefront`
    (per-node values, serial-equivalent results and first error, cache
    probes/stores on the coordinator) with node functions running in
    forked workers — see the module docstring for the architecture.
    """
    from repro.dataflow.scheduler import WavefrontState

    state = WavefrontState(graph, inputs, session=session, cost_model=cost_model)
    nodes = state.nodes
    want_spans = _trace.enabled()

    pags = {}
    for value in inputs.values():
        collect_pags(value, pags)
    with _trace.span("procpool.publish", category="dataflow") as psp:
        segments = publish_pags(pags)
        shm_bytes = sum(shm.size for shm in segments.values())
        if psp:
            psp.set(pags=len(pags), segments=len(segments), bytes=shm_bytes)
    # Decode registry: published graphs by their live fingerprint (the
    # key workers rebind against is identical by construction).
    registry = {fp: pags[fp] for fp in segments}
    fps = frozenset(segments)

    token = next(_TOKENS)
    _PAYLOADS[token] = _Payload(
        graph=graph, shm_names={fp: shm.name for fp, shm in segments.items()}
    )

    inline_count = 0
    worker_tasks = 0
    transfer_bytes = 0
    crashes = 0
    fatal: Optional[BaseException] = None

    def run_inline(nid: int) -> None:
        """Execute a node on the coordinator (pinned or degraded)."""
        nonlocal inline_count
        inline_count += 1
        node = nodes[nid]
        try:
            value = graph._execute_node(
                node,
                state.resolve,
                inputs,
                parent=state.parent,
                worker="coordinator" if node.kind != "input" else None,
                session=session,
                probe=False,
            )
        except BaseException as exc:
            state.fail(nid, exc)
            return
        state.complete(nid, value)

    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=get_context("fork"),
            initializer=_worker_init,
            initargs=(token,),
        ) as pool:
            running: Dict[Any, int] = {}  # future -> node_id

            def submit_ready() -> None:
                nonlocal fatal, transfer_bytes, worker_tasks
                nid = state.next_ready()
                while nid is not None:
                    node = nodes[nid]
                    if fatal is not None or node.kind == "input" or not node.cacheable:
                        # After a fatal infrastructure error only pinned
                        # execution remains meaningful; input and
                        # side-effecting nodes always stay in the parent.
                        run_inline(nid)
                    else:
                        try:
                            entry = encode_transfer(
                                tuple(state.resolve_args(nid)), fps
                            )
                        except NotTransferable:
                            run_inline(nid)
                        else:
                            transfer_bytes += entry.nbytes
                            try:
                                fut = pool.submit(
                                    _worker_run, token, nid, entry, want_spans
                                )
                            except BrokenProcessPool as exc:
                                if fatal is None:
                                    fatal = WorkerCrashed(
                                        "worker pool broke before node "
                                        f"{nid} ({node.name!r}) could be "
                                        f"submitted: {exc}"
                                    )
                                run_inline(nid)
                            else:
                                worker_tasks += 1
                                running[fut] = nid
                    nid = state.next_ready()

            def finish_worker(nid: int, entry: CachedValue, meta: Dict[str, Any]) -> None:
                nonlocal transfer_bytes
                node = nodes[nid]
                value = decode_transfer(entry, registry)  # may raise NotTransferable
                transfer_bytes += entry.nbytes
                extra = meta.get("extra") or {}
                if extra.get("converged") is False:
                    graph._note_nonconverged(
                        node, extra.get("iterations", node.max_iters)
                    )
                merged = _merge_spans(
                    meta.get("spans") or [], state.parent, meta.get("pid", 0)
                )
                if session is not None:
                    for sp in merged:
                        if sp.name == f"node:{node.name}":
                            sp.set(cache_hit=False)
                    session.store(node, value)
                state.complete(nid, value)

            submit_ready()
            while running:
                done, _ = wait(set(running), return_when=FIRST_COMPLETED)
                for fut in done:
                    nid = running.pop(fut)
                    exc = fut.exception()
                    if exc is None:
                        entry, meta = fut.result()
                        try:
                            finish_worker(nid, entry, meta)
                        except NotTransferable:
                            run_inline(nid)
                    elif isinstance(exc, NotTransferable):
                        run_inline(nid)
                    elif isinstance(exc, BrokenProcessPool):
                        crashes += 1
                        if fatal is None:
                            fatal = WorkerCrashed(
                                f"worker process died while node {nid} "
                                f"({nodes[nid].name!r}) was in flight"
                            )
                    elif isinstance(exc, ShmAttachError):
                        if fatal is None:
                            fatal = exc
                    else:
                        state.fail(nid, exc)
                submit_ready()
                state.note_wavefront(len(running))
    finally:
        _PAYLOADS.pop(token, None)
        unpublish_pags(segments)

    state.emit_metrics(jobs)
    _metrics.gauge("dataflow.procpool.jobs").set(jobs)
    _metrics.counter("dataflow.procpool.tasks").inc(worker_tasks)
    _metrics.counter("dataflow.procpool.inline").inc(inline_count)
    _metrics.counter("dataflow.procpool.shm_segments").inc(len(registry))
    _metrics.counter("dataflow.procpool.shm_bytes").inc(shm_bytes)
    _metrics.counter("dataflow.procpool.transfer_bytes").inc(transfer_bytes)
    if crashes:
        _metrics.counter("dataflow.procpool.crashes").inc(crashes)
    if state.errors:
        state.raise_first_error()
    if fatal is not None:
        raise fatal
    return state.values

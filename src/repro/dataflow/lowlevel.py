"""Low-level API surface (paper §4.3.1).

Everything the paper's listings reference as ``pflow.<thing>`` when
writing user-defined passes: graph-operation helpers, graph algorithms,
set operations, and the type constants.  The :class:`PerFlow` facade
re-exports all of it, so ``pflow.lowest_common_ancestor(v1, v2)``
(Listing 5) and ``pflow.COLL_COMM`` (Listing 7) work verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.algorithms.lca import lowest_common_ancestor as _lca
from repro.algorithms.subgraph import Embedding, PatternGraph, subgraph_matching as _match
from repro.pag.edge import Edge, EdgeLabel
from repro.pag.graph import PAG
from repro.pag.sets import IN_EDGE, OUT_EDGE, EdgeSet, VertexSet
from repro.pag.vertex import Vertex, VertexLabel

# ---------------------------------------------------------------------------
# type constants (Listing 7: pflow.MPI, pflow.LOOP, pflow.BRANCH, ...)
# ---------------------------------------------------------------------------
#: Vertex ``type`` values (compare against ``v["type"]``).
MPI = "mpi"
LOOP = VertexLabel.LOOP.value
BRANCH = VertexLabel.BRANCH.value
FUNCTION = VertexLabel.FUNCTION.value
CALL = VertexLabel.CALL.value
INSTRUCTION = VertexLabel.INSTRUCTION.value

#: Edge type values for ``es.select(type=...)``.  Control and data flow
#: both travel on intra-procedural edges in this implementation, so the
#: two constants alias the same label (the selection semantics of
#: Listing 7 are preserved: non-communication in-edges).
COMM = EdgeLabel.INTER_PROCESS
CTRL_FLOW = EdgeLabel.INTRA_PROCEDURAL
DATA_FLOW = EdgeLabel.INTRA_PROCEDURAL
CALL_EDGE = EdgeLabel.INTER_PROCEDURAL
THREAD_DEP = EdgeLabel.INTER_THREAD

#: Collective communication names (Listing 7's pflow.COLL_COMM).
COLL_COMM = (
    "MPI_Allreduce",
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Alltoall",
    "MPI_Allgather",
    # Fortran bindings as the case studies print them:
    "mpi_allreduce_",
    "mpi_barrier_",
    "mpi_bcast_",
    "mpi_reduce_",
)


# ---------------------------------------------------------------------------
# graph operations
# ---------------------------------------------------------------------------
def vertex(name: str = "", label: VertexLabel = VertexLabel.INSTRUCTION) -> Vertex:
    """A detached result vertex (Listing 4 builds difference vertices
    this way).  Detached vertices have id -1 and no owning PAG."""
    return Vertex(-1, label, name)


def graph() -> PatternGraph:
    """A fresh pattern graph (Listing 6's ``pflow.graph()``)."""
    return PatternGraph()


# ---------------------------------------------------------------------------
# graph algorithms
# ---------------------------------------------------------------------------
def lowest_common_ancestor(
    v1: Vertex, v2: Vertex, edge_ok=None
) -> Tuple[Optional[Vertex], List[Edge]]:
    """LCA of two vertices of the same PAG (Listing 5)."""
    if v1.pag is None or v1.pag is not v2.pag:
        raise ValueError("LCA requires two vertices of the same PAG")
    return _lca(v1.pag, v1, v2, edge_ok)


def subgraph_matching(
    pag: PAG,
    sub_pag: PatternGraph,
    candidates: Optional[Iterable[Vertex]] = None,
    limit: Optional[int] = None,
) -> Tuple[VertexSet, EdgeSet]:
    """All embeddings of ``sub_pag`` in ``pag`` (Listing 6).

    Returns the union of embedded vertices and edges (``V_ebd, E_ebd``).
    """
    embeddings: List[Embedding] = _match(pag, sub_pag, candidates=candidates, limit=limit)
    vs: List[Vertex] = []
    es: List[Edge] = []
    for emb in embeddings:
        vs.extend(emb.vertices.values())
        es.extend(emb.edges)
    return VertexSet(vs), EdgeSet(es)


# ---------------------------------------------------------------------------
# set operations
# ---------------------------------------------------------------------------
def union(*sets: VertexSet) -> VertexSet:
    """Union preserving first-appearance order (Listing 7's pflow.union)."""
    if not sets:
        return VertexSet([])
    return sets[0].union(*sets[1:])


def intersection(a: VertexSet, b: VertexSet) -> VertexSet:
    return a.intersection(b)


def difference(a: VertexSet, b: VertexSet) -> VertexSet:
    return a.difference(b)


__all__ = [
    "MPI",
    "LOOP",
    "BRANCH",
    "FUNCTION",
    "CALL",
    "INSTRUCTION",
    "COMM",
    "CTRL_FLOW",
    "DATA_FLOW",
    "CALL_EDGE",
    "THREAD_DEP",
    "COLL_COMM",
    "IN_EDGE",
    "OUT_EDGE",
    "vertex",
    "graph",
    "lowest_common_ancestor",
    "subgraph_matching",
    "union",
    "intersection",
    "difference",
]

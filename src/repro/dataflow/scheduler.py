"""Wavefront scheduler: parallel PerFlowGraph execution (``jobs > 1``).

The PerFlowGraph is a DAG whose edges always point from lower to higher
node ids (construction order guarantees acyclicity), so the classic
dependency-counting wavefront applies directly: every node carries a
count of unfinished dependencies; nodes whose count is zero form the
*ready set* and are submitted to a ``ThreadPoolExecutor``; each
completion decrements its dependents' counts and releases the newly
ready ones.  Independent branches of the pipeline — the very structure
the paper's dataflow abstraction exposes — execute concurrently, while
chains still serialize on their data dependencies.

Semantics are observably identical to the serial sweep in
:meth:`~repro.dataflow.graph.PerFlowGraph.run`:

* **Same results.**  Each node runs exactly once with the same resolved
  input values, so the ``{name: output}`` mapping is value-identical
  (pure passes) to serial execution.  Fixpoint nodes iterate inside a
  single worker to the same ``_stable_key`` fixed point.
* **Deterministic first error.**  The serial sweep surfaces the failing
  node with the smallest node id whose dependencies all succeeded
  (everything after it never runs).  The wavefront reproduces that
  exactly: after a failure it keeps executing only nodes with a
  *smaller* id than the best failure seen so far (only those can
  precede it serially — every dependency edge points id-upward), then
  re-raises the winning node's original exception.  Nodes downstream of
  a failure, and ready nodes with larger ids, are cancelled without
  running.
* **Same observability, plus scheduler metrics.**  One ``node:<name>``
  span per node, parented under the ``pipeline:<name>`` span across
  threads and tagged with the executing ``worker``; gauges
  ``dataflow.scheduler.jobs`` and ``dataflow.scheduler.ready_max`` (the
  widest observed wavefront) and counter
  ``dataflow.scheduler.nodes_parallel`` (nodes executed by the parallel
  path) land in the metrics registry.

Thread-safety contract: passes run concurrently only when they are
dependency-independent, so any pass that touches shared mutable state
must synchronize it.  The built-in set passes are pure readers of the
columnar PAG (bulk numpy reads are shared-read-safe), which is why the
built-in paradigms can opt in wholesale.

``jobs`` resolution (:func:`resolve_jobs`): an explicit argument wins,
then the ``PERFLOW_JOBS`` environment variable, then ``1`` (serial).

**Cost-ordered scheduling** (the first step of the pipeline-optimizer
roadmap item): when a ``cost_model`` is supplied — anything with a
``cost(name) -> seconds`` method, e.g.
:meth:`repro.obs.ledger.Ledger.cost_model`, or a plain name→seconds
mapping — the ready heap orders by *descending measured cost* instead
of node id, so the longest-running independent nodes start first and
the critical path shrinks (classic LPT list scheduling).  Results and
the deterministic first error are unaffected: ordering among ready
nodes was never observable in outputs, and error selection still picks
the smallest failing node id.
"""

from __future__ import annotations

import heapq
import os
import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Any, Dict, List

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.graph import PerFlowGraph

__all__ = ["ENV_JOBS", "resolve_jobs", "run_wavefront"]

#: Environment variable supplying the default worker count.
ENV_JOBS = "PERFLOW_JOBS"

_LOG = get_logger("dataflow.scheduler")


def resolve_jobs(jobs: Any = None) -> int:
    """Resolve a ``jobs`` request to a worker count (``>= 1``).

    ``None`` falls back to the ``PERFLOW_JOBS`` environment variable,
    and to ``1`` (serial execution) when that is unset or empty.
    Anything that is not a positive integer raises ``ValueError`` — a
    silently clamped typo would mask the difference between "serial on
    purpose" and "parallel as configured".
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_JOBS} must be a positive integer, got {raw!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"{ENV_JOBS} must be >= 1, got {jobs}")
        return jobs
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _lookup_cost(cost_model: Any, name: str) -> float:
    """Measured cost (seconds) of a node name; 0.0 when unknown.

    Accepts anything with a ``cost(name)`` method
    (:class:`repro.obs.ledger.CostModel`) or a plain mapping.  Never
    raises — a broken cost model degrades to arrival order, it must not
    break a working pipeline.
    """
    try:
        getter = getattr(cost_model, "cost", None)
        if getter is not None:
            return float(getter(name))
        return float(cost_model.get(name, 0.0))
    except Exception:
        return 0.0


def run_wavefront(
    graph: "PerFlowGraph",
    inputs: Dict[str, Any],
    jobs: int,
    session: Any = None,
    cost_model: Any = None,
) -> List[Any]:
    """Execute ``graph`` on ``jobs`` worker threads; returns per-node values.

    Called by :meth:`PerFlowGraph.run` after the pipeline check, with
    the same ``inputs`` mapping the serial sweep would use.  Raises the
    serial-equivalent first error (see the module docstring) after all
    in-flight work has drained — no orphaned futures survive a failure.

    ``session`` (a :class:`~repro.cache.CacheSession`) enables the
    result cache: each ready pass/fixpoint node is probed on the
    coordinator thread *before* submission, and a hit marks the node
    complete — recording its span and releasing its dependents —
    without ever occupying a pool worker.  Missed nodes execute with
    ``probe=False`` (the memoized key is reused for the store).

    ``cost_model`` switches the ready heap from node-id order to
    descending measured cost (see the module docstring) — purely a
    submission-order heuristic, results and error semantics unchanged.
    """
    nodes = graph._nodes
    n = len(nodes)
    # Dependency edges always point id-upward; duplicate refs to the
    # same producer (e.g. two .out() selections) count once.
    dep_ids = [sorted({ref.node_id for ref in node.inputs}) for node in nodes]
    dependents: List[List[int]] = [[] for _ in range(n)]
    pending = [len(deps) for deps in dep_ids]
    for nid, deps in enumerate(dep_ids):
        for dep in deps:
            dependents[dep].append(nid)

    values: List[Any] = [None] * n

    def resolve(ref: Any) -> Any:
        value = values[ref.node_id]
        if ref.output_index is not None:
            return value[ref.output_index]
        return value

    # The open pipeline span (entered on the calling thread) becomes
    # the explicit parent of every worker-side node span; falsy when
    # tracing is disabled, which _execute_node treats as "no parent".
    pipeline_span = _trace.current_span()
    parent = pipeline_span if pipeline_span else None

    # Heap entries are uniform (priority, node_id) pairs.  Without a
    # cost model the priority IS the node id — identical submission
    # order to the historical int heap.  With one, priority is negated
    # measured cost (largest first), node id as the deterministic tie
    # break.
    if cost_model is not None:

        def prio(nid: int) -> Any:
            return -_lookup_cost(cost_model, nodes[nid].name)

    else:

        def prio(nid: int) -> Any:
            return nid

    ready: List[Any] = [(prio(nid), nid) for nid in range(n) if pending[nid] == 0]
    heapq.heapify(ready)
    running: Dict[Any, int] = {}  # future -> node_id
    errors: List[Any] = []  # (node_id, exception), first-error candidates
    best_error_id = n  # smallest failing node id seen so far
    executed = 0
    cache_hits = 0
    ready_max = len(ready)

    def worker_name() -> str:
        # ThreadPoolExecutor names workers "<prefix>_<k>"; the suffix is
        # the stable worker id within this pool.
        return threading.current_thread().name.rsplit("_", 1)[-1]

    def execute(nid: int) -> Any:
        return graph._execute_node(
            nodes[nid],
            resolve,
            inputs,
            parent=parent,
            worker=worker_name(),
            session=session,
            probe=False,
        )

    def release_dependents(nid: int) -> None:
        for dep in dependents[nid]:
            pending[dep] -= 1
            if pending[dep] == 0:
                heapq.heappush(ready, (prio(dep), dep))

    with ThreadPoolExecutor(
        max_workers=jobs, thread_name_prefix=f"perflow-{graph.name}"
    ) as pool:

        def submit_ready() -> None:
            nonlocal cache_hits
            # After a failure only nodes that could precede it serially
            # (smaller id) may still run.  Larger-id entries are popped
            # and discarded: best_error_id only ever decreases, so a
            # discarded node could never become runnable again — this
            # is exactly the set the id-ordered heap used to strand.
            while ready:
                _, nid = heapq.heappop(ready)
                if nid >= best_error_id:
                    continue
                node = nodes[nid]
                if session is not None and node.kind in ("pass", "fixpoint"):
                    # Probe on the coordinator: a hit completes the node
                    # here — span recorded, dependents released — without
                    # occupying a worker; a miss memoizes the key for the
                    # worker-side store.
                    args = [resolve(r) for r in node.inputs]
                    hit, value = session.probe(node, args)
                    if hit:
                        values[nid] = value
                        cache_hits += 1
                        graph._note_cache_hit(node, args, value, parent=parent)
                        release_dependents(nid)
                        continue
                running[pool.submit(execute, nid)] = nid

        submit_ready()
        while running:
            done, _ = wait(set(running), return_when=FIRST_COMPLETED)
            for fut in done:
                nid = running.pop(fut)
                exc = fut.exception()
                if exc is not None:
                    errors.append((nid, exc))
                    if nid < best_error_id:
                        best_error_id = nid
                    continue
                values[nid] = fut.result()
                executed += 1
                release_dependents(nid)
            submit_ready()
            wavefront = len(running) + len(ready)
            if wavefront > ready_max:
                ready_max = wavefront

    _metrics.gauge("dataflow.scheduler.jobs").set(jobs)
    _metrics.gauge("dataflow.scheduler.ready_max").set(ready_max)
    _metrics.gauge("dataflow.scheduler.cost_ordered").set(
        1 if cost_model is not None else 0
    )
    _metrics.counter("dataflow.scheduler.nodes_parallel").inc(executed)

    if errors:
        cancelled = n - executed - cache_hits - len(errors)
        node_id, exc = min(errors, key=lambda pair: pair[0])
        _LOG.debug(
            "wavefront of PerFlowGraph %r failed at node %d (%r); "
            "%d node(s) cancelled, %d error(s) observed",
            graph.name,
            node_id,
            nodes[node_id].name,
            cancelled,
            len(errors),
        )
        raise exc
    return values

"""Wavefront scheduler: parallel PerFlowGraph execution (``jobs > 1``).

The PerFlowGraph is a DAG whose edges always point from lower to higher
node ids (construction order guarantees acyclicity), so the classic
dependency-counting wavefront applies directly: every node carries a
count of unfinished dependencies; nodes whose count is zero form the
*ready set* and are submitted to a worker pool; each completion
decrements its dependents' counts and releases the newly ready ones.
Independent branches of the pipeline — the very structure the paper's
dataflow abstraction exposes — execute concurrently, while chains still
serialize on their data dependencies.

The dependency-counting / ready-heap / deterministic-first-error core
lives in :class:`WavefrontState` and is **backend-agnostic**: the
thread driver below (:func:`run_wavefront`) and the multiprocessing
driver in :mod:`repro.dataflow.procpool` (:func:`~repro.dataflow.
procpool.run_procpool`) share it verbatim, so both pools provide the
identical scheduling semantics and differ only in where a node's
function executes.

Semantics are observably identical to the serial sweep in
:meth:`~repro.dataflow.graph.PerFlowGraph.run`:

* **Same results.**  Each node runs exactly once with the same resolved
  input values, so the ``{name: output}`` mapping is value-identical
  (pure passes) to serial execution.  Fixpoint nodes iterate inside a
  single worker to the same ``_stable_key`` fixed point.
* **Deterministic first error.**  The serial sweep surfaces the failing
  node with the smallest node id whose dependencies all succeeded
  (everything after it never runs).  The wavefront reproduces that
  exactly: after a failure it keeps executing only nodes with a
  *smaller* id than the best failure seen so far (only those can
  precede it serially — every dependency edge points id-upward), then
  re-raises the winning node's original exception.  Nodes downstream of
  a failure, and ready nodes with larger ids, are cancelled without
  running.
* **Same observability, plus scheduler metrics.**  One ``node:<name>``
  span per node, parented under the ``pipeline:<name>`` span across
  threads and tagged with the executing ``worker``; gauges
  ``dataflow.scheduler.jobs`` and ``dataflow.scheduler.ready_max`` (the
  widest observed wavefront) and counter
  ``dataflow.scheduler.nodes_parallel`` (nodes executed by the parallel
  path) land in the metrics registry.

Thread-safety contract: passes run concurrently only when they are
dependency-independent, so any pass that touches shared mutable state
must synchronize it.  The built-in set passes are pure readers of the
columnar PAG (bulk numpy reads are shared-read-safe), which is why the
built-in paradigms can opt in wholesale.

``jobs`` resolution (:func:`resolve_jobs`): an explicit argument wins,
then the ``PERFLOW_JOBS`` environment variable, then ``1`` (serial).
``backend`` resolution (:func:`resolve_backend`) mirrors it: an
explicit argument wins, then ``PERFLOW_BACKEND``, then ``"thread"``.

**Cost-ordered scheduling** (the first step of the pipeline-optimizer
roadmap item): when a ``cost_model`` is supplied — anything with a
``cost(name) -> seconds`` method, e.g.
:meth:`repro.obs.ledger.Ledger.cost_model`, or a plain name→seconds
mapping — the ready heap orders by *descending measured cost* instead
of node id, so the longest-running independent nodes start first and
the critical path shrinks (classic LPT list scheduling).  Results and
the deterministic first error are unaffected: ordering among ready
nodes was never observable in outputs, and error selection still picks
the smallest failing node id.
"""

from __future__ import annotations

import heapq
import os
import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.graph import PerFlowGraph

__all__ = [
    "ENV_JOBS",
    "ENV_BACKEND",
    "BACKENDS",
    "resolve_jobs",
    "resolve_backend",
    "WavefrontState",
    "run_wavefront",
]

#: Environment variable supplying the default worker count.
ENV_JOBS = "PERFLOW_JOBS"

#: Environment variable supplying the default execution backend.
ENV_BACKEND = "PERFLOW_BACKEND"

#: Supported worker-pool flavors for ``PerFlowGraph.run(backend=…)``.
BACKENDS = ("thread", "process")

_LOG = get_logger("dataflow.scheduler")


def resolve_jobs(jobs: Any = None) -> int:
    """Resolve a ``jobs`` request to a worker count (``>= 1``).

    ``None`` falls back to the ``PERFLOW_JOBS`` environment variable,
    and to ``1`` (serial execution) when that is unset or empty.
    Anything that is not a positive integer raises ``ValueError`` — a
    silently clamped typo would mask the difference between "serial on
    purpose" and "parallel as configured".
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_JOBS} must be a positive integer, got {raw!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"{ENV_JOBS} must be >= 1, got {jobs}")
        return jobs
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_backend(backend: Any = None) -> str:
    """Resolve a ``backend`` request to a pool flavor (``BACKENDS``).

    ``None`` falls back to the ``PERFLOW_BACKEND`` environment
    variable, and to ``"thread"`` when that is unset or empty.
    Anything that is not a known backend name raises ``ValueError`` —
    mirroring :func:`resolve_jobs`, a typo must not silently fall back
    to a different executor.
    """
    source = "backend"
    if backend is None:
        raw = os.environ.get(ENV_BACKEND, "").strip()
        if not raw:
            return "thread"
        backend = raw
        source = ENV_BACKEND
    if isinstance(backend, str):
        name = backend.strip().lower()
        if name in BACKENDS:
            return name
    raise ValueError(
        f"{source} must be one of {', '.join(BACKENDS)}, got {backend!r}"
    )


def _lookup_cost(cost_model: Any, name: str) -> float:
    """Measured cost (seconds) of a node name; 0.0 when unknown.

    Accepts anything with a ``cost(name)`` method
    (:class:`repro.obs.ledger.CostModel`) or a plain mapping.  Never
    raises — a broken cost model degrades to arrival order, it must not
    break a working pipeline.
    """
    try:
        getter = getattr(cost_model, "cost", None)
        if getter is not None:
            return float(getter(name))
        return float(cost_model.get(name, 0.0))
    except Exception:
        return 0.0


class WavefrontState:
    """The backend-agnostic wavefront core, shared by every pool driver.

    Owns everything that makes parallel execution serial-equivalent —
    dependency counting, the (optionally cost-ordered) ready heap, the
    deterministic first-error cut, coordinator-side cache probes, and
    the per-node ``values`` slab — while staying completely ignorant of
    *where* a node's function runs.  A driver's contract is a loop::

        state = WavefrontState(graph, inputs, session, cost_model)
        while work remains:
            nid = state.next_ready()        # None = heap drained
            …execute node nid somewhere…
            state.complete(nid, value)      # or state.fail(nid, exc)
        state.raise_first_error()
        return state.values

    Not thread-safe: drivers call every method from the coordinator
    thread only (workers hand results back through futures).
    """

    def __init__(
        self,
        graph: "PerFlowGraph",
        inputs: Dict[str, Any],
        session: Any = None,
        cost_model: Any = None,
    ):
        self.graph = graph
        self.inputs = inputs
        self.session = session
        self.cost_model = cost_model
        self.nodes = graph._nodes
        n = len(self.nodes)
        self.n = n
        # Dependency edges always point id-upward; duplicate refs to the
        # same producer (e.g. two .out() selections) count once.
        dep_ids = [sorted({ref.node_id for ref in node.inputs}) for node in self.nodes]
        self.dependents: List[List[int]] = [[] for _ in range(n)]
        self.pending = [len(deps) for deps in dep_ids]
        for nid, deps in enumerate(dep_ids):
            for dep in deps:
                self.dependents[dep].append(nid)
        self.values: List[Any] = [None] * n

        # The open pipeline span (entered on the calling thread) becomes
        # the explicit parent of every worker-side node span; falsy when
        # tracing is disabled, which _execute_node treats as "no parent".
        pipeline_span = _trace.current_span()
        self.parent = pipeline_span if pipeline_span else None

        # Heap entries are uniform (priority, node_id) pairs.  Without a
        # cost model the priority IS the node id — identical submission
        # order to the historical int heap.  With one, priority is
        # negated measured cost (largest first), node id as the
        # deterministic tie break.
        if cost_model is not None:

            def prio(nid: int) -> Any:
                return -_lookup_cost(cost_model, self.nodes[nid].name)

        else:

            def prio(nid: int) -> Any:
                return nid

        self._prio: Callable[[int], Any] = prio
        self.ready: List[Any] = [
            (prio(nid), nid) for nid in range(n) if self.pending[nid] == 0
        ]
        heapq.heapify(self.ready)
        self.errors: List[Tuple[int, BaseException]] = []
        self.best_error_id = n  # smallest failing node id seen so far
        self.executed = 0
        self.cache_hits = 0
        self.ready_max = len(self.ready)

    # -- value plumbing ----------------------------------------------------
    def resolve(self, ref: Any) -> Any:
        """The already-computed value a :class:`NodeRef` points at."""
        value = self.values[ref.node_id]
        if ref.output_index is not None:
            return value[ref.output_index]
        return value

    def resolve_args(self, nid: int) -> List[Any]:
        """The resolved positional inputs of node ``nid``."""
        return [self.resolve(r) for r in self.nodes[nid].inputs]

    # -- scheduling --------------------------------------------------------
    def next_ready(self) -> Optional[int]:
        """Pop the next runnable node id; ``None`` when the heap drains.

        Applies the failure cut — after a failure only nodes that could
        precede it serially (smaller id) may still run; larger-id
        entries are popped and discarded, and since ``best_error_id``
        only ever decreases a discarded node could never become
        runnable again.  Also applies the coordinator-side cache probe:
        a hit completes the node right here — span recorded, dependents
        released — without the driver ever seeing it; a miss memoizes
        the key for the post-execution store.
        """
        while self.ready:
            _, nid = heapq.heappop(self.ready)
            if nid >= self.best_error_id:
                continue
            node = self.nodes[nid]
            if self.session is not None and node.kind in ("pass", "fixpoint"):
                args = self.resolve_args(nid)
                hit, value = self.session.probe(node, args)
                if hit:
                    self.values[nid] = value
                    self.cache_hits += 1
                    self.graph._note_cache_hit(node, args, value, parent=self.parent)
                    self._release_dependents(nid)
                    continue
            return nid
        return None

    def _release_dependents(self, nid: int) -> None:
        for dep in self.dependents[nid]:
            self.pending[dep] -= 1
            if self.pending[dep] == 0:
                heapq.heappush(self.ready, (self._prio(dep), dep))

    def complete(self, nid: int, value: Any) -> None:
        """Record a node's result and release its dependents."""
        self.values[nid] = value
        self.executed += 1
        self._release_dependents(nid)

    def fail(self, nid: int, exc: BaseException) -> None:
        """Record a node failure; tightens the first-error cut."""
        self.errors.append((nid, exc))
        if nid < self.best_error_id:
            self.best_error_id = nid

    def note_wavefront(self, in_flight: int) -> None:
        """Track the widest observed wavefront for the metrics gauge."""
        width = in_flight + len(self.ready)
        if width > self.ready_max:
            self.ready_max = width

    # -- completion --------------------------------------------------------
    def raise_first_error(self) -> None:
        """Re-raise the serial-equivalent first error, if any occurred.

        The winning error is the one with the smallest node id — exactly
        the failure the serial sweep would have surfaced.
        """
        if not self.errors:
            return
        cancelled = self.n - self.executed - self.cache_hits - len(self.errors)
        node_id, exc = min(self.errors, key=lambda pair: pair[0])
        _LOG.debug(
            "wavefront of PerFlowGraph %r failed at node %d (%r); "
            "%d node(s) cancelled, %d error(s) observed",
            self.graph.name,
            node_id,
            self.nodes[node_id].name,
            cancelled,
            len(self.errors),
        )
        raise exc

    def emit_metrics(self, jobs: int) -> None:
        """Publish the shared ``dataflow.scheduler.*`` metrics."""
        _metrics.gauge("dataflow.scheduler.jobs").set(jobs)
        _metrics.gauge("dataflow.scheduler.ready_max").set(self.ready_max)
        _metrics.gauge("dataflow.scheduler.cost_ordered").set(
            1 if self.cost_model is not None else 0
        )
        _metrics.counter("dataflow.scheduler.nodes_parallel").inc(self.executed)


def run_wavefront(
    graph: "PerFlowGraph",
    inputs: Dict[str, Any],
    jobs: int,
    session: Any = None,
    cost_model: Any = None,
) -> List[Any]:
    """Execute ``graph`` on ``jobs`` worker threads; returns per-node values.

    Called by :meth:`PerFlowGraph.run` after the pipeline check, with
    the same ``inputs`` mapping the serial sweep would use.  Raises the
    serial-equivalent first error (see the module docstring) after all
    in-flight work has drained — no orphaned futures survive a failure.

    ``session`` (a :class:`~repro.cache.CacheSession`) enables the
    result cache: each ready pass/fixpoint node is probed on the
    coordinator thread *before* submission, and a hit marks the node
    complete — recording its span and releasing its dependents —
    without ever occupying a pool worker.  Missed nodes execute with
    ``probe=False`` (the memoized key is reused for the store).

    ``cost_model`` switches the ready heap from node-id order to
    descending measured cost (see the module docstring) — purely a
    submission-order heuristic, results and error semantics unchanged.
    """
    state = WavefrontState(graph, inputs, session=session, cost_model=cost_model)
    nodes = state.nodes

    def worker_name() -> str:
        # ThreadPoolExecutor names workers "<prefix>_<k>"; the suffix is
        # the stable worker id within this pool.
        return threading.current_thread().name.rsplit("_", 1)[-1]

    def execute(nid: int) -> Any:
        return graph._execute_node(
            nodes[nid],
            state.resolve,
            inputs,
            parent=state.parent,
            worker=worker_name(),
            session=session,
            probe=False,
        )

    with ThreadPoolExecutor(
        max_workers=jobs, thread_name_prefix=f"perflow-{graph.name}"
    ) as pool:
        running: Dict[Any, int] = {}  # future -> node_id

        def submit_ready() -> None:
            nid = state.next_ready()
            while nid is not None:
                running[pool.submit(execute, nid)] = nid
                nid = state.next_ready()

        submit_ready()
        while running:
            done, _ = wait(set(running), return_when=FIRST_COMPLETED)
            for fut in done:
                nid = running.pop(fut)
                exc = fut.exception()
                if exc is not None:
                    state.fail(nid, exc)
                    continue
                state.complete(nid, fut.result())
            submit_ready()
            state.note_wavefront(len(running))

    state.emit_metrics(jobs)
    state.raise_first_error()
    return state.values

"""PerFlowGraph: the dataflow graph of analysis passes (paper §4.1-4.2).

Vertices are passes (analysis sub-tasks); edges carry the sets flowing
between them.  A graph is built by declaring external inputs and adding
pass nodes whose inputs are earlier nodes' outputs — construction order
guarantees acyclicity, and execution is a single topological sweep.

Fixpoint groups express Fig. 11's "repeat until the output set no
longer changes": a sub-pipeline applied iteratively to its own output
until two consecutive iterations agree (by vertex/edge identity) or an
iteration cap is hit.

Execution is serial by default; ``run(jobs=N)`` (or the
``PERFLOW_JOBS`` environment variable) hands the sweep to the
dependency-counting wavefront scheduler in
:mod:`repro.dataflow.scheduler`, which runs independent nodes
concurrently with semantics observably identical to the serial sweep
(same result mapping, same fixpoints, same first error).

Pipelines are *type-checked before execution*: passes carry
:class:`~repro.dataflow.signatures.PassSignature` declarations
(via the ``@signature`` decorator or ``add_pass(signature=...)``), and
:meth:`PerFlowGraph.check` validates arity and set kinds along every
edge, reporting wiring errors as ``PF8##``
:class:`~repro.lint.diagnostics.Diagnostic` objects.  :meth:`run`
checks first and raises :class:`PipelineError` instead of letting a
mis-wired pass die mid-run with a bare ``TypeError``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataflow.signatures import (
    PassSignature,
    SetKind,
    make_signature,
    signature_of,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.obs.trace import span as _span
from repro.pag.sets import EdgeSet, VertexSet

_LOG = get_logger("dataflow.graph")


class PipelineError(TypeError):
    """A pipeline failed its pre-execution check.

    Subclasses :class:`TypeError` because the failure it prevents is the
    mid-run ``TypeError`` a mis-wired pass would have raised; carries
    the structured diagnostics on ``.diagnostics``.
    """

    def __init__(self, name: str, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = list(diagnostics)
        lines = "; ".join(d.format() for d in self.diagnostics[:5])
        extra = len(self.diagnostics) - 5
        super().__init__(
            f"PerFlowGraph {name!r} failed its pipeline check: {lines}"
            + (f" (+{extra} more)" if extra > 0 else "")
        )


@dataclass(frozen=True)
class NodeRef:
    """Reference to one output of a node (passes may return tuples)."""

    node_id: int
    output_index: Optional[int] = None

    def out(self, index: int) -> "NodeRef":
        """Select one element of a multi-output pass's result tuple."""
        return NodeRef(self.node_id, index)


@dataclass
class _Node:
    node_id: int
    name: str
    kind: str  # "input" | "pass" | "fixpoint"
    fn: Optional[Callable] = None
    inputs: Tuple[NodeRef, ...] = ()
    max_iters: int = 10
    #: declared kind for input nodes (ANY = unchecked).
    declared_kind: SetKind = SetKind.ANY
    #: declared signature for pass/fixpoint nodes (None = unchecked).
    signature: Optional[PassSignature] = None
    #: opt-out for impure passes (side effects / hidden state): never
    #: skipped by the result cache (:mod:`repro.cache`).
    cacheable: bool = True


def _coerce_signature(spec: Any, fn: Callable) -> Optional[PassSignature]:
    """Resolve a signature: explicit spec first, then ``fn``'s decoration."""
    if spec is None:
        return signature_of(fn)
    if isinstance(spec, PassSignature):
        return spec
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return make_signature(*spec)
    raise TypeError(
        "signature must be a PassSignature or an (inputs, outputs) pair, "
        f"got {spec!r}"
    )


def _size_of(value: Any) -> Optional[int]:
    """Cardinality of a flowing value for span annotation.

    Sized values report their ``len``; tuples (multi-output passes)
    report the sum of their sized members; scalars report ``None``.
    Only computed while tracing is enabled.
    """
    try:
        return len(value)
    except TypeError:
        pass
    if isinstance(value, tuple):
        total = 0
        for item in value:
            size = _size_of(item)
            if size is not None:
                total += size
        return total
    return None


def _sum_sizes(values: Sequence[Any]) -> Optional[int]:
    sizes = [_size_of(v) for v in values]
    known = [s for s in sizes if s is not None]
    return sum(known) if known else None


def _stable_key(value: Any) -> Any:
    """Identity key for fixpoint comparison.

    Elements are keyed by their PAG's monotonically assigned token rather
    than ``id(pag)`` — interpreter address reuse after a GC could otherwise
    alias elements of a dead PAG with a newly allocated one across fixpoint
    iterations.
    """
    if isinstance(value, (VertexSet, EdgeSet)):
        return frozenset((el._token(), el.id) for el in value)
    if isinstance(value, tuple):
        return tuple(_stable_key(v) for v in value)
    return value


class PerFlowGraph:
    """A dataflow graph of performance-analysis passes."""

    def __init__(
        self,
        name: str = "perflowgraph",
        jobs: Optional[int] = None,
        cache: Any = None,
        cost_model: Any = None,
        backend: Optional[str] = None,
    ):
        self.name = name
        #: default worker count for :meth:`run` (None → ``PERFLOW_JOBS`` → 1).
        self.default_jobs = jobs
        #: default worker-pool flavor for :meth:`run`
        #: (None → ``PERFLOW_BACKEND`` → ``"thread"``); see
        #: :func:`repro.dataflow.scheduler.resolve_backend`.
        self.default_backend = backend
        #: default cache spec for :meth:`run` (None → ``PERFLOW_CACHE`` →
        #: disabled); see :func:`repro.cache.resolve_cache`.
        self.default_cache = cache
        #: default cost model for :meth:`run`: anything with a
        #: ``cost(name) -> seconds`` method (e.g.
        #: :meth:`repro.obs.ledger.Ledger.cost_model`) or a plain
        #: name→seconds mapping; orders the parallel wavefront by
        #: measured cost.
        self.default_cost_model = cost_model
        self._nodes: List[_Node] = []
        self._input_names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def input(self, name: str, kind: Any = None) -> NodeRef:
        """Declare an external input (bound at :meth:`run`).

        ``kind`` optionally types the input (``VertexSet``/``EdgeSet``,
        a kind string, or a :class:`SetKind`) so :meth:`check` can
        verify consumers even before a value is bound.
        """
        if name in self._input_names:
            node = self._nodes[self._input_names[name]]
            if kind is not None and node.declared_kind is SetKind.ANY:
                node.declared_kind = SetKind.of(kind)
            return NodeRef(node.node_id)
        node = _Node(
            len(self._nodes),
            name,
            "input",
            declared_kind=SetKind.of(kind) if kind is not None else SetKind.ANY,
        )
        self._nodes.append(node)
        self._input_names[name] = node.node_id
        return NodeRef(node.node_id)

    def add_pass(
        self,
        fn: Callable,
        *inputs: NodeRef,
        name: Optional[str] = None,
        signature: Any = None,
        cacheable: bool = True,
    ) -> NodeRef:
        """Add a pass node fed by earlier nodes' outputs.

        ``fn`` receives the resolved input values positionally and may
        return anything; tuple results are addressed with
        ``ref.out(i)``.  ``signature`` overrides (or supplies, for
        lambdas) the pass's declared
        :class:`~repro.dataflow.signatures.PassSignature`; by default
        the ``@signature`` decoration on ``fn`` is used, and undeclared
        passes are executed unchecked.  ``cacheable=False`` exempts the
        node from the result cache — required for passes with side
        effects or hidden state (e.g. an accumulator captured in a
        closure) that must run even when their inputs are unchanged.
        """
        for ref in inputs:
            if not (0 <= ref.node_id < len(self._nodes)):
                raise ValueError(f"input {ref} references an unknown node")
        node = _Node(
            len(self._nodes),
            name or getattr(fn, "__name__", "pass"),
            "pass",
            fn=fn,
            inputs=tuple(inputs),
            signature=_coerce_signature(signature, fn),
            cacheable=cacheable,
        )
        self._nodes.append(node)
        return NodeRef(node.node_id)

    def add_fixpoint(
        self,
        fn: Callable,
        initial: NodeRef,
        max_iters: int = 10,
        name: Optional[str] = None,
        signature: Any = None,
        cacheable: bool = True,
    ) -> NodeRef:
        """Apply ``fn`` to its own output until it stops changing.

        ``fn(value) -> value`` where values compare by element identity
        for PAG sets.  This is the loop of Fig. 11 ("detect imbalanced
        vertices and perform causal analysis repeatedly until the output
        set no longer changes").  ``cacheable=False`` exempts the node
        from the result cache (see :meth:`add_pass`).
        """
        if not (0 <= initial.node_id < len(self._nodes)):
            raise ValueError(f"input {initial} references an unknown node")
        node = _Node(
            len(self._nodes),
            name or f"fixpoint({getattr(fn, '__name__', 'pass')})",
            "fixpoint",
            fn=fn,
            inputs=(initial,),
            max_iters=max_iters,
            signature=_coerce_signature(signature, fn),
            cacheable=cacheable,
        )
        self._nodes.append(node)
        return NodeRef(node.node_id)

    # ------------------------------------------------------------------
    # static checking
    # ------------------------------------------------------------------
    def check(self, **bindings: Any) -> List[Diagnostic]:
        """Type-check the pipeline wiring; nothing is executed.

        ``bindings`` optionally maps input names to kinds — a class
        (``VertexSet``/``EdgeSet``), an actual value, a kind string, or
        a :class:`SetKind` — refining inputs declared without a kind.
        Returns ``PF8##`` diagnostics (empty list = well-wired):

        * ``PF801`` — set-kind mismatch along an edge (e.g. an
          ``EdgeSet`` output fed to a ``VertexSet`` input);
        * ``PF802`` — pass arity differs from its declared signature;
        * ``PF803`` — invalid output selection (``ref.out(i)`` beyond
          the producer's declared outputs);
        * ``PF804`` — a binding names no declared input.

        Only declared signatures are enforced; untyped passes and
        inputs stay unchecked, so ad-hoc scalar pipelines keep working.
        """
        diags: List[Diagnostic] = []

        def emit(code: str, message: str, node: _Node) -> None:
            diags.append(
                Diagnostic(
                    code=code,
                    severity=Severity.ERROR,
                    message=message,
                    function=self.name,
                    node=f"{node.name} (node {node.node_id})",
                )
            )

        for bname in sorted(set(bindings) - set(self._input_names)):
            diags.append(
                Diagnostic(
                    code="PF804",
                    severity=Severity.ERROR,
                    message=f"binding {bname!r} names no declared input",
                    function=self.name,
                    node=bname,
                )
            )

        # Kinds each node produces: None = unknown (undeclared pass).
        produced: List[Optional[Tuple[SetKind, ...]]] = []

        def ref_kind(ref: NodeRef, consumer: _Node) -> SetKind:
            kinds = produced[ref.node_id]
            if kinds is None:
                return SetKind.ANY
            if ref.output_index is None:
                # A whole multi-output tuple flowing on one edge is
                # untypable here; single outputs carry their kind.
                return kinds[0] if len(kinds) == 1 else SetKind.ANY
            if ref.output_index >= len(kinds):
                emit(
                    "PF803",
                    f"output {ref.output_index} selected from "
                    f"{self._nodes[ref.node_id].name!r}, which declares "
                    f"{len(kinds)} output(s)",
                    consumer,
                )
                return SetKind.ANY
            return kinds[ref.output_index]

        for node in self._nodes:
            if node.kind == "input":
                kind = node.declared_kind
                if node.name in bindings:
                    bound = SetKind.of(bindings[node.name])
                    if not kind.compatible(bound):
                        emit(
                            "PF801",
                            f"input {node.name!r} is declared {kind} but "
                            f"bound to a {bound}",
                            node,
                        )
                    if kind is SetKind.ANY:
                        kind = bound
                produced.append((kind,))
                continue
            sig = node.signature
            if sig is None:
                for ref in node.inputs:
                    ref_kind(ref, node)  # still validates .out() indices
                produced.append(None)
                continue
            if node.kind == "fixpoint":
                expected_in = (sig.inputs or (SetKind.ANY,))[:1]
            else:
                expected_in = sig.inputs
            if len(node.inputs) != len(expected_in):
                emit(
                    "PF802",
                    f"pass {node.name!r} declares signature {sig} "
                    f"({len(expected_in)} input(s)) but is wired to "
                    f"{len(node.inputs)}",
                    node,
                )
            for i, (ref, want) in enumerate(zip(node.inputs, expected_in)):
                got = ref_kind(ref, node)
                if not want.compatible(got):
                    emit(
                        "PF801",
                        f"input {i} of pass {node.name!r} expects a "
                        f"{want} but is fed a {got} from "
                        f"{self._nodes[ref.node_id].name!r}",
                        node,
                    )
            if node.kind == "fixpoint":
                # fn: value -> value; output kind follows the input edge.
                out = sig.outputs or expected_in
                produced.append(tuple(out))
            else:
                produced.append(sig.outputs if sig.outputs else None)
        return diags

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        jobs: Optional[int] = None,
        cache: Any = None,
        cost_model: Any = None,
        backend: Optional[str] = None,
        **inputs: Any,
    ) -> Dict[str, Any]:
        """Execute the pipeline; returns {node name: output value}.

        Every declared input must be bound by keyword.  The pipeline is
        :meth:`check`-ed against the bound values first — wiring errors
        raise :class:`PipelineError` before any pass runs.  Node names
        are unique-ified with ``#k`` suffixes in the result mapping when
        they collide.

        ``jobs`` selects the executor: ``1`` (the default) is the
        serial topological sweep; ``N > 1`` hands the graph to the
        wavefront scheduler (:mod:`repro.dataflow.scheduler`), which
        runs dependency-free nodes concurrently on ``N`` threads with
        observably identical semantics — same ``{name: output}``
        mapping, same fixpoints, and the same (deterministic) first
        error as the serial sweep.  ``jobs=None`` falls back to the
        graph's ``default_jobs``, then the ``PERFLOW_JOBS`` environment
        variable, then ``1``.  Passes themselves must be thread-safe
        under ``jobs > 1`` (pure set-passes and the columnar PAG's bulk
        reads are; see ``docs/ARCHITECTURE.md``).

        ``backend`` selects the worker-pool flavor for parallel runs:
        ``"thread"`` (the default) shares the process, while
        ``"process"`` executes nodes on forked worker processes
        (:mod:`repro.dataflow.procpool`) — the run's PAGs are published
        once into ``multiprocessing.shared_memory`` blocks that workers
        attach zero-copy and read-only, and pass results travel back as
        the same ``(kind, fingerprint, id-array)`` references the
        result cache uses for rebinding.  Nodes whose arguments or
        results cannot cross the process boundary (unpicklable values,
        sets over a PAG mutated since publication) transparently fall
        back to coordinator execution, so semantics stay serial-
        equivalent for every pipeline.  ``backend=None`` falls back to
        the graph's ``default_backend``, then ``PERFLOW_BACKEND``, then
        ``"thread"``.

        With tracing enabled (:mod:`repro.obs`), the run records one
        ``pipeline:<name>`` span containing a ``pipeline.check`` span
        and one ``node:<name>`` span per node carrying ``in_size`` /
        ``out_size`` args (set cardinalities) and, for fixpoint nodes,
        ``iterations`` / ``converged``; parallel runs additionally tag
        each node span with the executing ``worker``.  A fixpoint that
        exhausts ``max_iters`` without its stable key converging logs a
        warning on the ``repro.dataflow.graph`` logger and bumps the
        ``dataflow.fixpoint.nonconverged`` counter.

        ``cache`` enables the content-addressed result cache
        (:mod:`repro.cache`): ``True`` uses the process-wide default
        cache, a directory path a disk-backed one, a
        :class:`~repro.cache.store.PassCache` is used as-is, ``False``
        disables.  ``cache=None`` falls back to the graph's
        ``default_cache``, then the ``PERFLOW_CACHE`` environment
        variable, then disabled.  Cached nodes are skipped entirely
        (the wavefront never submits them to the pool); every executed
        node's span carries a ``cache_hit`` tag, and hits/misses land
        on the ``dataflow.cache.*`` counters.  Nodes added with
        ``cacheable=False`` always execute.

        ``cost_model`` (default: the graph's ``default_cost_model``)
        orders the parallel wavefront's ready heap by descending
        measured node cost — see
        :func:`repro.dataflow.scheduler.run_wavefront`.  Build one from
        accumulated run history with
        :meth:`repro.obs.ledger.Ledger.cost_model`.  Serial runs ignore
        it (topological order is fixed).
        """
        from repro.cache import CacheSession, resolve_cache
        from repro.dataflow.scheduler import (
            resolve_backend,
            resolve_jobs,
            run_wavefront,
        )

        missing = set(self._input_names) - set(inputs)
        if missing:
            raise ValueError(f"unbound PerFlowGraph inputs: {sorted(missing)}")
        unknown = set(inputs) - set(self._input_names)
        if unknown:
            raise ValueError(f"unknown PerFlowGraph inputs: {sorted(unknown)}")
        njobs = resolve_jobs(jobs if jobs is not None else self.default_jobs)
        backend_name = resolve_backend(
            backend if backend is not None else self.default_backend
        )
        cache_obj = resolve_cache(cache if cache is not None else self.default_cache)
        session = CacheSession(cache_obj) if cache_obj is not None else None
        costs = cost_model if cost_model is not None else self.default_cost_model
        with _span(
            f"pipeline:{self.name}",
            category="dataflow",
            nodes=len(self._nodes),
            jobs=njobs,
            backend=backend_name,
            cached=session is not None,
        ) as psp:
            with _span("pipeline.check", category="dataflow") as csp:
                problems = self.check(**inputs)
                if csp:
                    csp.set(diagnostics=len(problems))
            if problems:
                raise PipelineError(self.name, problems)
            if njobs > 1 and len(self._nodes) > 1:
                if backend_name == "process":
                    from repro.dataflow.procpool import run_procpool

                    values = run_procpool(
                        self, inputs, njobs, session=session, cost_model=costs
                    )
                else:
                    values = run_wavefront(
                        self, inputs, njobs, session=session, cost_model=costs
                    )
            else:
                values = self._run_serial(inputs, session=session)
            if psp and session is not None:
                psp.set(
                    cache_hits=session.hits,
                    cache_misses=session.misses,
                    cache_uncacheable=session.uncacheable,
                )
            named: Dict[str, Any] = {}
            for node in self._nodes:
                key = node.name
                k = 1
                while key in named:
                    k += 1
                    key = f"{node.name}#{k}"
                named[key] = values[node.node_id]
            return named

    def _run_serial(
        self, inputs: Dict[str, Any], session: Any = None
    ) -> List[Any]:
        """The serial topological sweep (``jobs=1``); returns per-node values."""
        values: List[Any] = [None] * len(self._nodes)

        def resolve(ref: NodeRef) -> Any:
            value = values[ref.node_id]
            if ref.output_index is not None:
                return value[ref.output_index]
            return value

        for node in self._nodes:
            values[node.node_id] = self._execute_node(
                node, resolve, inputs, session=session
            )
        return values

    def _apply_fixpoint(self, node: _Node, value: Any) -> Tuple[Any, int, bool]:
        """Iterate a fixpoint node to convergence (or ``max_iters``).

        Returns ``(final value, iterations, converged)``.  Pure compute:
        no spans, no cache, no warning — the caller (serial sweep, a
        pool thread, or a process-backend worker reporting back to the
        coordinator) owns that bookkeeping.
        """
        prev_key = _stable_key(value)
        iterations = 0
        converged = False
        for _ in range(node.max_iters):
            value = node.fn(value)
            iterations += 1
            key = _stable_key(value)
            if key == prev_key:
                converged = True
                break
            prev_key = key
        return value, iterations, converged

    def _apply_node(self, node: _Node, args: Sequence[Any]) -> Tuple[Any, Dict[str, Any]]:
        """Pure compute core of a pass/fixpoint node — no spans, no cache.

        Runs wherever the value is actually produced; returns
        ``(value, extra)`` where ``extra`` carries fixpoint iteration
        metadata (``iterations`` / ``converged``) for the caller's span
        and warning bookkeeping, and is empty for plain passes.
        """
        if node.kind == "pass":
            return node.fn(*args), {}
        value, iterations, converged = self._apply_fixpoint(node, args[0])
        return value, {"iterations": iterations, "converged": converged}

    def _note_nonconverged(self, node: _Node, iterations: int) -> None:
        """Warn + count a fixpoint that exhausted ``max_iters``.

        Coordinator-side bookkeeping: the serial sweep and thread pool
        call it where the fixpoint ran, while the process backend calls
        it in the parent when a worker reports ``converged=False`` — so
        the warning and the ``dataflow.fixpoint.nonconverged`` counter
        always land in the parent process regardless of backend.
        """
        _metrics.counter("dataflow.fixpoint.nonconverged").inc()
        _LOG.warning(
            "fixpoint node %r (node %d) of PerFlowGraph %r did "
            "not converge within max_iters=%d; returning the "
            "last iterate",
            node.name,
            node.node_id,
            self.name,
            node.max_iters,
            extra={
                "graph": self.name,
                "node": node.name,
                "iterations": iterations,
            },
        )

    def _note_cache_hit(
        self, node: _Node, args: Sequence[Any], value: Any, parent: Any = None
    ) -> None:
        """Record the span of a node satisfied from cache without executing.

        Used by the wavefront scheduler, which probes on the coordinator
        thread and never submits hit nodes to the pool; the serial sweep
        records hits inside :meth:`_execute_node` instead.
        """
        with _span(
            f"node:{node.name}",
            category=f"dataflow.{node.kind}",
            parent=parent,
            node_id=node.node_id,
        ) as sp:
            if sp:
                sp.set(
                    in_size=_sum_sizes(args),
                    out_size=_size_of(value),
                    cache_hit=True,
                )

    def _execute_node(
        self,
        node: _Node,
        resolve: Callable[[NodeRef], Any],
        inputs: Dict[str, Any],
        parent: Any = None,
        worker: Optional[str] = None,
        session: Any = None,
        probe: bool = True,
    ) -> Any:
        """Execute one node and return its output value.

        Shared by the serial sweep and the wavefront scheduler's worker
        threads: ``resolve`` maps a :class:`NodeRef` to the already
        computed value it references.  ``parent`` / ``worker`` are set
        by the scheduler so the node's span nests under the pipeline
        span despite running on a worker thread, tagged with the
        executing worker's id.

        ``session`` is the run's :class:`~repro.cache.CacheSession` (or
        ``None``); with ``probe=True`` the node is looked up before
        executing and its result stored after.  The scheduler passes
        ``probe=False`` for nodes it already probed (missed) on the
        coordinator thread — the memoized key is reused for the store.
        """
        span_args: Dict[str, Any] = {"node_id": node.node_id}
        if worker is not None:
            span_args["worker"] = worker
        with _span(
            f"node:{node.name}",
            category=f"dataflow.{node.kind}",
            parent=parent,
            **span_args,
        ) as sp:
            if node.kind == "input":
                value = inputs[node.name]
                if sp:
                    size = _size_of(value)
                    sp.set(in_size=size, out_size=size)
                return value
            if node.kind == "pass":
                args = [resolve(r) for r in node.inputs]
                cache_hit = False
                if session is not None and probe:
                    cache_hit, value = session.probe(node, args)
                if not cache_hit:
                    value = node.fn(*args)
                    if session is not None:
                        session.store(node, value)
                if sp:
                    sp.set(in_size=_sum_sizes(args), out_size=_size_of(value))
                    if session is not None:
                        sp.set(cache_hit=cache_hit)
                return value
            # fixpoint
            value = resolve(node.inputs[0])
            if sp:
                sp.set(in_size=_size_of(value))
            if session is not None and probe:
                cache_hit, cached = session.probe(node, [value])
                if cache_hit:
                    if sp:
                        sp.set(out_size=_size_of(cached), cache_hit=True)
                    return cached
            value, iterations, converged = self._apply_fixpoint(node, value)
            if not converged:
                self._note_nonconverged(node, iterations)
            if session is not None:
                session.store(node, value)
            if sp:
                sp.set(
                    out_size=_size_of(value),
                    iterations=iterations,
                    converged=converged,
                )
                if session is not None:
                    sp.set(cache_hit=False)
            return value

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def to_dot(self) -> str:
        """Graphviz DOT of the PerFlowGraph itself (Fig. 2/8/11/14 style)."""
        lines = [f"digraph {json.dumps(self.name)} {{", "  rankdir=LR;"]
        for node in self._nodes:
            shape = {"input": "parallelogram", "pass": "box", "fixpoint": "box3d"}[node.kind]
            lines.append(f'  n{node.node_id} [label={json.dumps(node.name)},shape={shape}];')
        for node in self._nodes:
            for ref in node.inputs:
                lines.append(f"  n{ref.node_id} -> n{node.node_id};")
        lines.append("}")
        return "\n".join(lines)

"""PerFlowGraph: the dataflow graph of analysis passes (paper §4.1-4.2).

Vertices are passes (analysis sub-tasks); edges carry the sets flowing
between them.  A graph is built by declaring external inputs and adding
pass nodes whose inputs are earlier nodes' outputs — construction order
guarantees acyclicity, and execution is a single topological sweep.

Fixpoint groups express Fig. 11's "repeat until the output set no
longer changes": a sub-pipeline applied iteratively to its own output
until two consecutive iterations agree (by vertex/edge identity) or an
iteration cap is hit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.pag.sets import EdgeSet, VertexSet


@dataclass(frozen=True)
class NodeRef:
    """Reference to one output of a node (passes may return tuples)."""

    node_id: int
    output_index: Optional[int] = None

    def out(self, index: int) -> "NodeRef":
        """Select one element of a multi-output pass's result tuple."""
        return NodeRef(self.node_id, index)


@dataclass
class _Node:
    node_id: int
    name: str
    kind: str  # "input" | "pass" | "fixpoint"
    fn: Optional[Callable] = None
    inputs: Tuple[NodeRef, ...] = ()
    max_iters: int = 10


def _stable_key(value: Any) -> Any:
    """Identity key for fixpoint comparison."""
    if isinstance(value, (VertexSet, EdgeSet)):
        return frozenset((id(el.pag), el.id) for el in value)
    if isinstance(value, tuple):
        return tuple(_stable_key(v) for v in value)
    return value


class PerFlowGraph:
    """A dataflow graph of performance-analysis passes."""

    def __init__(self, name: str = "perflowgraph"):
        self.name = name
        self._nodes: List[_Node] = []
        self._input_names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def input(self, name: str) -> NodeRef:
        """Declare an external input (bound at :meth:`run`)."""
        if name in self._input_names:
            return NodeRef(self._input_names[name])
        node = _Node(len(self._nodes), name, "input")
        self._nodes.append(node)
        self._input_names[name] = node.node_id
        return NodeRef(node.node_id)

    def add_pass(
        self,
        fn: Callable,
        *inputs: NodeRef,
        name: Optional[str] = None,
    ) -> NodeRef:
        """Add a pass node fed by earlier nodes' outputs.

        ``fn`` receives the resolved input values positionally and may
        return anything; tuple results are addressed with
        ``ref.out(i)``.
        """
        for ref in inputs:
            if not (0 <= ref.node_id < len(self._nodes)):
                raise ValueError(f"input {ref} references an unknown node")
        node = _Node(
            len(self._nodes),
            name or getattr(fn, "__name__", "pass"),
            "pass",
            fn=fn,
            inputs=tuple(inputs),
        )
        self._nodes.append(node)
        return NodeRef(node.node_id)

    def add_fixpoint(
        self,
        fn: Callable,
        initial: NodeRef,
        max_iters: int = 10,
        name: Optional[str] = None,
    ) -> NodeRef:
        """Apply ``fn`` to its own output until it stops changing.

        ``fn(value) -> value`` where values compare by element identity
        for PAG sets.  This is the loop of Fig. 11 ("detect imbalanced
        vertices and perform causal analysis repeatedly until the output
        set no longer changes").
        """
        if not (0 <= initial.node_id < len(self._nodes)):
            raise ValueError(f"input {initial} references an unknown node")
        node = _Node(
            len(self._nodes),
            name or f"fixpoint({getattr(fn, '__name__', 'pass')})",
            "fixpoint",
            fn=fn,
            inputs=(initial,),
            max_iters=max_iters,
        )
        self._nodes.append(node)
        return NodeRef(node.node_id)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, **inputs: Any) -> Dict[str, Any]:
        """Execute topologically; returns {node name: output value}.

        Every declared input must be bound by keyword.  Node names are
        unique-ified with ``#k`` suffixes in the result mapping when they
        collide.
        """
        missing = set(self._input_names) - set(inputs)
        if missing:
            raise ValueError(f"unbound PerFlowGraph inputs: {sorted(missing)}")
        unknown = set(inputs) - set(self._input_names)
        if unknown:
            raise ValueError(f"unknown PerFlowGraph inputs: {sorted(unknown)}")
        values: List[Any] = [None] * len(self._nodes)

        def resolve(ref: NodeRef) -> Any:
            value = values[ref.node_id]
            if ref.output_index is not None:
                return value[ref.output_index]
            return value

        named: Dict[str, Any] = {}
        for node in self._nodes:
            if node.kind == "input":
                values[node.node_id] = inputs[node.name]
            elif node.kind == "pass":
                args = [resolve(r) for r in node.inputs]
                values[node.node_id] = node.fn(*args)
            else:  # fixpoint
                value = resolve(node.inputs[0])
                prev_key = _stable_key(value)
                for _ in range(node.max_iters):
                    value = node.fn(value)
                    key = _stable_key(value)
                    if key == prev_key:
                        break
                    prev_key = key
                values[node.node_id] = value
            key = node.name
            k = 1
            while key in named:
                k += 1
                key = f"{node.name}#{k}"
            named[key] = values[node.node_id]
        return named

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def to_dot(self) -> str:
        """Graphviz DOT of the PerFlowGraph itself (Fig. 2/8/11/14 style)."""
        lines = [f"digraph {json.dumps(self.name)} {{", "  rankdir=LR;"]
        for node in self._nodes:
            shape = {"input": "parallelogram", "pass": "box", "fixpoint": "box3d"}[node.kind]
            lines.append(f'  n{node.node_id} [label={json.dumps(node.name)},shape={shape}];')
        for node in self._nodes:
            for ref in node.inputs:
                lines.append(f"  n{ref.node_id} -> n{node.node_id};")
        lines.append("}")
        return "\n".join(lines)

"""Deterministic content fingerprints for PAGs.

The fingerprint is the foundation of the pass-result cache: two PAGs
with the same fingerprint are treated as interchangeable inputs, so the
digest must be a pure function of graph *content* — independent of how
that content is represented in memory.  Three representation artifacts
are deliberately canonicalized away:

* **String intern order.**  A PAG's :class:`~repro.pag.columns.StringTable`
  assigns ids in first-intern order, which differs between a freshly
  built graph, a ``copy()`` sharing a grown table, and a format-1
  reload that re-interns in row order.  The digest therefore hashes the
  *used* strings sorted by value and remaps every stored string id to
  its rank in that order.
* **Float storage noise.**  Serialization rounds property floats to 9
  decimals (see :mod:`repro.pag.serialize`); the digest applies the
  same ``np.round(x, 9)`` canonicalization so ``fingerprint(load(save(g)))
  == fingerprint(g)``.
* **Column physical layout.**  Columns are hashed as sparse
  ``(rows, values)`` pairs in sorted key order; trailing padding,
  column creation order, and fully-unset columns (which the serializer
  drops) do not contribute.

The streaming digest (BLAKE2b) walks the columnar arrays directly —
structural code arrays are hashed as raw buffers, so the cost is
O(bytes of the graph), not O(elements × Python objects).

Sensitivity: any change to vertex/edge structure, labels, kinds,
names, property values, the graph name, or (scalar) metadata changes
the fingerprint.  Two in-memory values that serialize identically
(e.g. floats differing below 1e-9, or a tuple vs. the list it reloads
as) share a fingerprint by design.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.pag.columns import (
    NO_STRING,
    FloatColumn,
    IntColumn,
    ObjColumn,
    StrColumn,
)

__all__ = [
    "fingerprint_pag",
    "content_digest",
    "metadata_digest",
    "combine_digests",
    "canonical_update",
]

#: Bump when the digest layout changes — invalidates every old cache entry.
_FP_VERSION = b"perflow-fp-v1"

_PACK_Q = struct.Struct("<q").pack
_PACK_D = struct.Struct("<d").pack


def _update_str(h, s: str) -> None:
    b = s.encode("utf-8")
    h.update(_PACK_Q(len(b)))
    h.update(b)


def canonical_update(h, value: Any) -> None:
    """Feed a canonical, type-tagged encoding of ``value`` into digest ``h``.

    Handles the value types that live in PAG properties and metadata:
    scalars, strings, ``None``, numpy arrays/scalars, and nested
    dict/list/tuple containers.  Floats are rounded to 9 decimals
    (matching serialization); tuples encode as lists (a tuple reloads
    as a list); dicts encode in sorted-key order (insertion order is a
    mutation-history artifact).  Anything else falls back to ``repr``,
    which is stable for well-behaved value types but is the caller's
    responsibility.
    """
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"T" if value else b"F")
    elif isinstance(value, (int, np.integer)):
        v = int(value)
        if -(2 ** 63) <= v < 2 ** 63:
            h.update(b"i")
            h.update(_PACK_Q(v))
        else:
            h.update(b"I")
            _update_str(h, str(v))
    elif isinstance(value, (float, np.floating)):
        h.update(b"f")
        h.update(_PACK_D(float(np.round(float(value), 9))))
    elif isinstance(value, str):
        h.update(b"s")
        _update_str(h, value)
    elif isinstance(value, np.ndarray):
        h.update(b"a")
        arr = np.round(np.asarray(value, dtype=np.float64), 9)
        h.update(_PACK_Q(arr.size))
        h.update(np.ascontiguousarray(arr).tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"l")
        h.update(_PACK_Q(len(value)))
        for v in value:
            canonical_update(h, v)
    elif isinstance(value, dict):
        h.update(b"d")
        h.update(_PACK_Q(len(value)))
        for k in sorted(value, key=lambda x: (str(type(x)), str(x))):
            canonical_update(h, k)
            canonical_update(h, value[k])
    elif isinstance(value, (bytes, bytearray)):
        h.update(b"b")
        h.update(_PACK_Q(len(value)))
        h.update(bytes(value))
    else:
        h.update(b"r")
        _update_str(h, repr(value))


def _string_ranks(pag) -> Tuple[Dict[int, int], List[str]]:
    """Map used string ids to their rank in value-sorted order.

    Only strings actually referenced by a vertex name or a valid
    string-column cell count as *used* — the table itself is shared and
    append-only (``copy()`` keeps growing it), so hashing it verbatim
    would make a graph's fingerprint depend on its siblings.
    """
    used = set(pag._v_name)
    for store in (pag._vprops, pag._eprops):
        for col in store.columns.values():
            if isinstance(col, StrColumn):
                used.update(sid for sid in col.sids if sid != NO_STRING)
    value = pag.strings.value
    ranked = sorted(value(sid) for sid in used)
    rank_of = {v: i for i, v in enumerate(ranked)}
    return {sid: rank_of[value(sid)] for sid in used}, ranked


def _update_sid_array(h, sids, sid_rank: Dict[int, int]) -> None:
    h.update(
        np.fromiter(
            (sid_rank[s] for s in sids), dtype=np.int64, count=len(sids)
        ).tobytes()
    )


def _update_store(h, store, sid_rank: Dict[int, int], tag: bytes, obj_canon=None) -> None:
    h.update(tag)
    for key in sorted(store.columns):
        col = store.columns[key]
        rows = col.rows()
        if not len(rows):
            # the serializer drops fully-unset columns; so do we
            continue
        _update_str(h, key)
        h.update(np.asarray(rows, dtype=np.int64).tobytes())
        if isinstance(col, FloatColumn):
            data, _ = col.arrays(store.nrows)
            h.update(b"f")
            h.update(np.round(data[rows], 9).tobytes())
        elif isinstance(col, IntColumn):
            data, _ = col.arrays(store.nrows)
            h.update(b"i")
            h.update(data[rows].tobytes())
        elif isinstance(col, StrColumn):
            h.update(b"s")
            _update_sid_array(h, col.sid_array(store.nrows)[rows], sid_rank)
        else:
            h.update(b"o")
            cells = col.cells
            for r in rows:
                v = cells[int(r)]
                canonical_update(h, obj_canon(v) if obj_canon is not None else v)


def content_digest(pag, obj_canon=None) -> str:
    """Digest of the PAG's structure, names, and property columns.

    This is the expensive, array-sized part of the fingerprint; the PAG
    caches it keyed on its mutation counters (see
    :meth:`repro.pag.graph.PAG.fingerprint`).  Metadata is *not*
    included — it is an untracked plain dict, so it is digested fresh
    on every fingerprint call by :func:`metadata_digest`.

    ``obj_canon`` (optional) canonicalizes each spill-column cell before
    hashing.  The format-3 writer passes the serialize-then-decode round
    trip here so the fingerprint it stamps into the file header equals
    the fingerprint of the graph a loader reconstructs — making header
    reads (:func:`repro.pag.formats.pag_file_fingerprint`) and cache
    probes on mmap-loaded graphs zero-column-read operations.
    """
    h = hashlib.blake2b(_FP_VERSION, digest_size=16)
    _update_str(h, pag.name)
    h.update(struct.pack("<qq", pag.num_vertices, pag.num_edges))
    sid_rank, ranked = _string_ranks(pag)
    h.update(b"S")
    h.update(_PACK_Q(len(ranked)))
    for s in ranked:
        _update_str(h, s)
    h.update(b"V")
    h.update(pag._v_label.tobytes())
    h.update(pag._v_kind.tobytes())
    _update_sid_array(h, pag._v_name, sid_rank)
    h.update(b"E")
    h.update(pag._e_src.tobytes())
    h.update(pag._e_dst.tobytes())
    h.update(pag._e_label.tobytes())
    h.update(pag._e_kind.tobytes())
    _update_store(h, pag._vprops, sid_rank, b"VP", obj_canon)
    _update_store(h, pag._eprops, sid_rank, b"EP", obj_canon)
    return h.hexdigest()


def metadata_digest(metadata: Dict[str, Any]) -> str:
    """Digest of a PAG metadata dict (canonical, order-insensitive)."""
    h = hashlib.blake2b(b"perflow-meta-v1", digest_size=16)
    canonical_update(h, metadata)
    return h.hexdigest()


def combine_digests(content: str, metadata: str) -> str:
    """Full fingerprint from a content digest + metadata digest.

    Factored out so the format-3 writer/header reader and
    :meth:`PAG.fingerprint` compute byte-identical results.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(content.encode("ascii"))
    h.update(metadata.encode("ascii"))
    return h.hexdigest()


def fingerprint_pag(pag) -> str:
    """Full content fingerprint of a PAG (structure + properties + metadata).

    Prefer :meth:`repro.pag.graph.PAG.fingerprint`, which caches the
    content digest across calls; this function always recomputes.
    """
    return combine_digests(content_digest(pag), metadata_digest(pag.metadata))

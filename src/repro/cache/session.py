"""Per-run cache integration for PerFlowGraph execution.

One :class:`CacheSession` exists per :meth:`PerFlowGraph.run` call with
caching enabled.  It owns the run-local state the store layer needs:

* the **registry** (PAG fingerprint → live graph) that cached set
  references are re-bound against, populated as input values are
  digested;
* the per-node **key memo** — a node's key is computed once (on probe)
  and reused for the store after a miss, including by the wavefront
  scheduler where probe happens on the coordinator thread and store on
  a worker;
* the hit/miss/uncacheable counters mirrored to the metrics registry
  (``dataflow.cache.hits`` / ``.misses`` / ``.bytes`` /
  ``.uncacheable``).

Probe and store never raise: any failure inside the cache machinery
degrades to "execute the node" (probe) or "don't store" (store), with
a debug log — a cache must never turn a working pipeline into a
broken one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.cache.keys import Uncacheable, node_key, pass_identity, value_digest
from repro.cache.store import CacheMiss, PassCache, decode_value, encode_value
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger

__all__ = ["CacheSession"]

_LOG = get_logger("cache.session")


class CacheSession:
    """Cache state scoped to one pipeline run."""

    def __init__(self, cache: PassCache):
        self.cache = cache
        #: fingerprint -> live PAG, collected from digested input values.
        self.registry: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        self.stored_bytes = 0
        #: node_id -> "hit" | "miss" | "uncacheable": per-node probe
        #: outcome, consumed by the run ledger for cache attribution.
        self.outcomes: Dict[int, str] = {}
        self._keys: Dict[int, Optional[str]] = {}
        self._identities: Dict[int, str] = {}

    # -- key construction --------------------------------------------------
    def _identity(self, fn: Any) -> str:
        # fn objects are pinned by the graph for the whole run, so id()
        # cannot be recycled while this memo is alive.
        ident = self._identities.get(id(fn))
        if ident is None:
            ident = pass_identity(fn)
            self._identities[id(fn)] = ident
        return ident

    def _compute_key(self, node: Any, args: List[Any]) -> Optional[str]:
        nid = node.node_id
        if nid in self._keys:
            return self._keys[nid]
        key: Optional[str] = None
        if node.fn is not None and getattr(node, "cacheable", True):
            try:
                identity = self._identity(node.fn)
                digests = [value_digest(a, self.registry) for a in args]
                key = node_key(node.kind, identity, digests, node.max_iters)
            except Uncacheable as exc:
                self.uncacheable += 1
                self.outcomes[nid] = "uncacheable"
                _metrics.counter("dataflow.cache.uncacheable").inc()
                _LOG.debug("node %r uncacheable: %s", node.name, exc)
        else:
            self.uncacheable += 1
            self.outcomes[nid] = "uncacheable"
            _metrics.counter("dataflow.cache.uncacheable").inc()
        self._keys[nid] = key
        return key

    def key_of(self, node_id: int) -> Optional[str]:
        """The memoized key of an already-probed node (None = uncacheable)."""
        return self._keys.get(node_id)

    # -- probe / store -----------------------------------------------------
    def probe(self, node: Any, args: List[Any]) -> Tuple[bool, Any]:
        """Look the node up; ``(True, value)`` on a hit.

        Computes and memoizes the node's key as a side effect; never
        raises.
        """
        try:
            key = self._compute_key(node, args)
        except Exception as exc:  # pragma: no cover - defensive
            _LOG.debug("key construction failed for %r: %s", node.name, exc)
            self._keys[node.node_id] = None
            return False, None
        if key is None:
            return False, None
        try:
            entry = self.cache.get(key)
            if entry is not None:
                value = decode_value(entry, self.registry)
                self.hits += 1
                self.outcomes[node.node_id] = "hit"
                _metrics.counter("dataflow.cache.hits").inc()
                return True, value
        except CacheMiss as exc:
            _LOG.debug("cache entry for %r not materializable: %s", node.name, exc)
        except Exception as exc:  # pragma: no cover - defensive
            _LOG.debug("cache probe failed for %r: %s", node.name, exc)
        self.misses += 1
        self.outcomes[node.node_id] = "miss"
        _metrics.counter("dataflow.cache.misses").inc()
        return False, None

    def store(self, node: Any, value: Any) -> None:
        """Store a computed result under the node's memoized key."""
        key = self._keys.get(node.node_id)
        if key is None:
            return
        try:
            entry = encode_value(value)
            self.cache.put(key, entry)
            self.stored_bytes += entry.nbytes
            _metrics.counter("dataflow.cache.bytes").inc(entry.nbytes)
        except Uncacheable as exc:
            _LOG.debug("result of %r not cacheable: %s", node.name, exc)
        except Exception as exc:  # pragma: no cover - defensive
            _LOG.debug("cache store failed for %r: %s", node.name, exc)

"""Cache-key construction: pass identity × input content.

A PerFlowGraph node's cache key must change whenever anything that can
change its output changes:

* the **pass function** — qualified name, source text (falling back to
  bytecode when source is unavailable), default arguments, and the
  *values* captured in its closure cells.  Closures are how paradigm
  builders bake parameters into lambdas (``lambda s: hotspot(s, n=top)``),
  so closure values are first-class key material;
* the **node shape** — kind (pass vs. fixpoint) and the fixpoint
  iteration cap;
* the **input values** — sets digest as (owning-PAG fingerprint, id
  array); scalars, strings, containers, and numpy arrays digest by
  canonical content.

Anything that cannot be keyed soundly raises :class:`Uncacheable` and
the node simply executes: bound methods and callable objects (receiver
state is invisible), closures over arbitrary objects (e.g. a
``PerFlow`` facade), legacy-mode sets (mixed PAGs / detached
elements), and unrecognized input types.  *Global* variables read by a
pass are hashed only by name (via the source text), not by value —
passes reading mutable global state should opt out with
``add_pass(..., cacheable=False)``.

Keys deliberately never include PAG identity ``token``\\ s, object ids,
or memory addresses: a key must mean the same thing across processes
and after any number of graph deaths and rebirths, which is exactly
what makes a recycled token unable to alias a live cache entry.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import inspect
import struct
from typing import Any, Dict, Iterable, Optional, Set

import numpy as np

from repro.cache.fingerprint import canonical_update
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet

__all__ = [
    "Uncacheable",
    "pass_identity",
    "callable_identity",
    "value_digest",
    "node_key",
]

_PACK_Q = struct.Struct("<q").pack


class Uncacheable(Exception):
    """This node/value cannot be soundly keyed; execute it instead.

    Raised (and caught by the cache session) whenever key construction
    would have to guess — never silently mis-keyed.
    """


def _update_str(h, s: str) -> None:
    b = s.encode("utf-8")
    h.update(_PACK_Q(len(b)))
    h.update(b)


def _update_set(h, value, registry: Optional[Dict[str, Any]]) -> None:
    if value._els is not None:
        raise Uncacheable(
            "legacy-mode set (mixed PAGs or detached elements) has no "
            "stable content key"
        )
    h.update(b"V" if isinstance(value, VertexSet) else b"E")
    if value._pag is None:
        h.update(b"-")
    else:
        fp = value._pag.fingerprint()
        if registry is not None:
            registry.setdefault(fp, value._pag)
        _update_str(h, fp)
    h.update(value._ids.tobytes())


def _value_update(h, value: Any, registry: Optional[Dict[str, Any]]) -> None:
    if isinstance(value, (VertexSet, EdgeSet)):
        _update_set(h, value, registry)
    elif isinstance(value, PAG):
        fp = value.fingerprint()
        if registry is not None:
            registry.setdefault(fp, value)
        h.update(b"P")
        _update_str(h, fp)
    elif isinstance(value, tuple):
        h.update(b"t")
        h.update(_PACK_Q(len(value)))
        for v in value:
            _value_update(h, v, registry)
    elif isinstance(value, list):
        h.update(b"l")
        h.update(_PACK_Q(len(value)))
        for v in value:
            _value_update(h, v, registry)
    elif isinstance(value, dict):
        h.update(b"d")
        h.update(_PACK_Q(len(value)))
        for k in sorted(value, key=lambda x: (str(type(x)), str(x))):
            _value_update(h, k, registry)
            _value_update(h, value[k], registry)
    elif value is None or isinstance(
        value, (bool, int, float, str, bytes, np.integer, np.floating, np.ndarray)
    ):
        canonical_update(h, value)
    elif isinstance(value, enum.Enum):
        h.update(b"e")
        _update_str(h, f"{type(value).__module__}.{type(value).__qualname__}")
        _update_str(h, value.name)
    else:
        raise Uncacheable(
            f"value of type {type(value).__name__!r} has no stable content key"
        )


def value_digest(value: Any, registry: Optional[Dict[str, Any]] = None) -> str:
    """Content digest of a value flowing along a PerFlowGraph edge.

    ``registry`` (fingerprint → PAG), when given, collects every PAG
    encountered so cached set references can later be re-bound to the
    live graphs of the current run (see :mod:`repro.cache.store`).
    Raises :class:`Uncacheable` for values with no stable content key.
    """
    h = hashlib.blake2b(b"perflow-val-v1", digest_size=16)
    _value_update(h, value, registry)
    return h.hexdigest()


def _param_update(h, value: Any, seen: Set[int]) -> None:
    """Key material from a default/closure value; functions recurse."""
    if inspect.isfunction(value) or isinstance(value, functools.partial):
        _identity_update(h, value, seen)
        return
    if callable(value) and not isinstance(value, type):
        raise Uncacheable(
            f"captured callable {value!r} carries state the key cannot see"
        )
    _value_update(h, value, None)


def _identity_update(h, fn: Any, seen: Set[int]) -> None:
    if id(fn) in seen:
        h.update(b"cycle")
        return
    seen.add(id(fn))
    if isinstance(fn, functools.partial):
        h.update(b"partial")
        _identity_update(h, fn.func, seen)
        _param_update(h, tuple(fn.args), seen)
        _param_update(h, dict(fn.keywords), seen)
        return
    if inspect.ismethod(fn):
        raise Uncacheable(
            f"bound method {fn.__qualname__!r}: receiver state is not part "
            "of the key"
        )
    if not inspect.isfunction(fn):
        raise Uncacheable(
            f"callable of type {type(fn).__name__!r} has no source-based "
            "identity"
        )
    _update_str(h, f"{fn.__module__}.{fn.__qualname__}")
    try:
        src = inspect.getsource(fn)
        h.update(b"src")
        _update_str(h, src)
    except (OSError, TypeError):
        code = fn.__code__
        h.update(b"code")
        h.update(code.co_code)
        _update_str(h, repr(code.co_names))
        for const in code.co_consts:
            if inspect.iscode(const):
                h.update(const.co_code)
            else:
                _update_str(h, repr(const))
    if fn.__defaults__:
        h.update(b"dflt")
        _param_update(h, tuple(fn.__defaults__), seen)
    if fn.__kwdefaults__:
        h.update(b"kwd")
        _param_update(h, dict(fn.__kwdefaults__), seen)
    if fn.__closure__:
        h.update(b"clos")
        h.update(_PACK_Q(len(fn.__closure__)))
        for cell in fn.__closure__:
            try:
                contents = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                raise Uncacheable("closure cell is empty") from None
            _param_update(h, contents, seen)


def pass_identity(fn: Any) -> str:
    """Stable identity of a pass function.

    Qualified name + source hash + normalized defaults and closure
    values; captured functions recurse (with cycle protection).  Raises
    :class:`Uncacheable` for callables whose behavior depends on state
    the key cannot observe.
    """
    h = hashlib.blake2b(b"perflow-pass-v1", digest_size=16)
    _identity_update(h, fn, set())
    return h.hexdigest()


def callable_identity(fn: Any) -> str:
    """Stable identity of any model callable (same machinery, distinct
    domain tag).

    Used by the incremental linter to fingerprint ``Dyn`` attributes —
    the lambdas a program model bakes costs, peers, and conditions into.
    Raises :class:`Uncacheable` exactly like :func:`pass_identity`.
    """
    h = hashlib.blake2b(b"perflow-callable-v1", digest_size=16)
    _identity_update(h, fn, set())
    return h.hexdigest()


def node_key(
    kind: str,
    identity: str,
    input_digests: Iterable[str],
    max_iters: int = 0,
) -> str:
    """Combine a node's shape, pass identity, and input digests."""
    h = hashlib.blake2b(b"perflow-key-v1", digest_size=16)
    _update_str(h, kind)
    h.update(_PACK_Q(max_iters))
    _update_str(h, identity)
    for d in input_digests:
        _update_str(h, d)
    return h.hexdigest()

"""Content-addressed pass-result caching (incremental re-analysis).

PerFlow's analysis layer is functional over the PAG: a pass fed the
same input sets over the same graph always produces the same output, so
re-running a pipeline over an unchanged (or structurally identical)
PAG is pure waste.  The scalability and differential paradigms do
exactly that — the same sub-pipeline over near-identical PAGs — and
Pipeflow (arXiv:2202.00717) shows task pipelines win most when repeated
stages are skipped outright.

This package makes that skip sound:

* :mod:`repro.cache.fingerprint` — a deterministic content fingerprint
  of a PAG, streamed over its columnar arrays and invariant to string
  intern order and storage representation (the stable structural key
  PERFOGRAPH, arXiv:2306.00210, motivates).  Exposed as
  :meth:`repro.pag.graph.PAG.fingerprint`, cached per graph and
  invalidated on mutation.
* :mod:`repro.cache.keys` — stable identity for passes (qualified name
  + source hash + normalized defaults/closure values) combined with
  input-value digests into a per-node cache key.
* :mod:`repro.cache.store` — the two-tier cache: an in-process LRU
  (:class:`MemoryLRU`) over an optional on-disk store
  (:class:`DiskStore`, default ``~/.cache/perflow/``) with a byte cap
  and mtime-LRU eviction.  Results are stored *rebindable*:
  ``VertexSet``/``EdgeSet`` payloads are reduced to
  ``(fingerprint, id-array)`` references and re-bound to the current
  run's live PAGs on a hit, so a cached set can never leak a dead
  graph (or a recycled identity token) into a new run.
* :mod:`repro.cache.session` — the per-``run()`` integration the
  serial sweep and the wavefront scheduler call: probe before
  executing a node, store after, with ``dataflow.cache.{hits,misses,
  bytes}`` metrics and a ``cache_hit`` span tag.

Enable per run (``graph.run(cache=True)``), per facade
(``PerFlow(cache=True)`` / ``PerFlow(cache_dir=...)``), per process
(``PERFLOW_CACHE=1``, disk tier via ``PERFLOW_CACHE_DIR``), or from
the CLI (``--cache`` / ``--no-cache`` / ``--cache-dir``; ``repro cache
stats`` / ``repro cache clear``).  See ``docs/CACHING.md``.
"""

from repro.cache.fingerprint import combine_digests, fingerprint_pag
from repro.cache.keys import Uncacheable, node_key, pass_identity, value_digest
from repro.cache.session import CacheSession
from repro.cache.store import (
    ENV_CACHE,
    ENV_CACHE_DIR,
    CachedValue,
    CacheMiss,
    DiskStore,
    MemoryLRU,
    PassCache,
    decode_value,
    default_cache,
    default_cache_dir,
    encode_value,
    reset_default_cache,
    resolve_cache,
)

__all__ = [
    "fingerprint_pag",
    "combine_digests",
    "Uncacheable",
    "node_key",
    "pass_identity",
    "value_digest",
    "CacheSession",
    "ENV_CACHE",
    "ENV_CACHE_DIR",
    "CachedValue",
    "CacheMiss",
    "DiskStore",
    "MemoryLRU",
    "PassCache",
    "decode_value",
    "default_cache",
    "default_cache_dir",
    "encode_value",
    "reset_default_cache",
    "resolve_cache",
]

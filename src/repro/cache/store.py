"""Two-tier pass-result store: in-process LRU over an optional disk tier.

Entries are :class:`CachedValue` records: a pickle payload for the
plain-data part of a result plus *rebindable references* for every
``VertexSet``/``EdgeSet`` it contains.  Sets are never pickled — a set
is ``(kind, owning-PAG fingerprint, id array)``, and on a hit it is
re-bound to the current run's live PAG with that fingerprint
(:func:`decode_value`).  A cached entry therefore cannot resurrect a
dead graph, leak a stale identity ``token``, or be confused with a
different graph's elements: an unknown fingerprint is a
:class:`CacheMiss` and the node simply recomputes.

The pickle payload is guarded: any PAG, vertex/edge handle, or set
that survives the reference-stripping walk (e.g. hidden inside a
custom object) aborts encoding with
:class:`~repro.cache.keys.Uncacheable` rather than serializing graph
identity into the cache.

Tiers:

* :class:`MemoryLRU` — per-process ``OrderedDict`` LRU with byte and
  entry caps.
* :class:`DiskStore` — content-addressed files under
  ``~/.cache/perflow/`` (override with ``PERFLOW_CACHE_DIR`` or an
  explicit path): ``<key[:2]>/<key>.pkl``, written atomically, evicted
  oldest-mtime-first when the directory exceeds its byte cap.  Hits
  refresh mtime, making eviction LRU-ish across processes.

:func:`resolve_cache` maps every user-facing spelling (``True``/
``False``/``None``/path/:class:`PassCache`) plus the ``PERFLOW_CACHE``
environment variable to a :class:`PassCache` or ``None``.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.cache.keys import Uncacheable
from repro.obs.log import get_logger
from repro.pag.edge import Edge
from repro.pag.graph import PAG
from repro.pag.sets import EdgeSet, VertexSet
from repro.pag.vertex import Vertex

__all__ = [
    "ENV_CACHE",
    "ENV_CACHE_DIR",
    "CacheMiss",
    "CachedValue",
    "MemoryLRU",
    "DiskStore",
    "PassCache",
    "encode_value",
    "decode_value",
    "default_cache",
    "default_cache_dir",
    "reset_default_cache",
    "resolve_cache",
]

#: Enable the cache process-wide (1/true/yes/on; 0/false/no/off/empty).
ENV_CACHE = "PERFLOW_CACHE"
#: Directory of the on-disk tier; unset = memory-only default cache.
ENV_CACHE_DIR = "PERFLOW_CACHE_DIR"

_LOG = get_logger("cache.store")


class CacheMiss(Exception):
    """A cached entry cannot be materialized for the current run."""


@dataclass(frozen=True)
class _SetMarker:
    """Placeholder left in the payload where a set was stripped out."""

    index: int


@dataclass(frozen=True)
class CachedValue:
    """One stored pass result.

    ``payload`` is the pickled value with every set replaced by a
    :class:`_SetMarker`; ``set_refs`` holds, per marker index,
    ``(kind, pag_fingerprint | None, id_bytes)``.
    """

    payload: bytes
    set_refs: Tuple[Tuple[str, Optional[str], bytes], ...]
    nbytes: int


_BANNED = (PAG, Vertex, Edge, VertexSet, EdgeSet)


class _GuardPickler(pickle.Pickler):
    """Refuses to serialize graph identity into a cache payload."""

    def persistent_id(self, obj: Any) -> None:
        if isinstance(obj, _BANNED):
            raise Uncacheable(
                f"a {type(obj).__name__} is embedded in the result beyond "
                "the reference-stripping walk; it cannot be cached soundly"
            )
        return None


def _set_ref(s: Union[VertexSet, EdgeSet]) -> Tuple[str, Optional[str], bytes]:
    if s._els is not None:
        raise Uncacheable("legacy-mode set results cannot be cached")
    kind = "v" if isinstance(s, VertexSet) else "e"
    if s._pag is None:
        return (kind, None, b"")
    return (kind, s._pag.fingerprint(), s._ids.tobytes())


def _strip(value: Any, refs: List[Tuple[str, Optional[str], bytes]]) -> Any:
    if isinstance(value, (VertexSet, EdgeSet)):
        refs.append(_set_ref(value))
        return _SetMarker(len(refs) - 1)
    if isinstance(value, tuple):
        return tuple(_strip(v, refs) for v in value)
    if isinstance(value, list):
        return [_strip(v, refs) for v in value]
    if isinstance(value, dict):
        return {k: _strip(v, refs) for k, v in value.items()}
    return value


def encode_value(value: Any) -> CachedValue:
    """Encode a pass result for storage; raises :class:`Uncacheable`."""
    refs: List[Tuple[str, Optional[str], bytes]] = []
    stripped = _strip(value, refs)
    buf = io.BytesIO()
    try:
        _GuardPickler(buf, protocol=4).dump(stripped)
    except Uncacheable:
        raise
    except Exception as exc:
        raise Uncacheable(f"result is not picklable: {exc}") from exc
    payload = buf.getvalue()
    nbytes = len(payload) + sum(len(r[2]) for r in refs)
    return CachedValue(payload, tuple(refs), nbytes)


def _resolve_ref(
    ref: Tuple[str, Optional[str], bytes], registry: Dict[str, Any]
):
    kind, fp, id_bytes = ref
    cls = VertexSet if kind == "v" else EdgeSet
    if fp is None:
        return cls()
    pag = registry.get(fp)
    if pag is None:
        raise CacheMiss(f"no live PAG with fingerprint {fp} in this run")
    ids = np.frombuffer(id_bytes, dtype=np.int64).copy()
    n = pag.num_vertices if kind == "v" else pag.num_edges
    if ids.size and (ids.min() < 0 or ids.max() >= n):
        raise CacheMiss("cached element ids out of range for the live PAG")
    return cls._from_ids(pag, ids)


def _restore(value: Any, sets: List[Any]) -> Any:
    if isinstance(value, _SetMarker):
        return sets[value.index]
    if isinstance(value, tuple):
        return tuple(_restore(v, sets) for v in value)
    if isinstance(value, list):
        return [_restore(v, sets) for v in value]
    if isinstance(value, dict):
        return {k: _restore(v, sets) for k, v in value.items()}
    return value


def decode_value(entry: CachedValue, registry: Dict[str, Any]) -> Any:
    """Materialize a stored result against the current run's live PAGs.

    ``registry`` maps PAG fingerprints to live graphs (collected from
    the run's input values by the cache session).  Any reference to a
    fingerprint not present — the graph died, changed, or never entered
    this run — raises :class:`CacheMiss`, and the caller recomputes.
    """
    sets = [_resolve_ref(ref, registry) for ref in entry.set_refs]
    value = pickle.loads(entry.payload)
    return _restore(value, sets)


# ----------------------------------------------------------------------
# tiers
# ----------------------------------------------------------------------
class MemoryLRU:
    """In-process LRU over :class:`CachedValue` entries (thread-safe).

    A multi-threaded server probes and stores one shared cache from many
    request threads; ``OrderedDict`` mutation is not atomic under
    contention, so every operation runs under a lock.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024, max_entries: int = 4096):
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedValue]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[CachedValue]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, entry: CachedValue) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            while self._entries and (
                self._bytes > self.max_bytes or len(self._entries) > self.max_entries
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "bytes": self._bytes}


#: Process-wide sequence making concurrent temp-file names unique even
#: when several threads write the same key from one pid.
_TMP_SEQ = itertools.count()


class DiskStore:
    """On-disk tier: one pickled :class:`CachedValue` file per key.

    Writes are atomic: a ``<key>.pkl.tmp.<pid>.<seq>`` temp file is
    renamed over the final path.  A crash between write and rename
    orphans the temp file; :meth:`_evict` sweeps orphans older than
    ``tmp_grace_s`` and counts any survivors against ``max_bytes`` so
    leaked bytes can never hide from the eviction budget.
    """

    #: Temp files older than this (seconds) are presumed orphaned by a
    #: crashed writer and reclaimed during eviction.  Generous enough
    #: that an in-progress write on a slow filesystem is never swept.
    tmp_grace_s = 300.0

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: int = 1024 * 1024 * 1024,
        tmp_grace_s: Optional[float] = None,
    ):
        self.root = Path(root)
        self.max_bytes = max_bytes
        if tmp_grace_s is not None:
            self.tmp_grace_s = float(tmp_grace_s)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[CachedValue]:
        path = self._path(key)
        try:
            st_before = path.stat()
            blob = path.read_bytes()
            entry = pickle.loads(blob)
            if not isinstance(entry, CachedValue):
                raise ValueError("not a CachedValue")
        except FileNotFoundError:
            return None
        except Exception as exc:
            _LOG.warning("dropping unreadable cache entry %s: %s", path, exc)
            # Another process may have os.replace()d a good entry in
            # between our read and this unlink; only drop the file if it
            # is still the exact one we failed to load.
            try:
                st_now = path.stat()
                same = (
                    st_now.st_ino == st_before.st_ino
                    and st_now.st_mtime_ns == st_before.st_mtime_ns
                    and st_now.st_size == st_before.st_size
                )
            except (OSError, NameError):
                same = False
            if same:
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        try:
            os.utime(path)  # refresh mtime: cross-process LRU signal
        except OSError:
            pass
        return entry

    def put(self, key: str, entry: CachedValue) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f"{path.name}.tmp.{os.getpid()}.{next(_TMP_SEQ)}"
            tmp.write_bytes(pickle.dumps(entry, protocol=4))
            os.replace(tmp, path)
        except OSError as exc:
            _LOG.warning("cache write to %s failed: %s", path, exc)
            return
        self._evict()

    def _scan(self) -> List[Tuple[float, int, Path]]:
        found: List[Tuple[float, int, Path]] = []
        if not self.root.is_dir():
            return found
        for sub in self.root.iterdir():
            if not sub.is_dir():
                continue
            for f in sub.glob("*.pkl"):
                try:
                    st = f.stat()
                except OSError:
                    continue
                found.append((st.st_mtime, st.st_size, f))
        return found

    def _sweep_tmp(self, now: Optional[float] = None) -> int:
        """Unlink orphaned temp files; returns bytes of the survivors.

        A temp file younger than ``tmp_grace_s`` may belong to an
        in-progress :meth:`put` (possibly in another process), so it is
        left alone — but its size still counts toward the eviction
        budget via the return value.
        """
        if not self.root.is_dir():
            return 0
        if now is None:
            now = time.time()
        surviving = 0
        for sub in self.root.iterdir():
            if not sub.is_dir():
                continue
            for f in sub.glob("*.tmp.*"):
                try:
                    st = f.stat()
                except OSError:
                    continue
                if now - st.st_mtime >= self.tmp_grace_s:
                    try:
                        f.unlink()
                        continue
                    except OSError:
                        pass
                surviving += st.st_size
        return surviving

    def _evict(self) -> None:
        tmp_bytes = self._sweep_tmp()
        found = self._scan()
        total = sum(size for _, size, _ in found) + tmp_bytes
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(found):
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            if total <= self.max_bytes:
                break

    def clear(self) -> int:
        removed = 0
        for _, _, path in self._scan():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._sweep_tmp(now=float("inf"))  # temp files go unconditionally
        return removed

    def stats(self) -> Dict[str, Any]:
        found = self._scan()
        tmp_bytes = 0
        if self.root.is_dir():
            for sub in self.root.iterdir():
                if sub.is_dir():
                    for f in sub.glob("*.tmp.*"):
                        try:
                            tmp_bytes += f.stat().st_size
                        except OSError:
                            pass
        return {
            "entries": len(found),
            "bytes": sum(size for _, size, _ in found),
            "tmp_bytes": tmp_bytes,
            "dir": str(self.root),
        }


class PassCache:
    """The user-facing cache object: memory LRU backed by optional disk."""

    def __init__(
        self,
        memory: Optional[MemoryLRU] = None,
        disk: Optional[DiskStore] = None,
    ):
        self.memory = memory if memory is not None else MemoryLRU()
        self.disk = disk

    def get(self, key: str) -> Optional[CachedValue]:
        entry = self.memory.get(key)
        if entry is not None:
            return entry
        if self.disk is not None:
            entry = self.disk.get(key)
            if entry is not None:
                self.memory.put(key, entry)
        return entry

    def put(self, key: str, entry: CachedValue) -> None:
        self.memory.put(key, entry)
        if self.disk is not None:
            self.disk.put(key, entry)

    def clear(self) -> None:
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"memory": self.memory.stats()}
        if self.disk is not None:
            out["disk"] = self.disk.stats()
        return out


# ----------------------------------------------------------------------
# resolution: args / env / defaults
# ----------------------------------------------------------------------
_DEFAULT: Optional[PassCache] = None


def default_cache_dir() -> Path:
    """``PERFLOW_CACHE_DIR`` if set, else ``~/.cache/perflow``."""
    raw = os.environ.get(ENV_CACHE_DIR, "").strip()
    if raw:
        return Path(raw).expanduser()
    return Path(os.environ.get("XDG_CACHE_HOME", "~/.cache")).expanduser() / "perflow"


def default_cache() -> PassCache:
    """The process-wide cache (created on first use).

    Memory-only unless ``PERFLOW_CACHE_DIR`` names a directory for the
    disk tier — an unset variable keeps the implicit default from
    writing to the filesystem; explicit paths (``run(cache="…")``,
    ``--cache-dir``) always get a disk tier.
    """
    global _DEFAULT
    if _DEFAULT is None:
        raw = os.environ.get(ENV_CACHE_DIR, "").strip()
        disk = DiskStore(Path(raw).expanduser()) if raw else None
        _DEFAULT = PassCache(disk=disk)
    return _DEFAULT


def reset_default_cache() -> None:
    """Forget the process-wide cache (tests; env-var changes)."""
    global _DEFAULT
    _DEFAULT = None


def _env_enabled() -> bool:
    raw = os.environ.get(ENV_CACHE, "").strip().lower()
    if raw in ("", "0", "false", "no", "off"):
        return False
    if raw in ("1", "true", "yes", "on"):
        return True
    raise ValueError(
        f"{ENV_CACHE} must be a boolean flag "
        f"(1/true/yes/on or 0/false/no/off), got {raw!r}"
    )


def resolve_cache(spec: Any = None) -> Optional[PassCache]:
    """Resolve a cache request to a :class:`PassCache` or ``None``.

    ``None`` consults ``PERFLOW_CACHE``; ``False`` disables; ``True``
    uses the process default; a path enables a disk-backed cache at
    that directory; a :class:`PassCache` is used as-is.
    """
    if spec is None:
        spec = _env_enabled()
    if spec is False:
        return None
    if spec is True:
        return default_cache()
    if isinstance(spec, PassCache):
        return spec
    if isinstance(spec, (str, Path)):
        return PassCache(disk=DiskStore(Path(spec).expanduser()))
    raise TypeError(
        "cache must be None, a bool, a directory path, or a PassCache, "
        f"got {spec!r}"
    )

"""SARIF 2.1.0 export for lint reports.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
CI understands natively — GitHub code scanning, VS Code's SARIF viewer,
and most results-triage tooling all consume it.  ``repro lint --format
sarif`` emits one run per report:

* the tool driver enumerates every rule that contributed a result (id,
  name, description, default level), so viewers can render rule help;
* each result carries a ``partialFingerprints`` entry using the same
  line-number-independent fingerprint as the baseline machinery
  (:func:`repro.lint.baseline.finding_fingerprint`), which lets SARIF
  consumers track a finding across commits exactly as our own baseline
  does;
* findings hidden by a baseline/suppression file are still exported,
  marked with a ``suppressions`` entry of kind ``"external"`` — the
  SARIF convention for "suppressed outside the source code" — so
  dashboards show accepted debt instead of silently dropping it.

Severity mapping follows the SARIF ``level`` enum: ERROR → ``error``,
WARNING → ``warning``, INFO → ``note``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.lint.baseline import finding_fingerprint
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import get_rule

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "sarif_json"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning", Severity.INFO: "note"}


def _rule_descriptor(code: str) -> Dict[str, Any]:
    """reportingDescriptor for ``code``; tolerate unregistered codes
    (pipeline diagnostics reuse the PF namespace without registering)."""
    desc: Dict[str, Any] = {"id": code}
    try:
        r = get_rule(code)
    except KeyError:
        return desc
    desc["name"] = r.name
    desc["shortDescription"] = {"text": r.description}
    desc["defaultConfiguration"] = {"level": _LEVEL[r.severity]}
    return desc


def _result(diag: Diagnostic, rule_index: Dict[str, int], suppressed: bool) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "ruleId": diag.code,
        "ruleIndex": rule_index[diag.code],
        "level": _LEVEL[diag.severity],
        "message": {"text": diag.message},
        "partialFingerprints": {
            "perflowFingerprint/v1": finding_fingerprint(diag)
        },
    }
    if diag.file:
        region: Dict[str, Any] = {}
        if diag.line:
            region["startLine"] = diag.line
        location: Dict[str, Any] = {
            "physicalLocation": {"artifactLocation": {"uri": diag.file}}
        }
        if region:
            location["physicalLocation"]["region"] = region
        if diag.function:
            location["logicalLocations"] = [
                {"name": diag.function, "kind": "function"}
            ]
        out["locations"] = [location]
    props: Dict[str, Any] = {}
    if diag.status:
        props["status"] = diag.status
    if diag.node:
        props["node"] = diag.node
    if props:
        out["properties"] = props
    if suppressed:
        out["suppressions"] = [{"kind": "external"}]
    return out


def to_sarif(
    report: LintReport,
    suppressed: Sequence[Diagnostic] = (),
    tool_version: Optional[str] = None,
) -> Dict[str, Any]:
    """Render a report (plus externally-suppressed findings) as a SARIF
    2.1.0 log object."""
    if tool_version is None:
        try:
            from repro import __version__ as tool_version  # type: ignore
        except ImportError:  # pragma: no cover - repro always has a version
            tool_version = "0"
    all_diags: List[Diagnostic] = list(report) + list(suppressed)
    codes = sorted({d.code for d in all_diags})
    rule_index = {code: i for i, code in enumerate(codes)}
    results = [_result(d, rule_index, suppressed=False) for d in report]
    results += [_result(d, rule_index, suppressed=True) for d in suppressed]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/perflow/perflow",
                        "version": str(tool_version),
                        "rules": [_rule_descriptor(c) for c in codes],
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
                "properties": {"subject": report.subject},
            }
        ],
    }


def sarif_json(
    report: LintReport,
    suppressed: Sequence[Diagnostic] = (),
    indent: Optional[int] = 2,
) -> str:
    return json.dumps(to_sarif(report, suppressed), indent=indent, sort_keys=True)

"""Suppression + baseline file support (``.perflowlint.toml``).

Two mechanisms keep a noisy codebase lintable in CI:

* ``[[suppress]]`` entries hide findings by rule code and optional
  source-path glob — a standing decision ("we know PF006 fires in
  bvald.F and accept it").
* ``[[baseline]]`` entries pin *individual* findings by fingerprint — a
  snapshot of the current debt, so CI fails only on findings introduced
  since the baseline was written (``repro lint ... --write-baseline``).

Fingerprints deliberately exclude line numbers: inserting a comment
above a finding must not make it "new".  They hash the rule code, file,
function, node name, and message — stable across reformatting, unique
enough in practice.

The file is TOML.  Python 3.11+ parses it with :mod:`tomllib`; on older
interpreters a built-in subset parser handles exactly the dialect this
module writes (tables of string/number/bool assignments), so no
third-party dependency is needed anywhere.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

try:  # Python >= 3.11
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.9/3.10
    _tomllib = None

from repro.lint.diagnostics import Diagnostic

__all__ = [
    "SuppressRule",
    "Baseline",
    "BaselinePartition",
    "finding_fingerprint",
    "load_baseline",
    "partition",
    "write_baseline",
]


def finding_fingerprint(diag: Diagnostic) -> str:
    """Line-number-independent identity of a finding."""
    h = hashlib.blake2b(b"perflow-lint-fp-v1", digest_size=16)
    for part in (diag.code, diag.file, diag.function, diag.node, diag.message):
        b = part.encode("utf-8")
        h.update(len(b).to_bytes(8, "little"))
        h.update(b)
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class SuppressRule:
    """Hide all findings of ``code``; ``path`` optionally restricts to
    files matching an :mod:`fnmatch` glob."""

    code: str
    path: str = ""

    def matches(self, diag: Diagnostic) -> bool:
        if diag.code != self.code:
            return False
        if not self.path:
            return True
        return fnmatch.fnmatch(diag.file, self.path)


@dataclass
class Baseline:
    """Parsed ``.perflowlint.toml``."""

    suppress: List[SuppressRule] = field(default_factory=list)
    #: fingerprint -> recorded metadata (code, location) for reporting.
    fingerprints: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()


@dataclass
class BaselinePartition:
    """A report split against a baseline."""

    active: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    baselined: List[Diagnostic] = field(default_factory=list)

    @property
    def hidden(self) -> List[Diagnostic]:
        return self.suppressed + self.baselined


# ---------------------------------------------------------------------------
# TOML subset parsing (fallback for Python < 3.11)
# ---------------------------------------------------------------------------
def _parse_value(text: str) -> Any:
    text = text.strip()
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"unsupported TOML value: {text!r}") from None


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parses the dialect :func:`write_baseline` emits: comments,
    ``[[array.of.tables]]`` headers, and ``key = scalar`` lines."""
    data: Dict[str, Any] = {}
    current: Optional[Dict[str, Any]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            data.setdefault(name, []).append({})
            current = data[name][-1]
        elif line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            current = data.setdefault(name, {})
        elif "=" in line:
            if current is None:
                current = data
            key, _, value = line.partition("=")
            try:
                current[key.strip()] = _parse_value(value)
            except ValueError as err:
                raise ValueError(f"line {lineno}: {err}") from None
        else:
            raise ValueError(f"line {lineno}: cannot parse {line!r}")
    return data


def _loads(text: str) -> Dict[str, Any]:
    if _tomllib is not None:
        return _tomllib.loads(text)
    return _parse_toml_subset(text)


def load_baseline(path: str) -> Baseline:
    """Parse a suppression/baseline file.

    Raises ``OSError`` when unreadable and ``ValueError`` when
    malformed (bad TOML, missing required keys).
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        data = _loads(text)
    except Exception as err:  # tomllib.TOMLDecodeError or ValueError
        raise ValueError(f"{path}: not a valid lint baseline file: {err}") from None
    out = Baseline()
    for entry in data.get("suppress", []):
        if not isinstance(entry, dict) or "code" not in entry:
            raise ValueError(f"{path}: [[suppress]] entries need a 'code' key")
        out.suppress.append(
            SuppressRule(code=str(entry["code"]), path=str(entry.get("path", "")))
        )
    for entry in data.get("baseline", []):
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(
                f"{path}: [[baseline]] entries need a 'fingerprint' key"
            )
        fp = str(entry["fingerprint"])
        out.fingerprints[fp] = {
            "code": str(entry.get("code", "")),
            "location": str(entry.get("location", "")),
        }
    return out


def partition(
    diagnostics: Iterable[Diagnostic], baseline: Baseline
) -> BaselinePartition:
    """Split diagnostics into active / suppressed / baselined."""
    out = BaselinePartition()
    for diag in diagnostics:
        if any(s.matches(diag) for s in baseline.suppress):
            out.suppressed.append(diag)
        elif finding_fingerprint(diag) in baseline.fingerprints:
            out.baselined.append(diag)
        else:
            out.active.append(diag)
    return out


def _toml_str(value: str) -> str:
    return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'


def write_baseline(
    path: str,
    diagnostics: Iterable[Diagnostic],
    previous: Optional[Baseline] = None,
) -> Tuple[int, int]:
    """Snapshot ``diagnostics`` as the new baseline, atomically.

    ``[[suppress]]`` entries from ``previous`` are preserved verbatim
    (they are human policy, not snapshots); ``[[baseline]]`` entries are
    rewritten from the current findings, which automatically expires
    fixed ones.  Suppressed findings are not baselined twice.

    Returns ``(added, expired)`` relative to ``previous``.
    """
    previous = previous or Baseline.empty()
    part = partition(diagnostics, Baseline(suppress=list(previous.suppress)))
    current: Dict[str, Diagnostic] = {}
    for diag in part.active + part.baselined:
        current.setdefault(finding_fingerprint(diag), diag)
    added = len(set(current) - set(previous.fingerprints))
    expired = len(set(previous.fingerprints) - set(current))

    lines = [
        "# PerFlow lint baseline — generated by `repro lint --write-baseline`.",
        "# [[suppress]] entries are preserved; [[baseline]] entries are a",
        "# snapshot of accepted findings (new findings fail, fixed ones expire).",
    ]
    for s in previous.suppress:
        lines += ["", "[[suppress]]", f"code = {_toml_str(s.code)}"]
        if s.path:
            lines.append(f"path = {_toml_str(s.path)}")
    for fp in sorted(current):
        diag = current[fp]
        lines += [
            "",
            "[[baseline]]",
            f"fingerprint = {_toml_str(fp)}",
            f"code = {_toml_str(diag.code)}",
            f"location = {_toml_str(diag.location)}",
        ]
    text = "\n".join(lines) + "\n"
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".perflowlint-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return added, expired

"""``repro.lint`` — static performance-smell and deadlock analysis.

PerFlow's static side (:mod:`repro.ir.static_analysis`) extracts PAG
structure; this package *judges* it.  A rule-based analyzer walks the
:class:`~repro.ir.model.Program` IR (plus the extracted top-down PAG)
and emits structured :class:`~repro.lint.diagnostics.Diagnostic`\\ s —
rule code ``PF###``, severity, message, ``file:line`` — before any
simulated run::

    from repro.apps import zeusmp
    from repro.lint import lint_program

    report = lint_program(zeusmp.build())
    print(report.to_text())          # bvald.F:360: PF006 warning: ...

From the command line: ``python -m repro lint zeusmp [--json]
[--fail-on=severity]``.

The rule set lives in :mod:`repro.lint.rules` (codes PF001–PF007, one
per pathology class of the paper's case studies) and
:mod:`repro.lint.concurrency` (codes PF101–PF104: deadlock, orphaned
communication, lock-order inversion, data races — with dynamic
confirmation against a recorded run trace); register custom rules with
:func:`repro.lint.registry.rule` — see ``docs/LINT.md``.  Codes
PF8## are reserved for the :class:`~repro.dataflow.graph.PerFlowGraph`
pipeline type-checker, which shares this diagnostic format.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.ir.model import Program
from repro.lint.context import LintConfig, LintContext, Site
from repro.lint.diagnostics import Diagnostic, LintReport, Severity, worst_exceeds
from repro.lint.registry import (
    Finding,
    Rule,
    active_rules,
    get_rule,
    register,
    rule,
    unregister,
)
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

# Importing the modules registers the built-in rule sets.
from repro.lint import rules as _builtin_rules  # noqa: F401
from repro.lint import concurrency as _concurrency_rules  # noqa: F401


def lint_program(
    program: Program,
    config: Optional[LintConfig] = None,
    codes: Optional[Sequence[str]] = None,
    trace: Optional[Any] = None,
) -> LintReport:
    """Run the (selected) rule set over a program model.

    Parameters
    ----------
    program:
        The modelled binary to analyze.  Nothing is executed.
    config:
        Probe configuration (sample rank/thread counts, run params such
        as ``{"optimized": True}``, divergence threshold).
    codes:
        Restrict to these rule codes (default: every registered rule).
    trace:
        Optional :class:`~repro.runtime.records.RunTrace` of the same
        program; concurrency rules confirm their static findings
        against it and detect dynamic races (PF104).

    Returns a :class:`LintReport` whose diagnostics are sorted by
    (code, file, line) for stable output.
    """
    with _span("lint.program", category="lint", program=program.name) as sp:
        ctx = LintContext(program, config, trace=trace)
        report = LintReport(subject=program.name)
        for r in active_rules(codes):
            with _span("lint.rule", category="lint", code=r.code) as rsp:
                n = 0
                for finding in r.check(ctx):
                    report.add(r.to_diagnostic(finding))
                    n += 1
                if rsp:
                    rsp.set(findings=n)
            if n:
                _metrics.counter("lint.rules.fired").inc(n)
        confirmed = sum(1 for d in report if d.status == "confirmed")
        if confirmed:
            _metrics.counter("lint.rules.confirmed").inc(confirmed)
        report.sort()
        if sp:
            sp.set(diagnostics=len(report))
    return report


__all__ = [
    "lint_program",
    "LintConfig",
    "LintContext",
    "Site",
    "Diagnostic",
    "LintReport",
    "Severity",
    "worst_exceeds",
    "Finding",
    "Rule",
    "rule",
    "register",
    "unregister",
    "get_rule",
    "active_rules",
]

"""``repro.lint`` — static performance-smell and deadlock analysis.

PerFlow's static side (:mod:`repro.ir.static_analysis`) extracts PAG
structure; this package *judges* it.  A rule-based analyzer walks the
:class:`~repro.ir.model.Program` IR (plus the extracted top-down PAG)
and emits structured :class:`~repro.lint.diagnostics.Diagnostic`\\ s —
rule code ``PF###``, severity, message, ``file:line`` — before any
simulated run::

    from repro.apps import zeusmp
    from repro.lint import lint_program

    report = lint_program(zeusmp.build())
    print(report.to_text())          # bvald.F:360: PF006 warning: ...

From the command line: ``python -m repro lint zeusmp [--json]
[--fail-on=severity]``.

The rule set lives in :mod:`repro.lint.rules` (codes PF001–PF007, one
per pathology class of the paper's case studies); register custom rules
with :func:`repro.lint.registry.rule` — see ``docs/LINT.md``.  Codes
PF8## are reserved for the :class:`~repro.dataflow.graph.PerFlowGraph`
pipeline type-checker, which shares this diagnostic format.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.model import Program
from repro.lint.context import LintConfig, LintContext, Site
from repro.lint.diagnostics import Diagnostic, LintReport, Severity, worst_exceeds
from repro.lint.registry import (
    Finding,
    Rule,
    active_rules,
    get_rule,
    register,
    rule,
    unregister,
)

# Importing the module registers the built-in rule set.
from repro.lint import rules as _builtin_rules  # noqa: F401


def lint_program(
    program: Program,
    config: Optional[LintConfig] = None,
    codes: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the (selected) rule set over a program model.

    Parameters
    ----------
    program:
        The modelled binary to analyze.  Nothing is executed.
    config:
        Probe configuration (sample rank/thread counts, run params such
        as ``{"optimized": True}``, divergence threshold).
    codes:
        Restrict to these rule codes (default: every registered rule).

    Returns a :class:`LintReport` whose diagnostics are sorted by
    (code, file, line) for stable output.
    """
    ctx = LintContext(program, config)
    report = LintReport(subject=program.name)
    for r in active_rules(codes):
        for finding in r.check(ctx):
            report.add(r.to_diagnostic(finding))
    report.sort()
    return report


__all__ = [
    "lint_program",
    "LintConfig",
    "LintContext",
    "Site",
    "Diagnostic",
    "LintReport",
    "Severity",
    "worst_exceeds",
    "Finding",
    "Rule",
    "rule",
    "register",
    "unregister",
    "get_rule",
    "active_rules",
]

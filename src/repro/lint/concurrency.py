"""Concurrency correctness rules: deadlock, orphans, lock order, races.

This module is the second analysis tier above the PF0## smell rules —
four rules that reason about *correctness* of the concurrent structure,
each with a dynamic-confirmation path against a recorded
:class:`~repro.runtime.records.RunTrace` of the same program:

=======  =====================  ===========================================
PF101    comm-deadlock          per-rank communication projections fed to
                                a miniature match simulator (the engine's
                                (src, dst, tag) FIFO + eager-protocol
                                semantics); a cycle in the resulting
                                wait-for graph is a guaranteed deadlock
PF102    orphaned-comm          the same simulation: a rank blocked on a
                                peer that already finished, or a
                                collective-sequence mismatch
PF103    lock-order-inversion   interprocedural lock-acquisition graph
                                from ThreadCall nesting; a cycle means two
                                units can acquire the same locks in
                                opposite orders
PF104    data-race              vector-clock happens-before checking over
                                recorded access/sync events: two accesses
                                to the same variable from different
                                threads, at least one write, no
                                happens-before edge (trace-only)
=======  =====================  ===========================================

When :attr:`LintContext.trace` is set, PF101–PF103 findings are marked
``confirmed`` (the trace exhibits the defect; severity raised to ERROR)
or ``unobserved`` (it does not; severity lowered to INFO so CI can keep
watching without failing).  The static tiers are deliberately
*projection-complete or silent*: whenever a rank's communication
projection hits an unprobeable value, an unresolved indirect call, or
the op budget, PF101/PF102 report nothing rather than guess.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.ir.context import ExecContext
from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Function,
    Loop,
    Node,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.lint.context import LintContext, Site
from repro.lint.diagnostics import Severity
from repro.lint.registry import Finding, rule
from repro.runtime.machine import MachineModel

#: Lock name of the modelled allocator (mirrors the interpreter).
_MALLOC_LOCK = "__malloc__"

#: Per-rank projected-operation cap; past it the projection is truncated
#: and PF101/PF102 stay silent (soundness over coverage).
_MAX_OPS = 2048
#: Per-rank IR-node visit budget for the projection walk.
_NODE_BUDGET = 60_000
#: Call-inlining depth guard for the lock-order walk.
_MAX_LOCK_DEPTH = 32
#: Accesses per variable fed to the pairwise race scan.
_MAX_ACCESSES_PER_VAR = 200
#: Wait-for cycle hops spelled out in a PF101 message.
_MAX_CYCLE_HOPS = 4

_COLLECTIVES = frozenset({
    CommOp.BARRIER, CommOp.BCAST, CommOp.REDUCE,
    CommOp.ALLREDUCE, CommOp.ALLGATHER, CommOp.ALLTOALL,
})


def _loc(site: Optional[Site]) -> str:
    if site is None:
        return "<unknown>"
    f = site.function.source_file
    return f"{f}:{site.node.line}" if site.node.line else f


# ===========================================================================
# Communication projection (PF101 / PF102 static tier)
# ===========================================================================
@dataclass
class _AbsOp:
    """One projected communication operation of one rank."""

    kind: str  #: send | recv | isend | irecv | wait | coll
    site: Site
    peer: int = -1
    tag: int = 0
    nbytes: float = 0.0
    label: str = ""
    labels: Tuple[str, ...] = ()
    op: Optional[CommOp] = None
    # simulator state
    posted: bool = False
    matched: bool = False
    slot: int = -1


@dataclass
class _Projection:
    rank: int
    ops: List[_AbsOp] = field(default_factory=list)
    complete: bool = True
    truncated: bool = False

    @property
    def usable(self) -> bool:
        return self.complete and not self.truncated


class _Projector:
    """Walks the IR once per rank, mirroring the interpreter's lowering
    (SENDRECV -> isend+irecv+waitall, request-label bookkeeping) but
    keeping only what the engine's matcher sees."""

    def __init__(self, ctx: LintContext, has_comm: Dict[int, bool]):
        self.ctx = ctx
        self.program: Program = ctx.program
        self.has_comm = has_comm
        self.any_comm = any(has_comm.values())

    def project(self, rank: int) -> _Projection:
        proj = _Projection(rank=rank)
        cfg = self.ctx.config
        ectx = ExecContext(
            rank=rank, nprocs=cfg.nprocs, thread=0, nthreads=cfg.nthreads,
            params=dict(cfg.params),
        )
        entry = self.program.entry_function
        state = {"budget": _NODE_BUDGET, "labels": {}, "n": 0}
        self._walk(entry.body, ectx, frozenset({entry.name}), proj, state)
        return proj

    # -- helpers -----------------------------------------------------------
    def _probe(self, value: Any, ectx: ExecContext) -> Any:
        return self.ctx.probe(value, ectx)

    def _fresh(self, state: Dict[str, Any], user_label: str) -> str:
        label = f"{user_label}#{state['n']}"
        state["n"] += 1
        state["labels"].setdefault(user_label, []).append(label)
        return label

    def _collect(self, state: Dict[str, Any], user_labels: Sequence[str]) -> Tuple[str, ...]:
        if not user_labels:
            return tuple(
                lab for labs in state["labels"].values() for lab in labs
            )
        out: List[str] = []
        for ul in user_labels:
            out.extend(state["labels"].get(ul, []))
        return tuple(out)

    def _drop(self, state: Dict[str, Any], labels: Sequence[str]) -> None:
        done = set(labels)
        for ul in list(state["labels"]):
            remaining = [l for l in state["labels"][ul] if l not in done]
            if remaining:
                state["labels"][ul] = remaining
            else:
                del state["labels"][ul]

    def _subtree_has_comm(self, node: Node) -> bool:
        return self.has_comm.get(node.uid, False)

    # -- walk --------------------------------------------------------------
    def _walk(
        self,
        body: Sequence[Node],
        ectx: ExecContext,
        visiting: FrozenSet[str],
        proj: _Projection,
        state: Dict[str, Any],
    ) -> bool:
        """Returns False when the walk must stop (incomplete/truncated)."""
        for node in body:
            state["budget"] -= 1
            if state["budget"] <= 0:
                proj.complete = False
                return False
            if len(proj.ops) >= _MAX_OPS:
                proj.truncated = True
                return False
            if isinstance(node, Stmt):
                continue
            if isinstance(node, Loop):
                if not self._subtree_has_comm(node):
                    continue
                trips = self._probe(node.trips, ectx)
                if self.ctx.is_unknown(trips):
                    proj.complete = False
                    return False
                try:
                    trips = int(trips)
                except (TypeError, ValueError):
                    proj.complete = False
                    return False
                for i in range(trips):
                    if not self._walk(node.body, ectx.push_iteration(i),
                                      visiting, proj, state):
                        return False
            elif isinstance(node, Branch):
                if not self._subtree_has_comm(node):
                    continue
                cond = self._probe(node.condition, ectx)
                if self.ctx.is_unknown(cond):
                    proj.complete = False
                    return False
                taken = node.then_body if bool(cond) else node.else_body
                if not self._walk(taken, ectx, visiting, proj, state):
                    return False
            elif isinstance(node, ThreadCall):
                # MPI_THREAD_FUNNELED: spawned bodies may not communicate
                # (the interpreter raises if they try); a comm call inside
                # one means the model is out of contract — stay silent.
                if node.op is ThreadOp.CREATE and node.body:
                    if any(self._subtree_has_comm(c) for c in node.body):
                        proj.complete = False
                        return False
            elif isinstance(node, Call):
                if not self._walk_call(node, ectx, visiting, proj, state):
                    return False
            elif isinstance(node, CommCall):
                if not self._project_comm(node, ectx, proj, state):
                    return False
        return True

    def _walk_call(self, node: Call, ectx, visiting, proj, state) -> bool:
        if node.target is CallTarget.EXTERNAL:
            return True
        callee = self._probe(node.callee, ectx)
        if self.ctx.is_unknown(callee) or not isinstance(callee, str):
            # Unresolvable indirect call: only poisons the projection when
            # the program communicates at all (the call could hide comm).
            if self.any_comm:
                proj.complete = False
                return False
            return True
        if callee not in self.program.functions:
            return True
        func = self.program.function(callee)
        if callee in visiting:
            # Recursion re-entry: give up if the cycle can communicate.
            if any(self._subtree_has_comm(n) for n in func.body):
                proj.complete = False
                return False
            return True
        if not any(self._subtree_has_comm(n) for n in func.body):
            return True
        return self._walk(func.body, ectx, visiting | {callee}, proj, state)

    def _project_comm(self, node: CommCall, ectx, proj: _Projection,
                      state: Dict[str, Any]) -> bool:
        site = self.ctx.site_for_uid(node.uid)
        if site is None:  # pragma: no cover - defensive
            proj.complete = False
            return False
        nprocs = self.ctx.config.nprocs

        def peer_of(value) -> Optional[int]:
            v = self._probe(value, ectx)
            if self.ctx.is_unknown(v):
                return None
            try:
                v = int(v)
            except (TypeError, ValueError):
                return None
            return v if 0 <= v < nprocs else None

        op = node.op
        if op in _COLLECTIVES:
            proj.ops.append(_AbsOp(kind="coll", site=site, op=op))
            return True
        if op in (CommOp.SEND, CommOp.ISEND, CommOp.RECV, CommOp.IRECV):
            peer = peer_of(node.peer)
            if peer is None:
                proj.complete = False
                return False
            if op is CommOp.SEND:
                nbytes = self._probe(node.nbytes, ectx)
                if self.ctx.is_unknown(nbytes) or not isinstance(nbytes, (int, float)):
                    proj.complete = False
                    return False
                proj.ops.append(_AbsOp(kind="send", site=site, peer=peer,
                                       tag=node.tag, nbytes=float(nbytes)))
            elif op is CommOp.RECV:
                proj.ops.append(_AbsOp(kind="recv", site=site, peer=peer,
                                       tag=node.tag))
            elif op is CommOp.ISEND:
                label = self._fresh(state, node.req or "isend")
                proj.ops.append(_AbsOp(kind="isend", site=site, peer=peer,
                                       tag=node.tag, label=label))
            else:  # IRECV
                label = self._fresh(state, node.req or "irecv")
                proj.ops.append(_AbsOp(kind="irecv", site=site, peer=peer,
                                       tag=node.tag, label=label))
            return True
        if op in (CommOp.WAIT, CommOp.WAITALL):
            labels = self._collect(state, node.requests)
            proj.ops.append(_AbsOp(kind="wait", site=site, labels=labels))
            self._drop(state, labels)
            return True
        if op is CommOp.SENDRECV:
            dst = peer_of(node.peer)
            source = node.peer if node.source is None else node.source
            src = self._probe(source, ectx)
            if dst is None or self.ctx.is_unknown(src):
                proj.complete = False
                return False
            try:
                src = int(src) % nprocs
            except (TypeError, ValueError):
                proj.complete = False
                return False
            ls = self._fresh(state, "srs")
            lr = self._fresh(state, "srr")
            proj.ops.append(_AbsOp(kind="isend", site=site, peer=dst,
                                   tag=node.tag, label=ls))
            proj.ops.append(_AbsOp(kind="irecv", site=site, peer=src,
                                   tag=node.tag, label=lr))
            proj.ops.append(_AbsOp(kind="wait", site=site, labels=(ls, lr)))
            self._drop(state, (ls, lr))
            return True
        proj.complete = False  # pragma: no cover - future comm ops
        return False


# ===========================================================================
# Match simulator + wait-for graph
# ===========================================================================
@dataclass
class _Mismatch:
    rank: int
    site: Site
    ordinal: int
    op: CommOp
    other_rank: int
    other_op: CommOp
    other_site: Site


@dataclass
class _CommAnalysis:
    usable: bool
    stuck: Dict[int, _AbsOp] = field(default_factory=dict)
    finished: Set[int] = field(default_factory=set)
    wait_for: Dict[int, List[int]] = field(default_factory=dict)
    descriptions: Dict[int, str] = field(default_factory=dict)
    mismatches: List[_Mismatch] = field(default_factory=list)
    cycles: List[List[int]] = field(default_factory=list)


def _compute_has_comm(program: Program) -> Dict[int, bool]:
    """uid -> does this node's subtree (through USER calls) reach a CommCall.

    INDIRECT calls count as potentially-communicating whenever the
    program communicates anywhere; the fixpoint below treats any call
    whose target cannot be pinned as reaching comm conservatively.
    """
    has: Dict[int, bool] = {}
    func_has: Dict[str, bool] = {}

    def node_comm(node: Node, visiting: FrozenSet[str]) -> bool:
        if node.uid in has and node.uid >= 0:
            return has[node.uid]
        if isinstance(node, CommCall):
            out = True
        elif isinstance(node, Call):
            if node.target is CallTarget.EXTERNAL:
                out = False
            elif isinstance(node.callee, str) and node.callee in program.functions:
                out = fn_comm(node.callee, visiting)
            else:
                # Dyn or unknown callee: anything could be behind it.
                out = True
        else:
            # No short-circuit: every child must land in the memo, since
            # the projector queries arbitrary subtrees.
            out = any([node_comm(c, visiting) for c in node.children()])
        if node.uid >= 0:
            has[node.uid] = out
        return out

    def fn_comm(name: str, visiting: FrozenSet[str]) -> bool:
        if name in func_has:
            return func_has[name]
        if name in visiting:
            return False  # cycle edge; other paths decide
        out = any([
            node_comm(n, visiting | {name}) for n in program.function(name).body
        ])
        func_has[name] = out
        return out

    for fname in sorted(program.functions):
        fn_comm(fname, frozenset())
    return has


def _simulate(projs: List[_Projection], nprocs: int, eager: float) -> _CommAnalysis:
    ana = _CommAnalysis(usable=True)
    sends: Dict[Tuple[int, int, int], deque] = {}
    recvs: Dict[Tuple[int, int, int], deque] = {}
    colls: Dict[int, Dict[str, Any]] = {}
    coll_ix = [0] * nprocs
    pc = [0] * nprocs
    finished = [False] * nprocs
    labelmap: List[Dict[str, _AbsOp]] = [dict() for _ in range(nprocs)]
    mismatched = [False] * nprocs

    def post_send(r: int, op: _AbsOp) -> None:
        key = (r, op.peer, op.tag)
        q = recvs.get(key)
        if q:
            q.popleft().matched = True
            op.matched = True
        else:
            sends.setdefault(key, deque()).append(op)

    def post_recv(r: int, op: _AbsOp) -> None:
        key = (op.peer, r, op.tag)
        q = sends.get(key)
        if q:
            q.popleft().matched = True
            op.matched = True
        else:
            recvs.setdefault(key, deque()).append(op)

    def step(r: int) -> bool:
        if finished[r] or mismatched[r]:
            return False
        ops = projs[r].ops
        if pc[r] >= len(ops):
            finished[r] = True
            ana.finished.add(r)
            return False
        op = ops[pc[r]]
        if op.kind == "isend":
            post_send(r, op)
            labelmap[r][op.label] = op
            pc[r] += 1
            return True
        if op.kind == "irecv":
            post_recv(r, op)
            labelmap[r][op.label] = op
            pc[r] += 1
            return True
        if op.kind == "send":
            if not op.posted:
                post_send(r, op)
                op.posted = True
            if op.matched or op.nbytes <= eager:
                pc[r] += 1
                return True
            return False
        if op.kind == "recv":
            if not op.posted:
                post_recv(r, op)
                op.posted = True
            if op.matched:
                pc[r] += 1
                return True
            return False
        if op.kind == "wait":
            refs = [labelmap[r][l] for l in op.labels if l in labelmap[r]]
            if all(x.matched for x in refs):
                pc[r] += 1
                return True
            return False
        # collective
        if not op.posted:
            k = coll_ix[r]
            slot = colls.setdefault(
                k, {"op": op.op, "arrived": set(), "ops": {}}
            )
            if slot["op"] is not op.op:
                s = min(slot["arrived"]) if slot["arrived"] else -1
                other = slot["ops"].get(s)
                ana.mismatches.append(_Mismatch(
                    rank=r, site=op.site, ordinal=k, op=op.op,
                    other_rank=s, other_op=slot["op"],
                    other_site=other.site if other else op.site,
                ))
                mismatched[r] = True
                return False
            slot["arrived"].add(r)
            slot["ops"][r] = op
            op.posted = True
            op.slot = k
            coll_ix[r] += 1
        if len(colls[op.slot]["arrived"]) == nprocs:
            pc[r] += 1
            return True
        return False

    progress = True
    while progress:
        progress = False
        for r in range(nprocs):
            while step(r):
                progress = True

    for r in range(nprocs):
        if finished[r] or mismatched[r]:
            continue
        op = projs[r].ops[pc[r]]
        ana.stuck[r] = op
        if op.kind == "send":
            ana.wait_for[r] = [op.peer]
            ana.descriptions[r] = f"blocking {CommOp.SEND.value} to rank {op.peer}"
        elif op.kind == "recv":
            ana.wait_for[r] = [op.peer]
            ana.descriptions[r] = f"blocking {CommOp.RECV.value} from rank {op.peer}"
        elif op.kind == "wait":
            peers = sorted({
                labelmap[r][l].peer for l in op.labels
                if l in labelmap[r] and not labelmap[r][l].matched
            })
            ana.wait_for[r] = peers
            ana.descriptions[r] = (
                f"{CommOp.WAITALL.value} on unmatched request(s) to/from "
                f"rank(s) {', '.join(map(str, peers))}"
            )
        else:  # coll
            arrived = colls[op.slot]["arrived"]
            missing = sorted(set(range(nprocs)) - arrived)
            ana.wait_for[r] = missing
            ana.descriptions[r] = (
                f"{op.op.value} waiting for rank(s) "
                f"{', '.join(map(str, missing[:6]))}"
            )

    ana.cycles = _cyclic_sccs(ana.wait_for, set(ana.stuck))
    return ana


def _cyclic_sccs(edges: Dict[int, List[int]], nodes: Set[int]) -> List[List[int]]:
    """Tarjan SCCs restricted to ``nodes``; only cyclic ones returned."""
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    counter = [0]
    out: List[List[int]] = []

    def strongconnect(v: int) -> None:
        # Iterative Tarjan (defensive against deep chains).
        work = [(v, iter([u for u in edges.get(v, ()) if u in nodes]))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for u in it:
                if u not in index:
                    index[u] = low[u] = counter[0]
                    counter[0] += 1
                    stack.append(u)
                    on_stack.add(u)
                    work.append((u, iter([w for w in edges.get(u, ()) if w in nodes])))
                    advanced = True
                    break
                if u in on_stack:
                    low[node] = min(low[node], index[u])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1 or node in edges.get(node, ()):
                    out.append(sorted(scc))

    for v in sorted(nodes):
        if v not in index:
            strongconnect(v)
    return sorted(out)


def _comm_analysis(ctx: LintContext) -> Optional[_CommAnalysis]:
    """Project + simulate once per lint run; ``None`` = not usable."""
    cached = getattr(ctx, "_cc_comm", False)
    if cached is not False:
        return cached
    has_comm = _compute_has_comm(ctx.program)
    ana: Optional[_CommAnalysis]
    if not any(has_comm.values()):
        ana = _CommAnalysis(usable=True)  # no comm at all: trivially clean
    else:
        projector = _Projector(ctx, has_comm)
        projs: List[_Projection] = []
        usable = True
        for r in range(ctx.config.nprocs):
            proj = projector.project(r)
            projs.append(proj)
            if not proj.usable:
                usable = False
                break
        if not usable:
            ana = None
        else:
            ana = _simulate(projs, ctx.config.nprocs,
                            MachineModel().eager_threshold)
    setattr(ctx, "_cc_comm", ana)
    return ana


# ===========================================================================
# PF101 — communication deadlock cycle
# ===========================================================================
def _trace_deadlocked(ctx: LintContext) -> bool:
    return ctx.trace is not None and bool(getattr(ctx.trace, "deadlocked", False))


def _confirm(ctx: LintContext, finding: Finding) -> Finding:
    """Apply the dynamic-confirmation tier to a deadlock-class finding."""
    if ctx.trace is None:
        return finding
    if _trace_deadlocked(ctx):
        return Finding(
            message=finding.message, file=finding.file, line=finding.line,
            function=finding.function, node=finding.node,
            severity=Severity.ERROR, status="confirmed",
        )
    return Finding(
        message=finding.message, file=finding.file, line=finding.line,
        function=finding.function, node=finding.node,
        severity=Severity.INFO, status="unobserved",
    )


def _trace_only_deadlock_findings(ctx: LintContext) -> List[Finding]:
    """PF101 evidence straight from a deadlocked trace (no static cycle)."""
    trace = ctx.trace
    blocked = (trace.deadlock or {}).get("blocked", [])
    if not blocked:
        return []
    parts = []
    anchor: Optional[Site] = None
    for b in blocked[:4]:
        path = tuple(b.get("path") or ())
        uid = next((p for p in reversed(path) if isinstance(p, int)), None)
        site = ctx.site_for_uid(uid) if uid is not None else None
        if anchor is None and site is not None:
            anchor = site
        where = _loc(site) if site is not None else (
            ctx.static.debug_of(path) or "<unknown>"
        )
        parts.append(
            f"rank {b['rank']} blocked on {b.get('blocker', '?')} ({where})"
        )
    more = len(blocked) - len(parts)
    tail = f"; and {more} more rank(s)" if more > 0 else ""
    msg = "deadlock observed in recorded trace: " + "; ".join(parts) + tail
    if anchor is not None:
        return [anchor.finding(msg, severity=Severity.ERROR)]
    return [Finding(message=msg, severity=Severity.ERROR)]


@rule(
    "PF101",
    name="comm-deadlock",
    severity=Severity.ERROR,
    description=(
        "Per-rank communication projections, replayed through the runtime "
        "engine's (src, dst, tag) FIFO + eager-protocol matching, leave a "
        "cycle in the wait-for graph: every rank in the cycle blocks on "
        "the next and the program can never progress."
    ),
)
def check_comm_deadlock(ctx: LintContext) -> Iterator[Finding]:
    ana = _comm_analysis(ctx)
    findings: List[Finding] = []
    if ana is not None:
        for scc in ana.cycles:
            hops = []
            for r in scc[:_MAX_CYCLE_HOPS]:
                hops.append(
                    f"rank {r} blocked in {ana.descriptions[r]} "
                    f"at {_loc(ana.stuck[r].site)}"
                )
            tail = (
                f" -> ... ({len(scc)} ranks in cycle)"
                if len(scc) > _MAX_CYCLE_HOPS
                else f" -> back to rank {scc[0]}"
            )
            msg = (
                "communication deadlock cycle across ranks "
                f"{{{', '.join(map(str, scc[:8]))}{', ...' if len(scc) > 8 else ''}}}: "
                + " -> ".join(hops) + tail
            )
            findings.append(ana.stuck[scc[0]].site.finding(msg))
    if ctx.trace is None:
        for f in findings:
            yield f
        return
    if findings:
        for f in findings:
            yield _confirm(ctx, f)
    elif _trace_deadlocked(ctx):
        # The run deadlocked but the static tier saw nothing (incomplete
        # projection, data-dependent schedule): still surface it.
        for f in _trace_only_deadlock_findings(ctx):
            yield Finding(
                message=f.message, file=f.file, line=f.line,
                function=f.function, node=f.node,
                severity=Severity.ERROR, status="confirmed",
            )


# ===========================================================================
# PF102 — orphaned communication / collective mismatch
# ===========================================================================
@rule(
    "PF102",
    name="orphaned-comm",
    severity=Severity.ERROR,
    description=(
        "The communication match simulation leaves a rank blocked on a "
        "peer that already finished (an orphaned send/recv/wait), or two "
        "ranks disagree on the collective sequence — either way the "
        "blocked rank can never complete."
    ),
)
def check_orphaned_comm(ctx: LintContext) -> Iterator[Finding]:
    ana = _comm_analysis(ctx)
    findings: List[Finding] = []
    if ana is not None:
        for mm in ana.mismatches:
            other = (
                f"rank {mm.other_rank} called {mm.other_op.value} "
                f"({_loc(mm.other_site)})"
                if mm.other_rank >= 0
                else f"other ranks called {mm.other_op.value}"
            )
            findings.append(mm.site.finding(
                f"collective sequence mismatch at collective #{mm.ordinal}: "
                f"rank {mm.rank} calls {mm.op.value} where {other}"
            ))
        in_cycle = {r for scc in ana.cycles for r in scc}
        seen: Set[Tuple[int, str]] = set()
        for r, op in sorted(ana.stuck.items()):
            if r in in_cycle:
                continue
            peers = ana.wait_for.get(r, [])
            fins = sorted(p for p in peers if p in ana.finished)
            if not peers or fins != sorted(peers):
                # Blocked into the cycle or on another stuck rank: the
                # PF101 cycle finding is the root cause.
                continue
            key = (op.site.node.uid, ",".join(map(str, fins)))
            if key in seen:
                continue
            seen.add(key)
            findings.append(op.site.finding(
                f"orphaned communication: rank {r} blocked in "
                f"{ana.descriptions[r]} but rank(s) "
                f"{', '.join(map(str, fins))} already finished — the "
                "operation can never complete"
            ))
    for f in findings:
        yield _confirm(ctx, f)


# ===========================================================================
# PF103 — lock-order inversion
# ===========================================================================
_LockEdge = Tuple[str, str]


@dataclass
class _LockGraph:
    #: (held, acquired) -> (site where `held` was taken, site acquiring)
    edges: Dict[_LockEdge, Tuple[Optional[Site], Optional[Site]]] = field(
        default_factory=dict
    )

    def add(self, held: str, hsite: Optional[Site],
            lock: str, site: Optional[Site]) -> None:
        self.edges.setdefault((held, lock), (hsite, site))


def _lock_name(node: ThreadCall) -> str:
    if node.op is ThreadOp.MUTEX_LOCK or node.op is ThreadOp.MUTEX_UNLOCK:
        return node.lock or "mutex"
    return node.lock or _MALLOC_LOCK


def _walk_locks(
    ctx: LintContext,
    body: Sequence[Node],
    func: Function,
    held: List[Tuple[str, Optional[Site]]],
    visiting: FrozenSet[str],
    graph: _LockGraph,
    depth: int,
) -> None:
    if depth > _MAX_LOCK_DEPTH:
        return
    for node in body:
        if isinstance(node, ThreadCall):
            site = ctx.site_for_uid(node.uid)
            if node.op is ThreadOp.MUTEX_LOCK:
                lock = _lock_name(node)
                for h, hs in held:
                    graph.add(h, hs, lock, site)
                held.append((lock, site))
            elif node.op is ThreadOp.MUTEX_UNLOCK:
                lock = _lock_name(node)
                for i in range(len(held) - 1, -1, -1):
                    if held[i][0] == lock:
                        del held[i]
                        break
            elif node.op in (ThreadOp.ALLOC, ThreadOp.REALLOC, ThreadOp.DEALLOC):
                lock = _lock_name(node)
                for h, hs in held:
                    graph.add(h, hs, lock, site)
            elif node.op is ThreadOp.CREATE and node.body:
                # Spawned threads start with no locks held.
                _walk_locks(ctx, node.body, func, [], visiting, graph, depth + 1)
        elif isinstance(node, Loop):
            _walk_locks(ctx, node.body, func, list(held), visiting, graph, depth + 1)
        elif isinstance(node, Branch):
            _walk_locks(ctx, node.then_body, func, list(held), visiting, graph, depth + 1)
            _walk_locks(ctx, node.else_body, func, list(held), visiting, graph, depth + 1)
        elif isinstance(node, Call):
            callee = node.callee if isinstance(node.callee, str) else None
            if (
                node.target is CallTarget.USER
                and callee
                and callee in ctx.program.functions
                and callee not in visiting
            ):
                _walk_locks(
                    ctx, ctx.program.function(callee).body,
                    ctx.program.function(callee),
                    held, visiting | {callee}, graph, depth + 1,
                )


def _lock_cycles(ctx: LintContext) -> List[Tuple[List[_LockEdge], _LockGraph]]:
    graph = _LockGraph()
    entry = ctx.program.entry_function
    _walk_locks(ctx, entry.body, entry, [], frozenset({entry.name}), graph, 0)
    adj: Dict[str, List[str]] = {}
    nodes: Set[str] = set()
    node_ids: Dict[str, int] = {}
    for (a, b) in graph.edges:
        nodes.update((a, b))
        adj.setdefault(a, []).append(b)
    # Reuse the integer SCC helper via an index mapping.
    names = sorted(nodes)
    node_ids = {n: i for i, n in enumerate(names)}
    int_edges = {
        node_ids[a]: sorted(node_ids[b] for b in bs) for a, bs in adj.items()
    }
    sccs = _cyclic_sccs(int_edges, set(node_ids.values()))
    out: List[Tuple[List[_LockEdge], _LockGraph]] = []
    for scc in sccs:
        members = {names[i] for i in scc}
        cycle_edges = sorted(
            (a, b) for (a, b) in graph.edges
            if a in members and b in members
        )
        out.append((cycle_edges, graph))
    return out


def _observed_lock_edges(trace: Any) -> Set[_LockEdge]:
    """Lock-order edges actually exhibited by a recorded trace."""
    observed: Set[_LockEdge] = set()
    by_unit: Dict[Tuple[int, int], List[Any]] = {}
    for ev in trace.sync_events:
        if ev.kind in ("acquire", "release"):
            by_unit.setdefault((ev.rank, ev.thread), []).append(ev)
    for events in by_unit.values():
        events.sort(key=lambda e: e.seq)
        held: List[str] = []
        for ev in events:
            if ev.kind == "acquire":
                for h in held:
                    observed.add((h, ev.lock))
                held.append(ev.lock)
            else:
                for i in range(len(held) - 1, -1, -1):
                    if held[i] == ev.lock:
                        del held[i]
                        break
    return observed


@rule(
    "PF103",
    name="lock-order-inversion",
    severity=Severity.WARNING,
    description=(
        "The interprocedural lock-acquisition graph (every lock acquired "
        "while another is held, across function and thread boundaries) "
        "contains a cycle: two units can take the same locks in opposite "
        "orders and deadlock under the right interleaving."
    ),
)
def check_lock_order(ctx: LintContext) -> Iterator[Finding]:
    observed = (
        _observed_lock_edges(ctx.trace) if ctx.trace is not None else None
    )
    for cycle_edges, graph in _lock_cycles(ctx):
        if not cycle_edges:
            continue
        parts = []
        anchor: Optional[Site] = None
        for (a, b) in cycle_edges[:4]:
            hsite, asite = graph.edges[(a, b)]
            if anchor is None:
                anchor = asite
            if a == b:
                parts.append(
                    f"{_loc(asite)} re-acquires {a!r} while already held "
                    f"(from {_loc(hsite)})"
                )
            else:
                parts.append(
                    f"{_loc(asite)} acquires {b!r} while holding {a!r} "
                    f"(taken at {_loc(hsite)})"
                )
        locks = sorted({l for e in cycle_edges for l in e})
        msg = (
            f"lock-order inversion among {', '.join(repr(l) for l in locks)}: "
            + "; ".join(parts)
        )
        severity: Optional[Severity] = None
        status = ""
        if observed is not None:
            if all(e in observed for e in cycle_edges):
                severity, status = Severity.ERROR, "confirmed"
            else:
                severity, status = Severity.INFO, "unobserved"
        if anchor is not None:
            base = anchor.finding(msg, severity=severity)
            yield Finding(
                message=base.message, file=base.file, line=base.line,
                function=base.function, node=base.node,
                severity=severity, status=status,
            )
        else:
            yield Finding(message=msg, severity=severity, status=status)


# ===========================================================================
# PF104 — happens-before data races (trace-only)
# ===========================================================================
def _vector_clocks(
    sync: List[Any], access: List[Any]
) -> Dict[int, List[int]]:
    """seq -> vector-clock snapshot for every event of one rank.

    Happens-before edges: per-thread program order (ascending ``seq``),
    spawn -> child's first event, child's last event -> join, and
    release -> next acquire per lock in the engine's grant order.
    """
    events = sorted(sync + access, key=lambda e: e.seq)
    if not events:
        return {}
    threads = sorted({e.thread for e in events})
    tix = {t: i for i, t in enumerate(threads)}
    by_thread: Dict[int, List[Any]] = {t: [] for t in threads}
    for e in events:
        by_thread[e.thread].append(e)

    preds: Dict[int, List[int]] = {e.seq: [] for e in events}
    # program order
    for stream in by_thread.values():
        for a, b in zip(stream, stream[1:]):
            preds[b.seq].append(a.seq)
    # spawn / join
    for e in sync:
        if e.kind == "spawn" and e.child in by_thread and by_thread[e.child]:
            preds[by_thread[e.child][0].seq].append(e.seq)
        elif e.kind == "join" and e.child in by_thread and by_thread[e.child]:
            preds[e.seq].append(by_thread[e.child][-1].seq)
    # lock chains: pair acquire/release structurally per thread, then
    # chain critical sections in logical grant order (engine grants are
    # serialized per lock, so sorting acquires by (t, seq) is exact).
    release_of: Dict[int, Any] = {}
    for stream in by_thread.values():
        stacks: Dict[str, List[Any]] = {}
        for e in stream:
            if getattr(e, "kind", "") == "acquire":
                stacks.setdefault(e.lock, []).append(e)
            elif getattr(e, "kind", "") == "release":
                st = stacks.get(e.lock)
                if st:
                    release_of[st.pop().seq] = e
    acquires_by_lock: Dict[str, List[Any]] = {}
    for e in sync:
        if e.kind == "acquire":
            acquires_by_lock.setdefault(e.lock, []).append(e)
    for acqs in acquires_by_lock.values():
        acqs.sort(key=lambda e: (e.t, e.seq))
        for a, b in zip(acqs, acqs[1:]):
            rel = release_of.get(a.seq, a)
            preds[b.seq].append(rel.seq)

    # Kahn topological processing with a defensive stall-break.
    ev_by_seq = {e.seq: e for e in events}
    indeg = {s: len(ps) for s, ps in preds.items()}
    succs: Dict[int, List[int]] = {s: [] for s in preds}
    for s, ps in preds.items():
        for p in ps:
            succs[p].append(s)
    ready = sorted(s for s, d in indeg.items() if d == 0)
    vc: Dict[int, List[int]] = {}
    done: Set[int] = set()
    pending = set(preds)
    while pending:
        if not ready:  # pragma: no cover - HB graphs are acyclic
            ready = [min(pending, key=lambda s: (ev_by_seq[s].t, s))]
        s = ready.pop(0)
        if s in done:
            continue
        done.add(s)
        pending.discard(s)
        clock = [0] * len(threads)
        for p in preds[s]:
            pc = vc.get(p)
            if pc:
                for i, v in enumerate(pc):
                    if v > clock[i]:
                        clock[i] = v
        clock[tix[ev_by_seq[s].thread]] += 1
        vc[s] = clock
        for n in succs.get(s, ()):
            indeg[n] -= 1
            if indeg[n] <= 0 and n not in done:
                ready.append(n)
    return {s: c for s, c in vc.items()}


@dataclass
class _Race:
    rank: int
    var: str
    a: Any
    b: Any


def find_races(trace: Any) -> List[_Race]:
    """All happens-before races in a recorded trace, one per variable."""
    races: List[_Race] = []
    flagged: Set[str] = set()
    ranks = sorted({e.rank for e in trace.access_events})
    for rank in ranks:
        sync = [e for e in trace.sync_events if e.rank == rank]
        access = [e for e in trace.access_events if e.rank == rank]
        if len({e.thread for e in access}) < 2:
            continue
        vc = _vector_clocks(sync, access)
        threads = sorted({e.thread for e in sync + access})
        tix = {t: i for i, t in enumerate(threads)}

        def hb(a: Any, b: Any) -> bool:
            ca, cb = vc.get(a.seq), vc.get(b.seq)
            if ca is None or cb is None:
                return False
            return ca[tix[a.thread]] <= cb[tix[a.thread]]

        by_var: Dict[str, List[Any]] = {}
        for e in access:
            by_var.setdefault(e.var, []).append(e)
        for var in sorted(by_var):
            if var in flagged:
                continue
            evs = sorted(by_var[var], key=lambda e: e.seq)[:_MAX_ACCESSES_PER_VAR]
            hit = None
            for i, a in enumerate(evs):
                for b in evs[i + 1:]:
                    if a.thread == b.thread:
                        continue
                    if a.mode != "w" and b.mode != "w":
                        continue
                    if hb(a, b) or hb(b, a):
                        continue
                    hit = (a, b)
                    break
                if hit:
                    break
            if hit:
                flagged.add(var)
                races.append(_Race(rank=rank, var=var, a=hit[0], b=hit[1]))
    return races


@rule(
    "PF104",
    name="data-race",
    severity=Severity.ERROR,
    description=(
        "Vector-clock happens-before checking over a recorded trace found "
        "two accesses to the same shared variable from different threads, "
        "at least one a write, with no ordering through program order, "
        "spawn/join, or lock release->acquire chains."
    ),
)
def check_data_race(ctx: LintContext) -> Iterator[Finding]:
    if ctx.trace is None:
        return
    for race in find_races(ctx.trace):
        a, b = race.a, race.b
        site = ctx.site_for_uid(a.uid) or ctx.site_for_uid(b.uid)
        bsite = ctx.site_for_uid(b.uid)
        msg = (
            f"data race on shared variable {race.var!r}: rank {race.rank} "
            f"thread {a.thread} {'write' if a.mode == 'w' else 'read'} and "
            f"thread {b.thread} {'write' if b.mode == 'w' else 'read'} "
            f"({_loc(bsite)}) have no happens-before ordering"
        )
        if site is not None:
            base = site.finding(msg)
            yield Finding(
                message=base.message, file=base.file, line=base.line,
                function=base.function, node=base.node, status="confirmed",
            )
        else:
            yield Finding(message=msg, status="confirmed")

"""Fingerprint-cached incremental linting.

Most lint work is per-function: the function-scope rules (PF001, PF004,
PF005, PF006 — see :class:`repro.lint.registry.Rule`) look at one
function's sites at a time.  Their results are therefore cacheable
per function, keyed on everything that can change them:

* the **function fingerprint** — a structural walk of its IR subtree
  hashing node types, names, lines, operand values, and the identity of
  every ``Dyn`` callable (via
  :func:`repro.cache.keys.callable_identity`, the same closure-aware
  machinery the pass cache uses);
* the function's **hotness** (reachability from a loop is a property of
  the *callers*, but it changes function-scope verdicts, so it is part
  of the key rather than a reason to give up on per-function caching);
* the **probe configuration** and the **rule-set fingerprint** (rule
  source changes invalidate everything, exactly like pass source
  changes invalidate pass-cache entries).

Program-scope rules (cross-rank matching, deadlock projection, lock
graphs) get a single whole-program entry whose key additionally folds
in the trace digest when dynamic confirmation is requested.

On a warm run over an unchanged program every per-function entry and
the program entry hit, no rule body executes, and the resulting report
is byte-identical to a cold run — that is what the benchmark in
``benchmarks/test_lint_incremental.py`` pins.  Anything that cannot be
keyed soundly (a ``Dyn`` that is a bound method, say) raises
:class:`~repro.cache.keys.Uncacheable` internally and simply executes
fresh every time — never silently mis-keyed, mirroring the pass-cache
philosophy.

The cache is one JSON file per program under
``<cache-dir>/lintcache/``, rewritten atomically each run with only the
current keys (stale entries age out immediately).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.cache.keys import Uncacheable, callable_identity
from repro.cache.store import default_cache_dir
from repro.ir.model import (
    Branch,
    Call,
    CommCall,
    Function,
    Loop,
    Node,
    Program,
    Stmt,
    ThreadCall,
)
from repro.lint.context import LintConfig, LintContext, Site
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import Rule, active_rules
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

__all__ = [
    "CACHE_FORMAT",
    "IncrementalStats",
    "function_fingerprint",
    "lint_program_incremental",
]

CACHE_FORMAT = "repro-lintcache/1"


@dataclass
class IncrementalStats:
    """What the cache did for one incremental lint run."""

    function_hits: int = 0
    function_misses: int = 0
    program_hit: bool = False
    #: functions (or the whole run) that could not be keyed soundly and
    #: therefore executed fresh without touching the cache.
    uncacheable: int = 0

    @property
    def functions(self) -> int:
        return self.function_hits + self.function_misses

    @property
    def hit_ratio(self) -> float:
        total = self.functions
        return self.function_hits / total if total else 0.0


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------
def _u(h, text: str) -> None:
    b = text.encode("utf-8")
    h.update(len(b).to_bytes(8, "little"))
    h.update(b)


def _dyn(h, value: Any) -> None:
    """Key material from a model attribute; callables hash by identity
    (source + closure values), raising :class:`Uncacheable` when that
    identity cannot be established."""
    if callable(value):
        h.update(b"fn")
        _u(h, callable_identity(value))
    else:
        h.update(b"v")
        _u(h, repr(value))


def _node_update(h, node: Node) -> None:
    _u(h, type(node).__name__)
    _u(h, node.name)
    h.update(int(node.line).to_bytes(8, "little", signed=True))
    if isinstance(node, Stmt):
        _dyn(h, node.cost)
        for key in sorted(node.pmu):
            _u(h, key)
            _dyn(h, node.pmu[key])
        _u(h, repr(node.touches))
    elif isinstance(node, Loop):
        _dyn(h, node.trips)
        h.update(b"[")
        for child in node.body:
            _node_update(h, child)
        h.update(b"]")
    elif isinstance(node, Branch):
        _dyn(h, node.condition)
        h.update(b"T")
        for child in node.then_body:
            _node_update(h, child)
        h.update(b"E")
        for child in node.else_body:
            _node_update(h, child)
        h.update(b".")
    elif isinstance(node, Call):
        _u(h, node.callee)
        _u(h, node.target.name)
        _dyn(h, node.cost)
    elif isinstance(node, CommCall):
        _u(h, node.op.value)
        for attr in ("peer", "source", "nbytes", "tag", "root"):
            _dyn(h, getattr(node, attr))
        _u(h, repr(node.req))
        _u(h, repr(node.requests))
    elif isinstance(node, ThreadCall):
        _u(h, node.op.value)
        _dyn(h, node.count)
        _u(h, node.lock)
        _dyn(h, node.hold)
        h.update(b"[")
        for child in node.body:
            _node_update(h, child)
        h.update(b"]")


def function_fingerprint(func: Function) -> str:
    """Structural digest of one function's IR subtree.

    Deliberately excludes node ``uid``\\ s (assigned at registration
    order, not content) so a rebuilt-but-identical program hits.
    Raises :class:`Uncacheable` when a ``Dyn`` attribute has no stable
    identity.
    """
    h = hashlib.blake2b(b"perflow-lintfn-v1", digest_size=16)
    _u(h, func.name)
    _u(h, func.source_file)
    h.update(int(func.line).to_bytes(8, "little", signed=True))
    for node in func.body:
        _node_update(h, node)
    return h.hexdigest()


def _config_fingerprint(config: LintConfig) -> str:
    h = hashlib.blake2b(b"perflow-lintcfg-v1", digest_size=16)
    h.update(int(config.nprocs).to_bytes(8, "little"))
    h.update(int(config.nthreads).to_bytes(8, "little"))
    _u(h, repr(tuple(config.sample_iterations)))
    _u(h, repr(config.cost_spread_threshold))
    for key in sorted(config.params):
        _u(h, key)
        _dyn(h, config.params[key])
    return h.hexdigest()


def _rules_fingerprint(rules: Sequence[Rule]) -> str:
    h = hashlib.blake2b(b"perflow-lintrules-v1", digest_size=16)
    for r in rules:
        _u(h, r.code)
        _u(h, r.scope)
        h.update(int(r.severity).to_bytes(8, "little"))
        _u(h, callable_identity(r.check))
    return h.hexdigest()


def _combine(*parts: str) -> str:
    h = hashlib.blake2b(b"perflow-lintkey-v1", digest_size=16)
    for part in parts:
        _u(h, part)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# diagnostic (de)serialization
# ---------------------------------------------------------------------------
def _diag_to_dict(d: Diagnostic) -> Dict[str, Any]:
    return {
        "code": d.code,
        "severity": str(d.severity),
        "message": d.message,
        "file": d.file,
        "line": d.line,
        "function": d.function,
        "node": d.node,
        "status": d.status,
    }


def _diag_from_dict(x: Dict[str, Any]) -> Diagnostic:
    return Diagnostic(
        code=str(x["code"]),
        severity=Severity.parse(str(x["severity"])),
        message=str(x["message"]),
        file=str(x.get("file", "")),
        line=int(x.get("line", 0)),
        function=str(x.get("function", "")),
        node=str(x.get("node", "")),
        status=str(x.get("status", "")),
    )


# ---------------------------------------------------------------------------
# restricted context view
# ---------------------------------------------------------------------------
class _FunctionView:
    """A :class:`LintContext` restricted to one function's sites.

    Function-scope rules iterate ``ctx.sites_of(...)``; giving them a
    view whose site list covers a single function is what makes their
    findings attributable to (and cacheable under) that function's key.
    Everything else — probing, config, static structure — delegates to
    the full context.
    """

    def __init__(self, base: LintContext, fname: str):
        self._base = base
        self.sites: List[Site] = list(base.function_sites(fname))

    def sites_of(self, *types: Type[Node]) -> Iterator[Site]:
        for site in self.sites:
            if isinstance(site.node, types):
                yield site

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)


# ---------------------------------------------------------------------------
# the incremental runner
# ---------------------------------------------------------------------------
def _cache_path(cache_dir: Optional[str], program: Program) -> str:
    root = str(cache_dir) if cache_dir else str(default_cache_dir())
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in program.name)
    return os.path.join(root, "lintcache", f"{safe or 'program'}.json")


def _load_cache(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("format") != CACHE_FORMAT:
        return {}
    return data


def _store_cache(path: str, data: Dict[str, Any]) -> None:
    directory = os.path.dirname(path)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".lintcache-", dir=directory)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(data, fh, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        pass  # a read-only cache dir degrades to always-miss, never fails


def _run_rules(
    rules: Sequence[Rule], ctx: Any, program: bool = False
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for r in rules:
        for finding in r.check(ctx):
            out.append(r.to_diagnostic(finding))
    return out


def lint_program_incremental(
    program: Program,
    config: Optional[LintConfig] = None,
    codes: Optional[Sequence[str]] = None,
    trace: Optional[Any] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[LintReport, IncrementalStats]:
    """Like :func:`repro.lint.lint_program`, but re-running only the
    per-function rule work whose inputs changed since the last run.

    Returns ``(report, stats)``; the report is byte-identical to what a
    full run would produce.
    """
    config = config or LintConfig()
    rules = active_rules(codes)
    fn_rules = [r for r in rules if r.scope == "function"]
    prog_rules = [r for r in rules if r.scope == "program"]
    stats = IncrementalStats()

    with _span("lint.incremental", category="lint", program=program.name) as sp:
        ctx = LintContext(program, config, trace=trace)
        report = LintReport(subject=program.name)

        try:
            cfg_fp = _config_fingerprint(config)
            fn_rules_fp = _rules_fingerprint(fn_rules)
            prog_rules_fp = _rules_fingerprint(prog_rules)
        except Uncacheable:
            # Rule set or config itself is unkeyable: lint fully, no cache.
            stats.uncacheable += 1
            report.extend(_run_rules(fn_rules, ctx))
            report.extend(_run_rules(prog_rules, ctx))
            stats.function_misses = len(program.functions)
            report.sort()
            return report, stats

        path = _cache_path(cache_dir, program)
        cache = _load_cache(path)
        old_functions: Dict[str, Any] = cache.get("functions", {})
        old_program: Dict[str, Any] = cache.get("program", {})
        new_functions: Dict[str, Any] = {}

        # -- per-function tier ------------------------------------------
        fn_fps: Dict[str, Optional[str]] = {}
        for fname in sorted(program.functions):
            try:
                fn_fps[fname] = function_fingerprint(program.function(fname))
            except Uncacheable:
                fn_fps[fname] = None

        for fname in sorted(program.functions):
            fp = fn_fps[fname]
            if fp is None:
                stats.uncacheable += 1
                stats.function_misses += 1
                report.extend(_run_rules(fn_rules, _FunctionView(ctx, fname)))
                continue
            hot = "hot" if fname in ctx.hot_functions else "cold"
            key = _combine("fn", fp, hot, cfg_fp, fn_rules_fp)
            cached = old_functions.get(key)
            if cached is not None:
                stats.function_hits += 1
                diags = [_diag_from_dict(x) for x in cached]
            else:
                stats.function_misses += 1
                diags = _run_rules(fn_rules, _FunctionView(ctx, fname))
            new_functions[key] = [_diag_to_dict(d) for d in diags]
            report.extend(diags)

        # -- whole-program tier -----------------------------------------
        trace_fp = ""
        if trace is not None:
            from repro.runtime.records import trace_digest

            trace_fp = trace_digest(trace)
        cacheable_program = all(fp is not None for fp in fn_fps.values())
        prog_diags: List[Diagnostic]
        if cacheable_program:
            prog_key = _combine(
                "prog",
                program.name,
                program.entry,
                *[fn_fps[f] or "" for f in sorted(fn_fps)],
                cfg_fp,
                prog_rules_fp,
                trace_fp,
            )
            cached = old_program.get(prog_key)
            if cached is not None:
                stats.program_hit = True
                prog_diags = [_diag_from_dict(x) for x in cached]
            else:
                prog_diags = _run_rules(prog_rules, ctx)
            new_program = {prog_key: [_diag_to_dict(d) for d in prog_diags]}
        else:
            stats.uncacheable += 1
            prog_diags = _run_rules(prog_rules, ctx)
            new_program = {}
        report.extend(prog_diags)

        _metrics.counter("lint.cache.functions.hit").inc(stats.function_hits)
        _metrics.counter("lint.cache.functions.miss").inc(stats.function_misses)

        _store_cache(
            path,
            {
                "format": CACHE_FORMAT,
                "program": new_program,
                "functions": new_functions,
            },
        )

        report.sort()
        if sp:
            sp.set(
                hits=stats.function_hits,
                misses=stats.function_misses,
                program_hit=stats.program_hit,
            )
    return report, stats

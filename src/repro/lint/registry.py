"""The lint rule registry.

A :class:`Rule` bundles a stable code (``PF###``), a default severity,
and a check function.  Check functions receive a
:class:`~repro.lint.context.LintContext` and yield :class:`Finding`\\ s —
lightweight partial diagnostics the runner completes with the rule's
code and default severity, so a rule body never repeats its own
metadata::

    @rule("PF042", name="my-smell", severity=Severity.WARNING,
          description="what this rule detects")
    def check_my_smell(ctx):
        for site in ctx.sites_of(Stmt):
            if looks_bad(site):
                yield site.finding("why it is bad")

Rules register globally at import time; :func:`active_rules` returns
them in code order so lint output is deterministic.  Registration is
open — downstream code can add project-specific rules (see
``docs/LINT.md``) — but codes must be unique and well-formed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.lint.diagnostics import Diagnostic, Severity

_CODE_RE = re.compile(r"^PF\d{3}$")


@dataclass(frozen=True)
class Finding:
    """A rule-relative finding; the runner adds code and severity."""

    message: str
    file: str = ""
    line: int = 0
    function: str = ""
    node: str = ""
    #: overrides the rule's default severity when set.
    severity: Optional[Severity] = None
    #: dynamic-confirmation status ("", "confirmed" or "unobserved").
    status: str = ""


@dataclass(frozen=True)
class Rule:
    """A registered static-analysis rule.

    ``scope`` declares what a check inspects: ``"function"`` checks look
    at one function's sites at a time (their findings can be cached
    per-function by the incremental linter), ``"program"`` checks need
    whole-program context (call graph, cross-rank matching) and re-run
    whenever anything changes.
    """

    code: str
    name: str
    severity: Severity
    description: str
    check: Callable[..., Iterable[Finding]] = field(compare=False)
    scope: str = "program"

    def to_diagnostic(self, finding: Finding) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity=finding.severity or self.severity,
            message=finding.message,
            file=finding.file,
            line=finding.line,
            function=finding.function,
            node=finding.node,
            status=finding.status,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(r: Rule) -> Rule:
    """Register a rule; codes must be unique and match ``PF###``."""
    if not _CODE_RE.match(r.code):
        raise ValueError(f"rule code {r.code!r} does not match 'PF###'")
    if r.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {r.code} ({_REGISTRY[r.code].name})")
    _REGISTRY[r.code] = r
    return r


def unregister(code: str) -> None:
    """Remove a rule (tests and embedders replacing built-ins)."""
    _REGISTRY.pop(code, None)


def rule(
    code: str,
    name: str,
    severity: Severity,
    description: str,
    scope: str = "program",
) -> Callable[[Callable[..., Iterable[Finding]]], Callable[..., Iterable[Finding]]]:
    """Decorator: register ``check`` as a rule and return it unchanged."""
    if scope not in ("function", "program"):
        raise ValueError(f"rule scope {scope!r} must be 'function' or 'program'")

    def deco(check: Callable[..., Iterable[Finding]]):
        register(Rule(code=code, name=name, severity=severity,
                      description=description, check=check, scope=scope))
        return check

    return deco


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"no lint rule registered under {code!r}") from None


def active_rules(codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """Registered rules in code order, optionally restricted to ``codes``."""
    if codes is None:
        return [_REGISTRY[c] for c in sorted(_REGISTRY)]
    return [get_rule(c) for c in sorted(set(codes))]


def iter_rules() -> Iterator[Rule]:
    return iter(active_rules())

"""The built-in rule set: the paper's pathology classes, statically.

Each case study's injected bug has a static signature in the IR, and
each rule below detects one of them *before any simulated run*:

=======  ======================  ==========================================
PF001    blocking-p2p-in-loop    blocking MPI_Send/MPI_Recv inside a hot
                                 loop serializes neighbor exchange
                                 (LAMMPS §5.4, Listing 9)
PF002    unmatched-p2p           blocking send/recv with no statically
                                 matchable counterpart — potential
                                 deadlock under the engine's
                                 (src, dst, tag) FIFO matching
PF003    divergent-collective    collective under a rank-divergent
                                 branch: ranks disagree on the
                                 collective sequence ⇒ hang
PF004    serialized-allocator    allocator calls / held mutexes across
                                 comm-or-alloc inside threaded loops
                                 (Vite §5.5's root cause)
PF005    indirect-in-loop        statically unresolvable call in a hot
                                 loop: a performance-data embedding
                                 blind spot (§3.2)
PF006    rank-divergent-cost     probed workload differs across
                                 ranks/threads beyond jitter: static
                                 load imbalance (ZeusMP §5.3)
PF007    pag-structure           extracted top-down PAG violates the
                                 structural invariants of
                                 :mod:`repro.pag.validate`
=======  ======================  ==========================================

Rules only *read* the program; probing model callables is best-effort
and a failed probe never produces a diagnostic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Stmt,
    ThreadCall,
    ThreadOp,
)
from repro.lint.context import LintContext, Site
from repro.lint.diagnostics import Severity
from repro.lint.registry import Finding, rule

_BLOCKING_P2P = (CommOp.SEND, CommOp.RECV)
_ALLOC_OPS = (ThreadOp.ALLOC, ThreadOp.REALLOC, ThreadOp.DEALLOC)

#: (src_rank, dst_rank, tag) — the engine's match key.
_Direction = Tuple[int, int, int]


# ---------------------------------------------------------------------------
# PF001 — blocking point-to-point communication in a hot loop
# ---------------------------------------------------------------------------
@rule(
    "PF001",
    name="blocking-p2p-in-loop",
    severity=Severity.WARNING,
    description=(
        "Blocking MPI_Send/MPI_Recv inside a loop (or in a function called "
        "from a loop) serializes the exchange and propagates neighbour "
        "delays; prefer Isend/Irecv + Wait or MPI_Sendrecv."
    ),
    scope="function",
)
def check_blocking_p2p_in_loop(ctx: LintContext) -> Iterator[Finding]:
    for site in ctx.sites_of(CommCall):
        node = site.node
        if node.op not in _BLOCKING_P2P or not ctx.in_hot_path(site):
            continue
        where = (
            f"loop {site.innermost_loop.name or '<anonymous>'!r}"
            if site.in_loop
            else "a function reached from a loop"
        )
        yield site.finding(
            f"blocking {node.op.value} inside {where}: the exchange "
            "serializes and propagates neighbour delays each iteration"
        )


# ---------------------------------------------------------------------------
# PF002 — blocking send/recv with no statically matchable counterpart
# ---------------------------------------------------------------------------
def _probe_peer(ctx: LintContext, value, ectx) -> int:
    peer = ctx.probe(value, ectx)
    if ctx.is_unknown(peer):
        return -1
    try:
        return int(peer)
    except (TypeError, ValueError):
        return -1


def _message_directions(ctx: LintContext) -> Tuple[Set[_Direction], Set[_Direction]]:
    """All (src, dst, tag) directions any send/recv site can produce.

    Branch reachability is deliberately ignored on this side: a missed
    matching site would be a false deadlock report, so the match sets
    are kept maximal.
    """
    sends: Set[_Direction] = set()
    recvs: Set[_Direction] = set()
    nprocs = ctx.config.nprocs
    contexts = ctx.rank_contexts()
    for site in ctx.sites_of(CommCall):
        node = site.node
        for ectx in contexts:
            r = ectx.rank
            if node.op in (CommOp.SEND, CommOp.ISEND, CommOp.SENDRECV):
                dst = _probe_peer(ctx, node.peer, ectx)
                if 0 <= dst < nprocs:
                    sends.add((r, dst, node.tag))
            if node.op in (CommOp.RECV, CommOp.IRECV):
                src = _probe_peer(ctx, node.peer, ectx)
                if 0 <= src < nprocs:
                    recvs.add((src, r, node.tag))
            if node.op is CommOp.SENDRECV:
                source = node.source if node.source is not None else node.peer
                src = _probe_peer(ctx, source, ectx)
                if 0 <= src < nprocs:
                    recvs.add((src, r, node.tag))
    return sends, recvs


@rule(
    "PF002",
    name="unmatched-p2p",
    severity=Severity.ERROR,
    description=(
        "A blocking point-to-point call none of whose probed "
        "(src, dst, tag) directions is produced by any matching site — "
        "under the runtime engine's FIFO matching it can never complete."
    ),
)
def check_unmatched_p2p(ctx: LintContext) -> Iterator[Finding]:
    sends, recvs = _message_directions(ctx)
    contexts = {e.rank: e for e in ctx.rank_contexts()}
    for site in ctx.sites_of(CommCall):
        node = site.node
        needs: List[Tuple[str, _Direction]] = []
        for r in ctx.reachable_ranks(site):
            ectx = contexts[r]
            if node.op in (CommOp.RECV, CommOp.SENDRECV):
                source = (
                    node.source
                    if node.op is CommOp.SENDRECV and node.source is not None
                    else node.peer
                )
                src = _probe_peer(ctx, source, ectx)
                if 0 <= src < ctx.config.nprocs:
                    needs.append(("send", (src, r, node.tag)))
            if node.op in (CommOp.SEND, CommOp.SENDRECV):
                dst = _probe_peer(ctx, node.peer, ectx)
                if 0 <= dst < ctx.config.nprocs:
                    needs.append(("recv", (r, dst, node.tag)))
        for kind, table in (("send", sends), ("recv", recvs)):
            wanted = [d for k, d in needs if k == kind]
            if wanted and not any(d in table for d in wanted):
                src, dst, tag = wanted[0]
                yield site.finding(
                    f"{node.op.value} has no statically matchable {kind} "
                    f"for any probed rank (e.g. rank {src} -> rank {dst}, "
                    f"tag {tag}): potential deadlock"
                )


# ---------------------------------------------------------------------------
# PF003 — collective under a rank-divergent branch
# ---------------------------------------------------------------------------
def _is_rank_divergent(ctx: LintContext, branch: Branch) -> bool:
    for it in ctx.config.sample_iterations:
        seen = set()
        for ectx in ctx.rank_contexts(iteration=it):
            val = ctx.probe(branch.condition, ectx)
            if not ctx.is_unknown(val):
                seen.add(bool(val))
        if len(seen) > 1:
            return True
    return False


@rule(
    "PF003",
    name="divergent-collective",
    severity=Severity.ERROR,
    description=(
        "A branch whose condition differs across ranks guards different "
        "collective sequences on its two paths; MPI requires identical "
        "per-rank collective sequences, so the mismatch hangs."
    ),
)
def check_divergent_collective(ctx: LintContext) -> Iterator[Finding]:
    for site in ctx.sites_of(Branch):
        branch = site.node
        sig_then = ctx.collective_signature(branch.then_body)
        sig_else = ctx.collective_signature(branch.else_body)
        if sig_then == sig_else:
            continue
        if not _is_rank_divergent(ctx, branch):
            continue
        described = ", ".join(sig_then or ("<none>",))
        other = ", ".join(sig_else or ("<none>",))
        yield site.finding(
            f"rank-divergent branch guards mismatched collectives "
            f"(then: {described}; else: {other}): ranks taking different "
            "paths disagree on the collective sequence and hang"
        )


# ---------------------------------------------------------------------------
# PF004 — serialized allocator / lock held across comm or alloc
# ---------------------------------------------------------------------------
@rule(
    "PF004",
    name="serialized-allocator",
    severity=Severity.WARNING,
    description=(
        "Heap-allocator calls inside threaded loops serialize on the "
        "process-wide allocator lock, and mutexes held across "
        "communication or allocation extend the serialized window — the "
        "Vite case study's root cause."
    ),
    scope="function",
)
def check_serialized_allocator(ctx: LintContext) -> Iterator[Finding]:
    for site in ctx.sites:
        node = site.node
        is_alloc = isinstance(node, ThreadCall) and node.op in _ALLOC_OPS
        is_comm = isinstance(node, CommCall)
        if is_alloc and site.in_threaded_region and site.in_loop:
            yield site.finding(
                f"allocator call {node.name!r} inside a threaded loop "
                "serializes all threads on the process-wide allocator "
                "lock; its cost grows with the thread count"
            )
        elif (is_alloc or is_comm) and site.held_locks and (
            site.in_threaded_region or site.in_loop
        ):
            what = "allocator call" if is_alloc else "communication call"
            locks = ", ".join(repr(l) for l in site.held_locks)
            yield site.finding(
                f"lock {locks} held across {what} {node.name!r}: other "
                "threads block for the full communication/allocation time"
            )


# ---------------------------------------------------------------------------
# PF005 — unresolved indirect call in a hot loop
# ---------------------------------------------------------------------------
@rule(
    "PF005",
    name="indirect-in-loop",
    severity=Severity.WARNING,
    description=(
        "An indirect call in a hot loop is statically unresolvable "
        "(§3.2): its subtree is missing from the top-down view until a "
        "runtime trace fills it in, leaving an embedding blind spot "
        "exactly where the time is spent."
    ),
    scope="function",
)
def check_indirect_in_loop(ctx: LintContext) -> Iterator[Finding]:
    for site in ctx.sites_of(Call):
        node = site.node
        if node.target is CallTarget.INDIRECT and ctx.in_hot_path(site):
            yield site.finding(
                f"indirect call {node.name!r} in a hot loop cannot be "
                "resolved statically: performance data embedded below it "
                "is blind until a runtime trace supplies the target"
            )


# ---------------------------------------------------------------------------
# PF006 — rank-/thread-divergent workload (static load imbalance)
# ---------------------------------------------------------------------------
def _spread(values: List[float]) -> float:
    mean = sum(values) / len(values)
    if mean <= 0.0:
        return 0.0
    return (max(values) - min(values)) / mean


def _probe_costs(ctx: LintContext, cost, contexts) -> List[float]:
    out: List[float] = []
    for ectx in contexts:
        val = ctx.probe(cost, ectx)
        if ctx.is_unknown(val) or not isinstance(val, (int, float)):
            return []
        out.append(float(val))
    return out


@rule(
    "PF006",
    name="rank-divergent-cost",
    severity=Severity.WARNING,
    description=(
        "A hot statement's modelled cost, probed across sample ranks "
        "(and threads, inside threaded regions), diverges beyond the "
        "jitter floor: load imbalance visible before any run."
    ),
    scope="function",
)
def check_rank_divergent_cost(ctx: LintContext) -> Iterator[Finding]:
    threshold = ctx.config.cost_spread_threshold
    rank_ctxs = ctx.rank_contexts()
    for site in ctx.sites_of(Stmt, Call):
        node = site.node
        cost = getattr(node, "cost", None)
        if cost is None or not ctx.in_hot_path(site):
            continue
        values = _probe_costs(ctx, cost, rank_ctxs)
        if values:
            spread = _spread(values)
            if spread > threshold:
                yield site.finding(
                    f"cost of {node.name!r} diverges across ranks "
                    f"(spread {spread:.0%} of mean, jitter floor "
                    f"{threshold:.0%}): statically visible load imbalance"
                )
                continue
        if site.in_threaded_region:
            nthreads = ctx.config.nthreads
            thread_ctxs = [
                rank_ctxs[0].with_thread(t, nthreads) for t in range(nthreads)
            ]
            values = _probe_costs(ctx, cost, thread_ctxs)
            if values and _spread(values) > threshold:
                yield site.finding(
                    f"cost of {node.name!r} diverges across threads "
                    f"(spread {_spread(values):.0%} of mean): unequal "
                    "thread workloads stretch the joining thread's wait"
                )


# ---------------------------------------------------------------------------
# PF007 — extracted PAG violates structural invariants
# ---------------------------------------------------------------------------
@rule(
    "PF007",
    name="pag-structure",
    severity=Severity.ERROR,
    description=(
        "The top-down PAG extracted from the program violates the "
        "structural invariants of repro.pag.validate (tree shape, edge "
        "labels, debug info) — downstream passes would misbehave."
    ),
)
def check_pag_structure(ctx: LintContext) -> Iterator[Finding]:
    from repro.pag.validate import ValidationError, edge_label_problems, validate_top_down

    pag = ctx.static.pag
    problems: List[str] = []
    try:
        validate_top_down(pag)
    except ValidationError as err:
        problems.extend(err.problems)
    problems.extend(edge_label_problems(pag))
    for problem in problems:
        yield Finding(message=f"top-down PAG invariant violated: {problem}",
                      node=pag.name)

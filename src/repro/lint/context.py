"""Shared state for lint rules: the walked IR plus static evaluation.

The model IR expresses rank-dependent behaviour as callables of
:class:`~repro.ir.context.ExecContext` (peers, branch conditions,
costs).  A static analyzer cannot *run* the program, but it can *probe*
those callables over a small sample of contexts — one per rank of a
hypothetical communicator — which is how the rules reason about
rank-divergent branches, statically matchable sends/recvs, and
workload skew without executing anything.  Probing is best-effort:
callables that raise are treated as unknown, never as violations.

:class:`LintContext` pre-walks every function once, recording for each
IR node its :class:`Site` — the lexical surroundings a rule needs:
enclosing loops, enclosing branches *with polarity* (then/else),
enclosing threaded regions, and the set of mutexes held at that point.
It also computes which functions are reachable from inside a loop via
the static call graph ("hot" functions), and lazily extracts the
top-down PAG for structural rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.ir.context import ExecContext
from repro.ir.model import (
    Branch,
    Call,
    CallTarget,
    CommCall,
    CommOp,
    Function,
    Loop,
    Node,
    Program,
    ThreadCall,
    ThreadOp,
)
from repro.lint.registry import Finding

_UNKNOWN = object()  #: sentinel: probing a callable failed


@dataclass(frozen=True)
class LintConfig:
    """Sample configuration for static probing.

    ``nprocs`` ranks are probed (16 covers every modelled imbalance
    stride); ``sample_iterations`` are the loop-iteration indices tried
    when a callable may depend on the iteration; ``params`` mirrors the
    run parameters of :func:`repro.runtime.executor.run_program` so the
    linter can analyze e.g. an app's ``optimized`` variant.
    """

    nprocs: int = 16
    nthreads: int = 4
    params: Dict[str, Any] = field(default_factory=dict)
    sample_iterations: Tuple[int, ...] = (0, 1, 2, 3)
    #: minimum relative per-rank cost spread flagged as divergence
    #: (modelled jitter is ±2%, injected imbalances are ≥12%).
    cost_spread_threshold: float = 0.10

    def __post_init__(self) -> None:
        if self.nprocs < 2:
            raise ValueError("lint probing needs nprocs >= 2")


@dataclass(frozen=True)
class Site:
    """One IR node plus its lexical surroundings inside a function."""

    node: Node
    function: Function
    #: enclosing loops, outermost first.
    loops: Tuple[Loop, ...] = ()
    #: enclosing branches with polarity (True = then-body, False = else).
    branches: Tuple[Tuple[Branch, bool], ...] = ()
    #: enclosing multi-thread regions (ThreadOp.CREATE bodies).
    thread_regions: Tuple[ThreadCall, ...] = ()
    #: mutex names locked but not yet unlocked when this node runs.
    held_locks: Tuple[str, ...] = ()

    @property
    def in_loop(self) -> bool:
        return bool(self.loops)

    @property
    def in_threaded_region(self) -> bool:
        return bool(self.thread_regions)

    @property
    def innermost_loop(self) -> Optional[Loop]:
        return self.loops[-1] if self.loops else None

    def finding(self, message: str, severity=None) -> Finding:
        """A :class:`Finding` anchored to this site's debug info."""
        return Finding(
            message=message,
            file=self.function.source_file,
            line=self.node.line,
            function=self.function.name,
            node=self.node.name,
            severity=severity,
        )


class LintContext:
    """Everything the rule set needs, computed once per lint run.

    ``trace`` optionally carries a recorded
    :class:`~repro.runtime.records.RunTrace` of the same program; the
    concurrency rules (PF101–PF104) use it to *confirm* static findings
    against observed behaviour and to detect dynamic races.
    """

    def __init__(
        self,
        program: Program,
        config: Optional[LintConfig] = None,
        trace: Optional[Any] = None,
    ):
        self.program = program
        self.config = config or LintConfig()
        self.trace = trace
        #: all sites in deterministic pre-order, per function name order.
        self.sites: List[Site] = []
        self._sites_by_function: Dict[str, List[Site]] = {}
        self._site_by_uid: Dict[int, Site] = {}
        self._static_result = None
        self._collective_signatures: Dict[str, Tuple[str, ...]] = {}
        self._walk_program()
        self.hot_functions: Set[str] = self._compute_hot_functions()

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def rank_contexts(
        self, iteration: int = 0, thread: int = 0
    ) -> List[ExecContext]:
        """One probe context per sample rank."""
        cfg = self.config
        return [
            ExecContext(
                rank=r,
                nprocs=cfg.nprocs,
                thread=thread,
                nthreads=cfg.nthreads,
                iterations=(iteration,),
                params=dict(cfg.params),
            )
            for r in range(cfg.nprocs)
        ]

    @staticmethod
    def probe(value: Any, ctx: ExecContext) -> Any:
        """Evaluate a model attribute; ``_UNKNOWN`` when probing fails."""
        if not callable(value):
            return value
        try:
            return value(ctx)
        except Exception:
            return _UNKNOWN

    @staticmethod
    def is_unknown(value: Any) -> bool:
        return value is _UNKNOWN

    def reachable_ranks(self, site: Site) -> List[int]:
        """Sample ranks whose enclosing branch conditions can be satisfied.

        A rank is reachable when, for *some* sample iteration, every
        enclosing branch condition evaluates to the polarity that leads
        to the site.  Conditions that cannot be probed count as
        satisfiable (conservative: never hides a site).
        """
        out = []
        for rank in range(self.config.nprocs):
            for it in self.config.sample_iterations:
                ctx = ExecContext(
                    rank=rank,
                    nprocs=self.config.nprocs,
                    nthreads=self.config.nthreads,
                    iterations=(it,),
                    params=dict(self.config.params),
                )
                ok = True
                for branch, polarity in site.branches:
                    val = self.probe(branch.condition, ctx)
                    if val is _UNKNOWN:
                        continue
                    if bool(val) != polarity:
                        ok = False
                        break
                if ok:
                    out.append(rank)
                    break
        return out

    # ------------------------------------------------------------------
    # site queries
    # ------------------------------------------------------------------
    def sites_of(self, *types: Type[Node]) -> Iterator[Site]:
        for site in self.sites:
            if isinstance(site.node, types):
                yield site

    def function_sites(self, fname: str) -> Sequence[Site]:
        return self._sites_by_function.get(fname, ())

    def site_for_uid(self, uid: int) -> Optional[Site]:
        """The site owning the node with ``uid`` (trace evidence anchoring)."""
        return self._site_by_uid.get(uid)

    def in_hot_path(self, site: Site) -> bool:
        """True when the node repeats: lexically inside a loop, or in a
        function reachable from a loop through the static call graph."""
        return site.in_loop or site.function.name in self.hot_functions

    # ------------------------------------------------------------------
    # static structure (lazy)
    # ------------------------------------------------------------------
    @property
    def static(self):
        """The :class:`~repro.ir.static_analysis.StaticAnalysisResult`."""
        if self._static_result is None:
            from repro.ir.static_analysis import analyze

            self._static_result = analyze(self.program)
        return self._static_result

    # ------------------------------------------------------------------
    # collective signatures (for divergent-branch matching)
    # ------------------------------------------------------------------
    def collective_signature(self, body: Sequence[Node]) -> Tuple[str, ...]:
        """The static sequence of collective ops a body executes.

        User calls are inlined (cycle-guarded) because a collective
        hidden behind a call still hangs when only some ranks reach it.
        """
        return self._collectives_in(body, frozenset())

    def _collectives_in(
        self, body: Sequence[Node], visiting: frozenset
    ) -> Tuple[str, ...]:
        out: List[str] = []
        for node in body:
            if isinstance(node, CommCall):
                if node.op in _COLLECTIVES:
                    out.append(node.op.value)
            elif isinstance(node, Call):
                if (
                    node.target is CallTarget.USER
                    and node.callee in self.program.functions
                    and node.callee not in visiting
                ):
                    fname = node.callee
                    if fname not in self._collective_signatures:
                        self._collective_signatures[fname] = self._collectives_in(
                            self.program.function(fname).body,
                            visiting | {fname},
                        )
                    out.extend(self._collective_signatures[fname])
            elif isinstance(node, (Loop, Branch, ThreadCall)):
                out.extend(self._collectives_in(node.children(), visiting))
        return tuple(out)

    # ------------------------------------------------------------------
    # walking
    # ------------------------------------------------------------------
    def _walk_program(self) -> None:
        for fname in sorted(self.program.functions):
            func = self.program.function(fname)
            sites: List[Site] = []
            self._walk_body(func.body, func, (), (), (), (), sites)
            self._sites_by_function[fname] = sites
            self.sites.extend(sites)

    def _walk_body(
        self,
        body: Sequence[Node],
        func: Function,
        loops: Tuple[Loop, ...],
        branches: Tuple[Tuple[Branch, bool], ...],
        regions: Tuple[ThreadCall, ...],
        held: Tuple[str, ...],
        out: List[Site],
    ) -> None:
        held_now = held
        for node in body:
            site = Site(
                node=node,
                function=func,
                loops=loops,
                branches=branches,
                thread_regions=regions,
                held_locks=held_now,
            )
            out.append(site)
            self._site_by_uid.setdefault(node.uid, site)
            if isinstance(node, Loop):
                self._walk_body(
                    node.body, func, loops + (node,), branches, regions, held_now, out
                )
            elif isinstance(node, Branch):
                self._walk_body(
                    node.then_body, func, loops, branches + ((node, True),),
                    regions, held_now, out,
                )
                self._walk_body(
                    node.else_body, func, loops, branches + ((node, False),),
                    regions, held_now, out,
                )
            elif isinstance(node, ThreadCall):
                if node.op is ThreadOp.MUTEX_LOCK and node.lock:
                    held_now = held_now + (node.lock,)
                elif node.op is ThreadOp.MUTEX_UNLOCK and node.lock in held_now:
                    idx = len(held_now) - 1 - held_now[::-1].index(node.lock)
                    held_now = held_now[:idx] + held_now[idx + 1:]
                elif node.op is ThreadOp.CREATE and node.body:
                    new_regions = (
                        regions + (node,) if self._is_multithreaded(node) else regions
                    )
                    self._walk_body(
                        node.body, func, loops, branches, new_regions, held_now, out
                    )

    def _is_multithreaded(self, node: ThreadCall) -> bool:
        """A CREATE region counts as threaded when it can spawn > 1 thread."""
        for ctx in self.rank_contexts()[:1]:
            count = self.probe(node.count, ctx)
            if count is _UNKNOWN:
                return True  # unknown spawn width: assume threaded
            try:
                return int(count) > 1
            except (TypeError, ValueError):
                return True
        return False

    # ------------------------------------------------------------------
    # call-graph hotness
    # ------------------------------------------------------------------
    def _compute_hot_functions(self) -> Set[str]:
        """Functions whose bodies can repeat because some call path from
        the entry passes through a loop."""
        # call edges: caller -> [(callee, call site lexically in a loop)]
        edges: Dict[str, List[Tuple[str, bool]]] = {}
        for fname, sites in self._sites_by_function.items():
            for site in sites:
                node = site.node
                if isinstance(node, Call) and node.callee in self.program.functions:
                    edges.setdefault(fname, []).append((node.callee, site.in_loop))
        hot: Set[str] = set()
        seen: Set[Tuple[str, bool]] = set()
        entry = self.program.entry
        stack: List[Tuple[str, bool]] = []
        if entry in self.program.functions:
            stack.append((entry, False))
        while stack:
            fname, is_hot = stack.pop()
            if (fname, is_hot) in seen:
                continue
            seen.add((fname, is_hot))
            if is_hot:
                hot.add(fname)
            for callee, in_loop in edges.get(fname, ()):
                stack.append((callee, is_hot or in_loop))
        return hot


_COLLECTIVES = frozenset(
    {
        CommOp.BARRIER,
        CommOp.BCAST,
        CommOp.REDUCE,
        CommOp.ALLREDUCE,
        CommOp.ALLTOALL,
        CommOp.ALLGATHER,
    }
)

"""Structured lint diagnostics.

Every finding of the static analyzer (:mod:`repro.lint`) and the
pipeline type-checker (:meth:`repro.dataflow.graph.PerFlowGraph.check`)
is a :class:`Diagnostic`: a rule code (``PF###``), a severity, a
human-readable message, and the ``file:line`` debug location the IR
carries — so pre-execution findings read like compiler output::

    bvald.F:360: PF006 warning: cost of 'bc_update' diverges across ranks ...

This module is dependency-free (no IR/PAG imports) so that any layer —
``repro.lint``, ``repro.dataflow``, the CLI — can emit diagnostics
without import cycles.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering supports ``--fail-on`` thresholds."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "warning", not "Severity.WARNING"
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a source location via IR debug info."""

    code: str  #: rule code, "PF###"
    severity: Severity
    message: str
    file: str = ""
    line: int = 0
    function: str = ""  #: enclosing IR function (empty for graph-level findings)
    node: str = ""  #: IR node / PerFlowGraph node name
    #: dynamic-confirmation status: "" (purely static), "confirmed" (a
    #: supplied run trace exhibits the defect) or "unobserved" (a trace
    #: was supplied and did not exhibit it).
    status: str = ""

    @property
    def location(self) -> str:
        """``file:line`` (or just the file when no line is known)."""
        if not self.file:
            return ""
        return f"{self.file}:{self.line}" if self.line else self.file

    def format(self) -> str:
        loc = f"{self.location}: " if self.location else ""
        where = f" [{self.function}]" if self.function else ""
        tag = f" ({self.status})" if self.status else ""
        return f"{loc}{self.code} {self.severity}: {self.message}{where}{tag}"

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["severity"] = str(self.severity)
        d["location"] = self.location
        if not self.status:  # keep purely-static payloads unchanged
            del d["status"]
        return d

    def sort_key(self):
        return (self.code, self.file, self.line, self.message)


@dataclass
class LintReport:
    """An ordered collection of diagnostics for one linted subject."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def sort(self) -> None:
        self.diagnostics.sort(key=Diagnostic.sort_key)

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def codes(self) -> List[str]:
        """Distinct rule codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def count_at_least(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity >= severity)

    # -- rendering ---------------------------------------------------------
    def to_text(self) -> str:
        if not self.diagnostics:
            return f"{self.subject}: no issues found"
        lines = [d.format() for d in self.diagnostics]
        counts = {s: 0 for s in Severity}
        for d in self.diagnostics:
            counts[d.severity] += 1
        summary = ", ".join(
            f"{n} {s}{'s' if n != 1 else ''}"
            for s, n in sorted(counts.items(), reverse=True)
            if n
        )
        lines.append(f"{self.subject}: {len(self.diagnostics)} issue(s): {summary}")
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "subject": self.subject,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                str(s): self.count_at_least(s) for s in Severity
            },
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


def worst_exceeds(
    diagnostics: Sequence[Diagnostic], threshold: Optional[Severity]
) -> bool:
    """True when any diagnostic reaches ``threshold`` (``None`` = never)."""
    if threshold is None:
        return False
    return any(d.severity >= threshold for d in diagnostics)

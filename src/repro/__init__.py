"""PerFlow reproduction (PPoPP 2022).

A domain-specific framework for automatic performance analysis of
parallel applications: Program Abstraction Graphs (PAGs) as the unified
performance representation, and dataflow graphs of analysis *passes*
(PerFlowGraphs) as the programming abstraction.

Quickstart::

    from repro import PerFlow
    from repro.apps import cg

    pflow = PerFlow()
    pag = pflow.run(bin=cg.build(), nprocs=8)
    V_comm = pflow.filter(pag.V, name="MPI_*")
    V_hot = pflow.hotspot_detection(V_comm)
    V_imb = pflow.imbalance_analysis(V_hot)
    pflow.report(V_imb, attrs=["name", "time", "debug-info"])
"""

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy import keeps `import repro.pag` usable while the high-level
    # API package is loaded only on demand.
    if name == "PerFlow":
        from repro.dataflow.api import PerFlow

        return PerFlow
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["PerFlow", "__version__"]

"""Command-line interface: run modelled programs and paradigms.

PerFlow's artifact drives analyses from small Python scripts; this CLI
packages the same flows for the terminal::

    python -m repro list
    python -m repro run cg --np 8 --report
    python -m repro run deadlock_ring --record-trace ring.json
    python -m repro lint zeusmp --json --fail-on=warning
    python -m repro lint deadlock_ring --trace ring.json --format sarif
    python -m repro lint zeusmp --baseline .perflowlint.toml --write-baseline
    python -m repro lint zeusmp --incremental --cache-dir .lintcache
    python -m repro paradigm communication zeusmp --np 16
    python -m repro paradigm scalability zeusmp --np 8 --np-large 64
    python -m repro paradigm mpi-profiler cg --np 8 --jobs 4
    python -m repro paradigm contention vite --np 4 --threads 8
    python -m repro pag stats cg --np 8 --parallel
    python -m repro pag stats --load saved_pag.json
    python -m repro pag stats --load saved.pag3 --mmap
    python -m repro pag convert saved_pag.json saved.pag3 --format 3
    python -m repro run cg --np 8 --save-pag cg.pag3 --pag-format 3
    python -m repro table1            # regenerate Table 1's rows
    python -m repro table2 --ranks 128
    python -m repro cache stats       # on-disk pass-result cache
    python -m repro cache clear
    python -m repro serve --port 8321 --jobs 4 --cache-dir /var/cache/perflow
    python -m repro obs history       # recent ledger runs
    python -m repro obs show RUN
    python -m repro obs diff RUN_A RUN_B
    python -m repro obs regressions --threshold 25%
    python -m repro obs analyze t.json --tree --min-ms 0.5

Every analysis command accepts observability flags (:mod:`repro.obs`)::

    python -m repro paradigm mpi_profiler --app lammps --np 16 \
        --trace t.json --metrics m.json   # record spans + metrics
    python -m repro obs analyze t.json --metrics m.json   # self-analysis

``--trace`` records a Chrome trace-event JSON (loadable in Perfetto /
``chrome://tracing``); ``--metrics`` dumps the process-global metrics
registry; ``obs analyze`` turns a recorded trace back into a PAG and
runs PerFlow's own hotspot/imbalance passes over it.  ``-v``/``-vv``
raise logging verbosity on the ``repro.*`` logger hierarchy, ``-q``
silences everything below errors.  ``--jobs N`` runs PerFlowGraph
pipelines on N worker threads via the wavefront scheduler (default:
``$PERFLOW_JOBS`` or serial).  ``--cache`` / ``--no-cache`` /
``--cache-dir DIR`` control the content-addressed pass-result cache
(:mod:`repro.cache`; default ``$PERFLOW_CACHE`` / ``$PERFLOW_CACHE_DIR``
or off), and ``repro cache {stats,clear}`` manages the on-disk tier.

Every ``run``/``paradigm``/``lint`` invocation is appended to the **run
ledger** (:mod:`repro.obs.ledger`) — per-node span rollups, PAG
fingerprints, wall/CPU time — under ``.perflow/ledger/`` unless
``--no-ledger`` (or ``PERFLOW_LEDGER=0``) says otherwise; ``repro obs
{history,show,diff,regressions}`` analyzes the accumulated records, and
``obs regressions`` exits ``EXIT_ISSUES`` when a node breaches its
noise-aware baseline.  A bounded **flight recorder**
(:mod:`repro.obs.flight`) runs for every invocation: unhandled crashes
and SIGUSR2 dump the recent span/log ring plus a metrics snapshot as a
crash report under ``$PERFLOW_CRASH_DIR`` (default ``.perflow/``).

Output is plain text; ``--dot FILE`` additionally writes a Graphviz
rendering of the relevant PAG fragment.

Exit codes distinguish *why* a command failed: ``EXIT_OK`` (0) on
success, ``EXIT_ISSUES`` (1) when an analysis ran and found problems
(``lint`` with diagnostics at/above ``--fail-on``), and ``EXIT_USAGE``
(2) for usage errors — unknown program/paradigm names, missing required
options — matching argparse's own exit code for bad flags.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.apps import lammps as lammps_mod
from repro.apps import registry
from repro.dataflow.api import PerFlow
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.pag.serialize import PAGFormatError

#: Command succeeded.
EXIT_OK = 0
#: The analysis ran to completion and reported issues.
EXIT_ISSUES = 1
#: Usage error (unknown program/paradigm, missing option); argparse's code.
EXIT_USAGE = 2


def _usage_error(message: str) -> "SystemExit":
    print(f"repro: error: {message}", file=sys.stderr)
    return SystemExit(EXIT_USAGE)


def _build(name: str, problem_class: str, demos: bool = False):
    reg = registry(problem_class, demos=demos)
    if name not in reg:
        raise _usage_error(f"unknown program {name!r}; try: {', '.join(sorted(reg))}")
    return reg[name]()


def _machine_for(name: str):
    return lammps_mod.MACHINE if name == "lammps" else None


def _pflow_for(args) -> PerFlow:
    return PerFlow(
        machine=_machine_for(args.program),
        jobs=args.jobs,
        backend=getattr(args, "backend", None),
        cache=getattr(args, "cache", None),
        cache_dir=getattr(args, "cache_dir", None),
    )


def cmd_list(_args) -> int:
    evaluated = set(registry())
    print("modelled programs (repro.apps):")
    for name in sorted(evaluated):
        print(f"  {name}")
    demos = sorted(set(registry(demos=True)) - evaluated)
    if demos:
        print("\ndemo programs (run/lint only; deliberately broken):")
        for name in demos:
            print(f"  {name}")
    print("\nparadigms: mpi-profiler, communication, scalability, critical-path, contention")
    return 0


def _maybe_save_pag(args, pag) -> None:
    """Honor ``--save-pag FILE`` (+ ``--pag-format``) on run/paradigm."""
    path = getattr(args, "save_pag", None)
    if not path:
        return
    from repro.pag.formats import save_pag

    n = save_pag(pag, path, format=args.pag_format)
    print(f"wrote PAG: {path} (format {args.pag_format}, {n:,} bytes)")


def cmd_run(args) -> int:
    from repro.runtime.engine import DeadlockError

    prog = _build(args.program, args.problem_class, demos=True)
    if args.record_trace:
        from repro.runtime.executor import run_program
        from repro.runtime.records import run_trace, save_run_trace

        result = run_program(
            prog,
            nprocs=args.np,
            nthreads=args.threads,
            machine=_machine_for(args.program),
            on_deadlock="record",
        )
        trace = run_trace(result)
        save_run_trace(trace, args.record_trace)
        print(
            f"wrote run trace: {args.record_trace} "
            f"({len(trace.comm_events)} comm, {len(trace.sync_events)} sync, "
            f"{len(trace.access_events)} access events)"
        )
        if trace.deadlocked:
            print(f"{prog.name}: DEADLOCK — {trace.deadlock['message']}")
            print(
                f"  confirm the static findings: "
                f"repro lint {prog.name} --trace {args.record_trace}"
            )
            return EXIT_ISSUES
    pflow = _pflow_for(args)
    try:
        pag = pflow.run(bin=prog, nprocs=args.np, nthreads=args.threads)
    except DeadlockError as err:
        print(f"{prog.name}: deadlock — {err}")
        print(
            "  record evidence with --record-trace FILE, then "
            f"`repro lint {prog.name} --trace FILE`"
        )
        return EXIT_ISSUES
    _maybe_save_pag(args, pag)
    ctx = pflow.context(pag)
    print(f"{prog.name}: {args.np} ranks x {args.threads} threads")
    print(f"  simulated elapsed: {ctx.run.elapsed:.4f} s")
    print(f"  top-down PAG: |V|={pag.num_vertices} |E|={pag.num_edges}")
    print(f"  comm events: {len(ctx.run.comm_events)}, lock events: {len(ctx.run.lock_events)}")
    print(f"  collection overhead: {pag.metadata['dynamic_overhead_pct']:.2f}%")
    if args.report:
        hot = pflow.hotspot_detection(pag.V, n=args.top)
        pflow.report(hot, attrs=["name", "time", "wait", "debug-info"], file=sys.stdout)
    if args.dot:
        from repro.passes.report import to_dot

        hot = pflow.hotspot_detection(pag.V, n=max(args.top, 25))
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(to_dot(hot, name=prog.name))
        print(f"wrote {args.dot}")
    return 0


def cmd_paradigm(args) -> int:
    prog = _build(args.program, args.problem_class)
    pflow = _pflow_for(args)
    name = args.paradigm

    if name == "mpi-profiler":
        from repro.paradigms import mpi_profiler_paradigm

        pag = pflow.run(bin=prog, nprocs=args.np, nthreads=args.threads)
        _maybe_save_pag(args, pag)
        rows = mpi_profiler_paradigm(pflow, pag, top=args.top)
        print(f"{'call':18} {'site':20} {'time(s)':>10} {'app%':>7} {'count':>6}")
        for r in rows:
            print(f"{r.name:18} {r.site:20} {r.time:10.4f} {r.app_pct:7.2f} {r.count:6}")
    elif name == "communication":
        from repro.paradigms import communication_analysis_paradigm

        pag = pflow.run(bin=prog, nprocs=args.np, nthreads=args.threads)
        _maybe_save_pag(args, pag)
        _imb, _bd, report = communication_analysis_paradigm(pflow, pag, top=args.top)
        print(report.to_text())
    elif name == "scalability":
        from repro.paradigms import scalability_analysis_paradigm

        if not args.np_large:
            raise _usage_error("scalability needs --np-large")
        pag_small = pflow.run(bin=prog, nprocs=args.np, nthreads=args.threads)
        pag_large = pflow.run(bin=prog, nprocs=args.np_large, nthreads=args.threads)
        _maybe_save_pag(args, pag_small)
        res = scalability_analysis_paradigm(
            pflow, pag_small, pag_large, top=args.top, max_ranks=min(args.np_large, 64)
        )
        print("scaling-loss hotspots:")
        for v in res.V_hot:
            print(f"  {v.name:20} {v['debug-info']:18} loss={v['time']:.4f}s")
        print(f"backtracking: {len(res.V_bt)} vertices, {len(res.E_bt)} edges")
        shown = set()
        print("root-cause candidates:")
        for v in res.roots:
            if v.name not in shown:
                shown.add(v.name)
                print(f"  {v.name} ({v['debug-info']}) on process {v['process']}")
    elif name == "critical-path":
        from repro.paradigms import critical_path_paradigm

        pag = pflow.run(bin=prog, nprocs=args.np, nthreads=args.threads)
        _maybe_save_pag(args, pag)
        res = critical_path_paradigm(
            pflow, pag, max_ranks=min(args.np, 32), expand_threads=args.threads > 1
        )
        print(f"critical path weight: {res.weight:.4f}s")
        for vname, proc, thread, weight in res.summary[: args.top]:
            print(f"  {vname:20} p{proc}.t{thread}  {weight:.4f}s")
    elif name == "contention":
        from repro.paradigms import branching_diagnosis_paradigm

        base_threads = max(args.threads // 4, 1) or 1
        pag_base = pflow.run(bin=prog, nprocs=args.np, nthreads=base_threads)
        pag_scaled = pflow.run(bin=prog, nprocs=args.np, nthreads=args.threads)
        _maybe_save_pag(args, pag_scaled)
        res = branching_diagnosis_paradigm(
            pflow, pag_base, pag_scaled, top=args.top, max_ranks=min(args.np, 8)
        )
        print(f"differential suspects: {', '.join(sorted({v.name for v in res.V_diff}))}")
        print(
            f"contention: {len(res.V_contention)} vertices in "
            f"{len(res.E_contention)} inter-thread wait edges"
        )
        for hub in sorted({v["contention_hub"] for v in res.V_contention if v["contention_hub"]})[:5]:
            print(f"  serialization hub: {hub}")
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown paradigm {name!r}")
    return 0


def _parse_params(pairs: Sequence[str]) -> dict:
    """Parse ``--param key[=value]`` pairs (bare key means ``True``)."""
    params = {}
    for pair in pairs:
        key, sep, val = pair.partition("=")
        if not sep:
            params[key] = True
            continue
        low = val.strip().lower()
        if low in ("true", "false"):
            params[key] = low == "true"
            continue
        try:
            params[key] = int(val)
        except ValueError:
            try:
                params[key] = float(val)
            except ValueError:
                params[key] = val
    return params


def cmd_lint(args) -> int:
    import os

    from repro.lint import LintConfig, LintReport, Severity, lint_program

    prog = _build(args.program, args.problem_class, demos=True)
    try:
        config = LintConfig(
            nprocs=args.np, nthreads=args.threads, params=_parse_params(args.param)
        )
    except ValueError as err:
        raise _usage_error(str(err))
    codes = [c.strip() for c in args.rules.split(",")] if args.rules else None
    fmt = args.format
    if args.json:
        if fmt == "sarif":
            raise _usage_error("--json conflicts with --format sarif")
        fmt = "json"

    trace = None
    if args.run_trace:
        from repro.runtime.records import load_run_trace

        try:
            trace = load_run_trace(args.run_trace)
        except FileNotFoundError as err:
            raise _usage_error(f"no such trace file: {err.filename}")
        except (ValueError, KeyError) as err:
            raise _usage_error(f"not a repro run trace: {err}")
        if trace.program != prog.name:
            raise _usage_error(
                f"trace {args.run_trace} records program {trace.program!r}, "
                f"not {prog.name!r}"
            )

    try:
        if args.incremental:
            from repro.lint.incremental import lint_program_incremental

            report, stats = lint_program_incremental(
                prog, config, codes=codes, trace=trace, cache_dir=args.cache_dir
            )
            print(
                f"lint cache: {stats.function_hits} function hit(s), "
                f"{stats.function_misses} miss(es), program "
                f"{'hit' if stats.program_hit else 'miss'}",
                file=sys.stderr,
            )
        else:
            report = lint_program(prog, config, codes=codes, trace=trace)
    except KeyError as err:
        raise _usage_error(err.args[0] if err.args else str(err))

    hidden = []
    if args.write_baseline and not args.baseline:
        raise _usage_error("--write-baseline needs --baseline FILE to write to")
    if args.baseline:
        from repro.lint.baseline import (
            Baseline,
            load_baseline,
            partition,
            write_baseline,
        )

        if os.path.exists(args.baseline):
            try:
                base = load_baseline(args.baseline)
            except ValueError as err:
                raise _usage_error(str(err))
        elif args.write_baseline:
            base = Baseline.empty()
        else:
            raise _usage_error(f"no such baseline file: {args.baseline}")
        if args.write_baseline:
            added, expired = write_baseline(args.baseline, list(report), previous=base)
            print(
                f"wrote baseline {args.baseline}: {len(report)} finding(s) "
                f"pinned (+{added} new, -{expired} expired)"
            )
            return EXIT_OK
        part = partition(list(report), base)
        hidden = part.hidden
        if hidden:
            obs_metrics.counter("lint.rules.suppressed").inc(len(hidden))
        report = LintReport(subject=report.subject, diagnostics=part.active)

    if fmt == "sarif":
        from repro.lint.sarif import sarif_json

        print(sarif_json(report, suppressed=hidden))
    elif fmt == "json":
        print(report.to_json())
    else:
        text = report.to_text()
        if hidden:
            text += f"\n{len(hidden)} baselined/suppressed finding(s) hidden"
        print(text)
    if args.fail_on != "never" and report.count_at_least(Severity.parse(args.fail_on)):
        return EXIT_ISSUES
    return EXIT_OK


def cmd_table1(args) -> int:
    from repro.ir.static_analysis import static_analysis_cost
    from repro.pag.serialize import storage_size
    from repro.pag.views import build_top_down_view
    from repro.runtime.executor import run_program
    from repro.runtime.sampler import dynamic_overhead_percent

    print(f"{'program':8} {'static(s)':>10} {'dynamic%':>9} {'space':>9}")
    for name, build in registry(args.problem_class).items():
        prog = build()
        run = run_program(
            prog,
            nprocs=args.ranks,
            nthreads=4 if name == "vite" else 1,
            machine=_machine_for(name),
        )
        td, _ = build_top_down_view(prog, run)
        print(
            f"{name:8} {static_analysis_cost(prog):10.2f} "
            f"{dynamic_overhead_percent(run):9.2f} {storage_size(td) / 1000:8.0f}K"
        )
    return 0


def cmd_table2(args) -> int:
    from repro.ir.binary import binary_info
    from repro.pag.views import build_top_down_view, parallel_view_stats
    from repro.runtime.executor import run_program

    print(f"{'program':8} {'KLoC':>7} {'binary':>9} {'|V|td':>7} {'|E|td':>7} {'|V|par':>10} {'|E|par':>10}")
    for name, build in registry(args.problem_class).items():
        prog = build()
        run = run_program(
            prog,
            nprocs=args.ranks,
            nthreads=4 if name == "vite" else 1,
            machine=_machine_for(name),
        )
        td, _ = build_top_down_view(prog, run)
        pv_v, pv_e = parallel_view_stats(td, run)
        info = binary_info(prog)
        print(
            f"{name:8} {info.code_kloc:7.1f} {info.binary_bytes:9} "
            f"{td.num_vertices:7} {td.num_edges:7} {pv_v:10} {pv_e:10}"
        )
    return 0


def _print_column_block(heading: str, stats: dict, kinds: dict) -> None:
    print(f"  {heading}:")
    if not stats:
        print("    (none)")
        return
    for key, nbytes in sorted(stats.items(), key=lambda kv: -kv[1]):
        kind = kinds.get(key, "?")
        print(f"    {key:18} [{kind}] {nbytes:>10,} B")


def cmd_pag(args) -> int:
    if args.action == "convert":
        return cmd_pag_convert(args)
    import json as json_mod
    import os

    on_disk = None
    if args.load:
        from repro.pag.formats import detect_format, load_pag, read_header

        if args.parallel:
            raise _usage_error(
                "--parallel needs a simulated run; it cannot combine with --load"
            )
        fmt = detect_format(args.load)
        if args.mmap and fmt != 3:
            raise _usage_error(
                f"--mmap needs a format-3 file; {args.load!r} is format {fmt} "
                f"(migrate with `repro pag convert {args.load} OUT --format 3`)"
            )
        pag = load_pag(args.load, mmap=args.mmap)
        on_disk = {
            "format": fmt,
            "bytes": os.stat(args.load).st_size,
            "mmap": bool(args.mmap),
        }
        if fmt == 3:
            hdr = read_header(args.load)
            on_disk["segments"] = {
                name: nbytes for name, (_off, nbytes) in hdr["directory"]["segments"].items()
            }
            on_disk["header_bytes"] = hdr["data_start"]
            lazy = sum(
                1
                for store in (pag._vprops, pag._eprops)
                for col in store.columns.values()
                if getattr(col, "is_lazy", False)
            )
            on_disk["lazy_columns"] = lazy
        name = pag.name
        pags = [("top-down", pag)]
    else:
        if args.mmap:
            raise _usage_error("--mmap only applies with --load FILE")
        prog = _build(args.program, args.problem_class)
        pflow = _pflow_for(args)
        pag = pflow.run(bin=prog, nprocs=args.np, nthreads=args.threads)
        name = prog.name
        pags = [("top-down", pag)]
        if args.parallel:
            pags.append(
                ("parallel", pflow.parallel_view(pag, max_ranks=min(args.np, 64)))
            )
    payload = {}
    for label, g in pags:
        stats = g.memory_stats()
        stats["total"] = (
            sum(stats["structural"].values())
            + stats["strings"]
            + sum(stats["vertex_columns"].values())
            + sum(stats["edge_columns"].values())
        )
        stats["vertex_column_kinds"] = {
            k: col.kind for k, col in g._vprops.columns.items()
        }
        stats["edge_column_kinds"] = {
            k: col.kind for k, col in g._eprops.columns.items()
        }
        payload[label] = stats
    if on_disk is not None:
        payload["on_disk"] = on_disk
    if args.json:
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
        return 0
    for label, stats in payload.items():
        if label == "on_disk":
            continue
        print(
            f"{name} {label} view: |V|={stats['num_vertices']:,} "
            f"|E|={stats['num_edges']:,} "
            f"({stats['total'] / 1024:.1f} KiB columnar)"
        )
        print(f"  structural arrays: {sum(stats['structural'].values()):,} B")
        print(f"  string table:      {stats['strings']:,} B")
        _print_column_block(
            "vertex columns", stats["vertex_columns"], stats["vertex_column_kinds"]
        )
        _print_column_block(
            "edge columns", stats["edge_columns"], stats["edge_column_kinds"]
        )
    if on_disk is not None:
        mode = " (mmap, lazy columns)" if on_disk["mmap"] else ""
        print(
            f"  on disk: format {on_disk['format']}, "
            f"{on_disk['bytes']:,} B{mode}"
        )
        if "segments" in on_disk:
            print(
                f"    header+directory: {on_disk['header_bytes']:,} B, "
                f"{on_disk['lazy_columns']} lazy column(s)"
            )
            for seg, nbytes in sorted(
                on_disk["segments"].items(), key=lambda kv: -kv[1]
            ):
                print(f"    {seg:22} {nbytes:>12,} B")
    return 0


def cmd_pag_convert(args) -> int:
    from repro.pag.formats import detect_format, load_pag, save_pag

    src_fmt = detect_format(args.infile)
    pag = load_pag(args.infile)
    n = save_pag(
        pag, args.outfile, include_per_rank=args.per_rank, format=args.format
    )
    print(
        f"converted {args.infile} (format {src_fmt}) -> "
        f"{args.outfile} (format {args.format}, {n:,} bytes)"
    )
    return EXIT_OK


def cmd_obs(args) -> int:
    handlers = {
        "analyze": cmd_obs_analyze,
        "history": cmd_obs_history,
        "show": cmd_obs_show,
        "diff": cmd_obs_diff,
        "regressions": cmd_obs_regressions,
    }
    return handlers[args.action](args)


def cmd_obs_analyze(args) -> int:
    if args.tree:
        import json as json_mod

        try:
            with open(args.trace_file, "r", encoding="utf-8") as fh:
                doc = json_mod.load(fh)
        except FileNotFoundError as err:
            raise _usage_error(f"no such trace file: {err.filename}")
        except ValueError as err:
            raise _usage_error(f"not a repro trace: {err}")
        rec = obs_trace.SpanRecorder.from_chrome_trace(doc)
        if not rec.spans:
            raise _usage_error(f"no spans in {args.trace_file!r}")
        print(rec.to_tree(min_ms=args.min_ms))
        return EXIT_OK
    from repro.obs.selfpag import analyze_trace

    try:
        res = analyze_trace(
            args.trace_file,
            top=args.top,
            metrics_path=args.metrics,
            imbalance_threshold=args.threshold,
        )
    except FileNotFoundError as err:
        raise _usage_error(f"no such trace file: {err.filename}")
    except (ValueError, KeyError) as err:
        raise _usage_error(f"not a repro trace: {err}")
    print(res.to_text(top=args.top))
    return EXIT_OK


def _ledger_for(args):
    from repro.obs import ledger as obs_ledger

    root = obs_ledger.resolve_ledger(True, getattr(args, "ledger_dir", None))
    return obs_ledger.Ledger(root)


def _ledger_get(ledger, run_id):
    try:
        return ledger.get(run_id)
    except KeyError as err:
        raise _usage_error(err.args[0] if err.args else str(err))


def _fmt_run_line(rec) -> str:
    import time as time_mod

    when = time_mod.strftime(
        "%Y-%m-%d %H:%M:%S", time_mod.localtime(rec.get("time", 0))
    )
    what = rec.get("paradigm") or rec.get("command", "?")
    target = rec.get("program") or "-"
    return (
        f"{rec['run_id']:34} {when}  {rec.get('command', '?'):8} "
        f"{what:14} {target:10} wall={rec.get('wall_s', 0.0):8.3f}s "
        f"exit={rec.get('exit_code', 0)}"
    )


def cmd_obs_history(args) -> int:
    import json as json_mod

    ledger = _ledger_for(args)
    records = ledger.history(limit=args.limit)
    if args.json:
        print(json_mod.dumps(records, indent=2, sort_keys=True))
        return EXIT_OK
    if not records:
        print(f"no runs recorded under {ledger.root}")
        return EXIT_OK
    for rec in records:
        print(_fmt_run_line(rec))
    return EXIT_OK


def cmd_obs_show(args) -> int:
    import json as json_mod

    ledger = _ledger_for(args)
    rec = _ledger_get(ledger, args.run)
    if args.json:
        print(json_mod.dumps(rec, indent=2, sort_keys=True))
        return EXIT_OK
    print(_fmt_run_line(rec))
    print(f"  argv:        {' '.join(rec.get('argv', []))}")
    print(f"  identity:    {rec.get('identity', '?')}")
    fps = rec.get("pag_fingerprints") or []
    print(f"  PAG fps:     {', '.join(fp[:16] for fp in fps) or '-'}")
    print(
        f"  wall/cpu:    {rec.get('wall_s', 0.0):.3f}s / "
        f"{rec.get('cpu_s', 0.0):.3f}s on Python {rec.get('python', '?')}"
    )
    nodes = rec.get("nodes") or []
    if nodes:
        print(f"  nodes ({len(nodes)}):")
        print(
            f"    {'name':24} {'count':>5} {'total(s)':>10} "
            f"{'in':>8} {'out':>8} {'cache':>9}"
        )
        for node in nodes:
            cache = ""
            if "cache_hits" in node or "cache_misses" in node:
                cache = f"{node.get('cache_hits', 0)}h/{node.get('cache_misses', 0)}m"
            print(
                f"    {node['name']:24} {node['count']:>5} "
                f"{node['total_s']:>10.4f} "
                f"{node.get('in_size', '-'):>8} {node.get('out_size', '-'):>8} "
                f"{cache:>9}"
            )
    return EXIT_OK


def cmd_obs_diff(args) -> int:
    import json as json_mod

    from repro.obs import ledger as obs_ledger

    ledger = _ledger_for(args)
    rec_a = _ledger_get(ledger, args.run_a)
    rec_b = _ledger_get(ledger, args.run_b)
    rows = obs_ledger.diff_records(rec_a, rec_b)
    if args.json:
        print(json_mod.dumps(rows, indent=2, sort_keys=True))
        return EXIT_OK
    if rec_a.get("identity") != rec_b.get("identity"):
        print(
            f"note: comparing different run identities "
            f"({rec_a.get('identity')} vs {rec_b.get('identity')})"
        )
    print(f"a: {rec_a['run_id']}  wall={rec_a.get('wall_s', 0.0):.3f}s")
    print(f"b: {rec_b['run_id']}  wall={rec_b.get('wall_s', 0.0):.3f}s")
    if not rows:
        print("no node rollups in either run")
        return EXIT_OK
    print(f"{'node':24} {'a(s)':>10} {'b(s)':>10} {'delta(s)':>10} {'pct':>8}")
    for row in rows:
        a_s = f"{row['a_s']:.4f}" if row["a_s"] is not None else "-"
        b_s = f"{row['b_s']:.4f}" if row["b_s"] is not None else "-"
        pct = f"{row['pct']:+.1f}%" if row["pct"] is not None else "-"
        print(
            f"{row['name']:24} {a_s:>10} {b_s:>10} "
            f"{row['delta_s']:>+10.4f} {pct:>8}"
        )
    return EXIT_OK


def _parse_threshold(raw: str) -> float:
    try:
        return float(str(raw).strip().rstrip("%"))
    except ValueError:
        raise _usage_error(f"--threshold must be a percentage, got {raw!r}")


def cmd_obs_regressions(args) -> int:
    import json as json_mod

    from repro.obs import ledger as obs_ledger

    threshold = _parse_threshold(args.threshold)
    ledger = _ledger_for(args)
    if args.run:
        target = _ledger_get(ledger, args.run)
    else:
        recent = ledger.history(limit=1)
        if not recent:
            raise _usage_error(f"no runs recorded under {ledger.root}")
        target = recent[0]
    baseline = ledger.baseline_for(target, last=args.last)
    findings = obs_ledger.find_regressions(
        target, baseline, threshold_pct=threshold
    )
    if args.json:
        print(
            json_mod.dumps(
                {
                    "run_id": target["run_id"],
                    "baseline_runs": len(baseline),
                    "threshold_pct": threshold,
                    "regressions": findings,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return EXIT_ISSUES if findings else EXIT_OK
    print(f"target:   {target['run_id']} ({target.get('identity', '?')})")
    print(f"baseline: {len(baseline)} matching run(s)")
    if len(baseline) < obs_ledger.MIN_BASELINE_RUNS:
        print(
            f"not enough history to judge (need "
            f"{obs_ledger.MIN_BASELINE_RUNS} matching runs)"
        )
        return EXIT_OK
    if not findings:
        print(f"no regressions beyond {threshold:g}% over the baseline median")
        return EXIT_OK
    print(f"{'node':24} {'now(s)':>10} {'median(s)':>10} {'mad(s)':>10} {'pct':>9}")
    for f in findings:
        pct = f"{f['pct']:+.1f}%" if f["pct"] is not None else "new"
        print(
            f"{f['name']:24} {f['current_s']:>10.4f} {f['median_s']:>10.4f} "
            f"{f['mad_s']:>10.4f} {pct:>9}"
        )
    return EXIT_ISSUES


def cmd_serve(args) -> int:
    from repro.serve.server import ServerConfig, main_loop

    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        backend=args.backend,
        cache=args.cache,
        cache_dir=args.cache_dir,
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        drain_timeout=args.drain_timeout,
        ledger=args.ledger,
        ledger_dir=args.ledger_dir,
        pag_root=args.pag_root,
    )
    if config.max_concurrent < 1:
        raise _usage_error("--max-concurrent must be >= 1")
    if config.max_queue < 0:
        raise _usage_error("--max-queue must be >= 0")
    return main_loop(config, announce=sys.stdout)


def cmd_cache(args) -> int:
    from repro.cache import DiskStore, default_cache_dir

    root = args.cache_dir if args.cache_dir else default_cache_dir()
    store = DiskStore(root)
    if args.action == "stats":
        stats = store.stats()
        print(f"cache dir: {stats['dir']}")
        print(f"  entries: {stats['entries']:,}")
        print(f"  bytes:   {stats['bytes']:,}")
    else:  # clear
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
    return EXIT_OK


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PerFlow reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flags, attachable to every subcommand (add_help=False so
    # they compose as argparse parents).
    logpar = argparse.ArgumentParser(add_help=False)
    logpar.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise log verbosity (-v info, -vv debug)",
    )
    logpar.add_argument(
        "-q", "--quiet", action="store_true", help="only log errors"
    )
    obspar = argparse.ArgumentParser(add_help=False)
    obspar.add_argument(
        "--trace", metavar="FILE",
        help="record a Chrome trace-event JSON of this command's execution",
    )
    obspar.add_argument(
        "--metrics", dest="metrics_out", metavar="FILE",
        help="write the metrics registry as JSON when the command finishes",
    )
    # Run-ledger flags for the commands whose runs are worth remembering
    # (run/paradigm/lint); `repro obs {history,show,diff,regressions}`
    # reads what these write.
    ledgerpar = argparse.ArgumentParser(add_help=False)
    ledgroup = ledgerpar.add_mutually_exclusive_group()
    ledgroup.add_argument(
        "--ledger", dest="ledger", action="store_const", const=True, default=None,
        help="append this run to the run ledger (default: $PERFLOW_LEDGER or on)",
    )
    ledgroup.add_argument(
        "--no-ledger", dest="ledger", action="store_const", const=False,
        help="skip the run ledger for this invocation",
    )
    ledgerpar.add_argument(
        "--ledger-dir", metavar="DIR", default=None,
        help="run-ledger directory (default: $PERFLOW_LEDGER_DIR or "
             ".perflow/ledger)",
    )

    sub.add_parser(
        "list", parents=[logpar], help="list modelled programs and paradigms"
    )

    def common(p):
        p.add_argument(
            "program", nargs="?", help="program name (see `repro list`)"
        )
        p.add_argument(
            "--app", help="program name (alternative to the positional)"
        )
        p.add_argument("--np", type=int, default=8, help="MPI rank count")
        p.add_argument("--threads", type=int, default=1, help="threads per rank")
        p.add_argument("--class", dest="problem_class", default="W", help="NPB class (S/W/A/B/C)")
        p.add_argument("--top", type=int, default=10, help="hotspot count")
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="PerFlowGraph worker threads (default: $PERFLOW_JOBS or 1 = serial)",
        )
        p.add_argument(
            "--backend", default=None, metavar="NAME",
            help="pool backend for --jobs: thread or process "
            "(default: $PERFLOW_BACKEND or thread)",
        )
        onoff = p.add_mutually_exclusive_group()
        onoff.add_argument(
            "--cache", dest="cache", action="store_const", const=True, default=None,
            help="enable the pass-result cache (default: $PERFLOW_CACHE or off)",
        )
        onoff.add_argument(
            "--no-cache", dest="cache", action="store_const", const=False,
            help="disable the pass-result cache",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="persist cached pass results under DIR (implies --cache)",
        )

    p_run = sub.add_parser(
        "run",
        parents=[logpar, obspar, ledgerpar],
        help="run a program and summarize its PAG",
    )
    common(p_run)
    p_run.add_argument("--report", action="store_true", help="print a hotspot report")
    p_run.add_argument("--dot", help="write a Graphviz view to this file")
    p_run.add_argument(
        "--record-trace", metavar="FILE",
        help="save the run's event streams as a run trace (deadlocks are "
             "recorded instead of raised); feed it to `repro lint --trace`",
    )

    # lint defines its own --trace (a *run trace input*), so it must not
    # inherit obspar's --trace (a Chrome trace *output*); --metrics is
    # re-declared to keep the observability side available.
    p_lint = sub.add_parser(
        "lint",
        parents=[logpar, ledgerpar],
        help="statically lint a program model (no simulated run)",
    )
    p_lint.add_argument("program", help="program name (see `repro list`)")
    p_lint.add_argument("--np", type=int, default=16, help="sample MPI rank count to probe")
    p_lint.add_argument("--threads", type=int, default=4, help="sample threads per rank")
    p_lint.add_argument("--class", dest="problem_class", default="W", help="NPB class (S/W/A/B/C)")
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit diagnostics as JSON (same as --format json)",
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (sarif emits a SARIF 2.1.0 log for CI upload)",
    )
    p_lint.add_argument(
        "--fail-on",
        choices=["info", "warning", "error", "never"],
        default="error",
        help="exit 1 when a diagnostic at/above this severity is found",
    )
    p_lint.add_argument(
        "--rules", help="comma-separated rule codes to run (default: all)"
    )
    p_lint.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY[=VALUE]",
        help="model parameter passed to probes, e.g. --param optimized",
    )
    p_lint.add_argument(
        "--trace", dest="run_trace", metavar="FILE",
        help="recorded run trace (`repro run --record-trace`); concurrency "
             "findings are confirmed against it and races reported",
    )
    p_lint.add_argument(
        "--metrics", dest="metrics_out", metavar="FILE",
        help="write the metrics registry as JSON when the command finishes",
    )
    p_lint.add_argument(
        "--baseline", metavar="FILE",
        help="apply a .perflowlint.toml suppression/baseline file; only "
             "findings absent from it fail the run",
    )
    p_lint.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot the current findings into --baseline FILE and exit 0",
    )
    p_lint.add_argument(
        "--incremental", action="store_true",
        help="cache per-function rule results keyed on IR fingerprints",
    )
    p_lint.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="lint cache directory (default: $PERFLOW_CACHE_DIR or "
             "~/.cache/perflow)",
    )

    p_par = sub.add_parser(
        "paradigm",
        parents=[logpar, obspar, ledgerpar],
        help="run a built-in analysis paradigm",
    )
    p_par.add_argument(
        "paradigm",
        # Accept underscore spellings too (mpi_profiler == mpi-profiler);
        # argparse applies `type` before validating against `choices`.
        type=lambda s: s.replace("_", "-"),
        choices=["mpi-profiler", "communication", "scalability", "critical-path", "contention"],
    )
    common(p_par)
    p_par.add_argument("--np-large", type=int, help="large-scale rank count (scalability)")
    for p in (p_run, p_par):
        p.add_argument(
            "--save-pag", metavar="FILE", default=None,
            help="save the analyzed PAG to FILE (see --pag-format)",
        )
        p.add_argument(
            "--pag-format", type=int, choices=(1, 2, 3), default=2,
            help="on-disk format for --save-pag: 1/2 JSON, 3 binary mmap-able",
        )

    p_pag = sub.add_parser(
        "pag",
        help="inspect a program's PAG (memory footprint per column) or "
             "convert saved PAG files between formats",
    )
    pag_sub = p_pag.add_subparsers(dest="action", required=True)
    p_stats = pag_sub.add_parser(
        "stats",
        parents=[logpar, obspar],
        help="report a PAG's per-column memory footprint",
    )
    common(p_stats)
    p_stats.add_argument(
        "--parallel", action="store_true", help="also report the parallel view"
    )
    p_stats.add_argument("--json", action="store_true", help="emit stats as JSON")
    p_stats.add_argument(
        "--load", metavar="FILE",
        help="inspect a saved PAG file instead of running a program",
    )
    p_stats.add_argument(
        "--mmap", action="store_true",
        help="open --load FILE via mmap (format 3 only): O(header) open, "
             "columns fault in lazily",
    )
    p_conv = pag_sub.add_parser(
        "convert",
        parents=[logpar, obspar],
        help="rewrite a saved PAG in another on-disk format",
    )
    p_conv.add_argument("infile", help="saved PAG (any format; sniffed)")
    p_conv.add_argument("outfile", help="destination file")
    p_conv.add_argument(
        "--format", type=int, choices=(1, 2, 3), default=3,
        help="target format: 1/2 JSON, 3 binary mmap-able (default: 3)",
    )
    p_conv.add_argument(
        "--per-rank", action="store_true",
        help="keep full per-rank vectors instead of scalar summaries",
    )

    p_serve = sub.add_parser(
        "serve",
        parents=[logpar, ledgerpar],
        help="run the concurrent analysis server (HTTP/JSON + NDJSON)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 picks a free one; printed on startup)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker threads per pipeline run (default: $PERFLOW_JOBS or 1)",
    )
    p_serve.add_argument(
        "--backend", default=None, metavar="NAME",
        help="pool backend per pipeline run: thread or process "
        "(default: $PERFLOW_BACKEND or thread)",
    )
    serveonoff = p_serve.add_mutually_exclusive_group()
    serveonoff.add_argument(
        "--cache", dest="cache", action="store_const", const=True, default=None,
        help="enable the shared pass-result cache "
             "(default: $PERFLOW_CACHE or off)",
    )
    serveonoff.add_argument(
        "--no-cache", dest="cache", action="store_const", const=False,
        help="disable the pass-result cache",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist cached results under DIR, shared across server "
             "processes (implies --cache)",
    )
    p_serve.add_argument(
        "--max-concurrent", type=int, default=4, metavar="N",
        help="pipeline runs executing at once (default 4)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="admitted-but-waiting requests beyond --max-concurrent "
             "before 429 rejection (default 16)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long a SIGTERM drain waits for in-flight requests",
    )
    p_serve.add_argument(
        "--pag-root", metavar="DIR", default=None,
        help="only serve pag_path requests resolving under DIR "
             "(default: any server-readable path; see docs/SERVING.md "
             "trust model)",
    )

    p_cache = sub.add_parser(
        "cache",
        parents=[logpar],
        help="inspect or clear the on-disk pass-result cache",
    )
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default: $PERFLOW_CACHE_DIR or ~/.cache/perflow)",
    )

    for name in ("table1", "table2"):
        p_t = sub.add_parser(
            name, parents=[logpar, obspar], help=f"regenerate {name}'s rows"
        )
        p_t.add_argument("--ranks", type=int, default=32)
        p_t.add_argument("--class", dest="problem_class", default="W")

    p_obs = sub.add_parser(
        "obs",
        help="observability: trace self-analysis and the run ledger",
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)

    ledpar = argparse.ArgumentParser(add_help=False)
    ledpar.add_argument(
        "--ledger-dir", metavar="DIR", default=None,
        help="run-ledger directory (default: $PERFLOW_LEDGER_DIR or "
             ".perflow/ledger)",
    )

    p_an = obs_sub.add_parser(
        "analyze",
        parents=[logpar],
        help="self-analysis: run PerFlow's passes on one of its own traces",
    )
    p_an.add_argument(
        "trace_file", help="Chrome trace-event JSON written by --trace"
    )
    p_an.add_argument(
        "--metrics", metavar="FILE",
        help="metrics JSON written by --metrics, folded into the report",
    )
    p_an.add_argument("--top", type=int, default=10, help="hotspot count")
    p_an.add_argument(
        "--threshold", type=float, default=1.2,
        help="imbalance ratio above which a span group is flagged",
    )
    p_an.add_argument(
        "--tree", action="store_true",
        help="print the trace as an indented span tree instead of the "
             "hotspot/imbalance report",
    )
    p_an.add_argument(
        "--min-ms", type=float, default=0.0, metavar="N",
        help="with --tree: hide spans shorter than N milliseconds",
    )

    p_hist = obs_sub.add_parser(
        "history", parents=[logpar, ledpar], help="list recent ledger runs"
    )
    p_hist.add_argument(
        "--limit", type=int, default=20, help="runs to show (0 = all)"
    )
    p_hist.add_argument("--json", action="store_true", help="emit records as JSON")

    p_show = obs_sub.add_parser(
        "show", parents=[logpar, ledpar], help="show one ledger run record"
    )
    p_show.add_argument("run", help="run id (unambiguous prefixes accepted)")
    p_show.add_argument("--json", action="store_true", help="emit the record as JSON")

    p_diff = obs_sub.add_parser(
        "diff", parents=[logpar, ledpar],
        help="per-node duration deltas between two ledger runs",
    )
    p_diff.add_argument("run_a", help="baseline run id")
    p_diff.add_argument("run_b", help="comparison run id")
    p_diff.add_argument("--json", action="store_true", help="emit rows as JSON")

    p_reg = obs_sub.add_parser(
        "regressions", parents=[logpar, ledpar],
        help="flag nodes slower than their noise-aware ledger baseline "
             "(exit 1 on regression)",
    )
    p_reg.add_argument(
        "--run", default=None,
        help="target run id (default: the most recent record)",
    )
    p_reg.add_argument(
        "--last", type=int, default=8, metavar="N",
        help="baseline size: most recent N matching runs (default 8)",
    )
    p_reg.add_argument(
        "--threshold", default="25%",
        help="relative regression threshold over the baseline median, "
             "e.g. 25%% (default)",
    )
    p_reg.add_argument("--json", action="store_true", help="emit findings as JSON")
    return parser


#: Commands whose invocations land in the run ledger.
LEDGERED_COMMANDS = ("run", "paradigm", "lint")


def _ledger_params(args) -> dict:
    """The args that make two invocations "the same run" for baselines."""
    params = {}
    for key in ("np", "threads", "np_large", "problem_class", "jobs", "backend"):
        value = getattr(args, key, None)
        if value is not None:
            params[key] = value
    return params


def _append_ledger_record(
    args, ledger_dir, recorder, exit_code, wall_s, cpu_s, fingerprints
) -> None:
    """Append this invocation to the run ledger (never raises)."""
    from repro.obs import ledger as obs_ledger

    log = obs_log.get_logger("cli")
    try:
        record = obs_ledger.build_run_record(
            command=args.command,
            argv=list(sys.argv[1:]),
            program=getattr(args, "program", None),
            paradigm=getattr(args, "paradigm", None),
            params=_ledger_params(args),
            recorder=recorder,
            wall_s=wall_s,
            cpu_s=cpu_s,
            exit_code=exit_code,
            pag_fingerprints=fingerprints,
        )
        obs_ledger.Ledger(ledger_dir).append(record)
        log.info("ledger: recorded %s under %s", record["run_id"], ledger_dir)
    except Exception as err:
        log.warning("ledger append failed: %s", err)


def _dispatch(args) -> int:
    """Run the selected command with tracing/metrics/ledger plumbing."""
    import time

    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "lint": cmd_lint,
        "paradigm": cmd_paradigm,
        "pag": cmd_pag,
        "table1": cmd_table1,
        "table2": cmd_table2,
        "obs": cmd_obs,
        "cache": cmd_cache,
        "serve": cmd_serve,
    }
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)

    ledger_dir = None
    if args.command in LEDGERED_COMMANDS:
        from repro.obs import ledger as obs_ledger

        try:
            ledger_dir = obs_ledger.resolve_ledger(
                getattr(args, "ledger", None), getattr(args, "ledger_dir", None)
            )
        except ValueError as err:
            raise _usage_error(str(err))

    # The ledger needs span rollups, so a ledgered command gets a full
    # recorder even without --trace (one-shot CLI runs can afford it;
    # the flight ring covers the always-on case).
    recorder = obs_trace.enable() if (trace_path or ledger_dir) else None
    rc: Optional[int] = None
    fingerprints: Sequence[str] = ()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        try:
            if ledger_dir:
                from repro.obs import ledger as obs_ledger

                with obs_ledger.collect_fingerprints() as fingerprints:
                    rc = handlers[args.command](args)
            else:
                rc = handlers[args.command](args)
            return rc
        except PAGFormatError as err:
            # Corrupt/truncated PAG files are a usage problem, not a crash.
            raise _usage_error(str(err))
        except OSError as err:
            # Unreadable input files / unwritable output paths used to
            # escape as tracebacks (run/paradigm/pag); report them cleanly.
            raise _usage_error(str(err))
    finally:
        if recorder is not None:
            obs_trace.disable()
            if trace_path:
                recorder.save(trace_path)
                print(f"wrote trace: {trace_path}", file=sys.stderr)
        if metrics_path:
            obs_metrics.registry.save(metrics_path)
            print(f"wrote metrics: {metrics_path}", file=sys.stderr)
        if ledger_dir and rc is not None:
            _append_ledger_record(
                args,
                ledger_dir,
                recorder,
                rc,
                time.perf_counter() - wall0,
                time.process_time() - cpu0,
                fingerprints,
            )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    obs_log.configure_logging(
        verbosity=getattr(args, "verbose", 0), quiet=getattr(args, "quiet", False)
    )
    if getattr(args, "jobs", None) is not None:
        from repro.dataflow.scheduler import resolve_jobs

        try:
            resolve_jobs(args.jobs)
        except ValueError as err:
            raise _usage_error(str(err))
    if getattr(args, "backend", None) is not None:
        from repro.dataflow.scheduler import resolve_backend

        try:
            resolve_backend(args.backend)
        except ValueError as err:
            raise _usage_error(str(err))
    if hasattr(args, "cache"):
        # Validate the cache spec (including a malformed $PERFLOW_CACHE)
        # up front, mirroring the --jobs check above.
        from repro.cache import resolve_cache

        try:
            resolve_cache(args.cache)
        except ValueError as err:
            raise _usage_error(str(err))
    if hasattr(args, "app"):
        if args.app and args.program and args.app != args.program:
            raise _usage_error(
                f"program given twice: positional {args.program!r} vs "
                f"--app {args.app!r}"
            )
        args.program = args.program or args.app
        if not args.program and not getattr(args, "load", None):
            raise _usage_error(
                f"{args.command} needs a program (positional or --app); "
                "see `repro list`"
            )
    # Always-on flight recorder for the invocation: a bounded ring of
    # recent span/log events, dumped on unhandled crashes and SIGUSR2.
    from repro.obs import flight as obs_flight

    obs_flight.enable()
    obs_flight.install_signal_dump()
    try:
        return _dispatch(args)
    except (SystemExit, KeyboardInterrupt):
        # Usage errors and Ctrl-C are not crashes; no report.
        raise
    except BaseException as exc:
        fl = obs_flight.get()
        if fl is not None:
            try:
                path = fl.dump_crash_report(reason="crash", exc=exc)
                print(f"wrote crash report: {path}", file=sys.stderr)
            except OSError:
                pass
        raise
    finally:
        obs_flight.disable()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The evaluated programs, modelled in the IR (paper §5.1).

NPB kernels (BT, CG, EP, FT, IS, LU, MG, SP), the three case-study
applications (ZeusMP, LAMMPS, Vite), and the artifact appendix's
pthreads micro-benchmark.  Each module exposes ``build(...) -> Program``
plus the paper-pinned constants its benchmarks need.

:func:`registry` enumerates every evaluated program with its default
builder — the iteration order matches Table 1/2's column order.
"""

from typing import Callable, Dict

from repro.ir.model import Program
from repro.apps import lammps, microbench, npb, vite, zeusmp
from repro.apps.npb import (
    build_bt,
    build_cg,
    build_ep,
    build_ft,
    build_is,
    build_lu,
    build_mg,
    build_sp,
)


def registry(problem_class: str = "W") -> Dict[str, Callable[[], Program]]:
    """name -> zero-argument builder for every evaluated program.

    ``problem_class`` applies to the NPB kernels (the paper uses CLASS C;
    tests default to W for speed).
    """
    builders: Dict[str, Callable[[], Program]] = {
        name: (lambda b=b: b(problem_class)) for name, b in npb.BUILDERS.items()
    }
    builders["zeusmp"] = zeusmp.build
    builders["lammps"] = lammps.build
    builders["vite"] = vite.build
    return builders


__all__ = [
    "registry",
    "npb",
    "zeusmp",
    "lammps",
    "vite",
    "microbench",
    "build_bt",
    "build_cg",
    "build_ep",
    "build_ft",
    "build_is",
    "build_lu",
    "build_mg",
    "build_sp",
]

"""The evaluated programs, modelled in the IR (paper §5.1).

NPB kernels (BT, CG, EP, FT, IS, LU, MG, SP), the three case-study
applications (ZeusMP, LAMMPS, Vite), and the artifact appendix's
pthreads micro-benchmark.  Each module exposes ``build(...) -> Program``
plus the paper-pinned constants its benchmarks need.

:func:`registry` enumerates every evaluated program with its default
builder — the iteration order matches Table 1/2's column order.
"""

from typing import Callable, Dict

from repro.ir.model import Program
from repro.apps import deadlock_ring, lammps, microbench, npb, vite, zeusmp
from repro.apps.npb import (
    build_bt,
    build_cg,
    build_ep,
    build_ft,
    build_is,
    build_lu,
    build_mg,
    build_sp,
)


def registry(
    problem_class: str = "W", demos: bool = False
) -> Dict[str, Callable[[], Program]]:
    """name -> zero-argument builder for every evaluated program.

    ``problem_class`` applies to the NPB kernels (the paper uses CLASS C;
    tests default to W for speed).  ``demos`` additionally exposes the
    deliberately-broken demonstration programs (``deadlock_ring``),
    which are excluded by default so benchmark sweeps and paper tables
    only see the evaluated applications.
    """
    builders: Dict[str, Callable[[], Program]] = {
        name: (lambda b=b: b(problem_class)) for name, b in npb.BUILDERS.items()
    }
    builders["zeusmp"] = zeusmp.build
    builders["lammps"] = lammps.build
    builders["vite"] = vite.build
    if demos:
        builders["deadlock_ring"] = deadlock_ring.build
    return builders


__all__ = [
    "registry",
    "npb",
    "zeusmp",
    "lammps",
    "vite",
    "microbench",
    "deadlock_ring",
    "build_bt",
    "build_cg",
    "build_ep",
    "build_ft",
    "build_is",
    "build_lu",
    "build_mg",
    "build_sp",
]

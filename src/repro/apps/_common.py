"""Shared building blocks for the modelled applications.

Every evaluated program is a :class:`~repro.ir.model.Program` whose
*core* captures the paper-relevant behaviour (communication pattern,
injected performance bug) and whose *structure padding* brings the
top-down view's vertex count to the paper's Table 2 value — padding
lives behind an always-false branch, so static analysis sees it (it is
part of "the binary") while the simulator never executes it.
"""

from __future__ import annotations

import math
from typing import Callable, List, Tuple

from repro.ir.context import ExecContext
from repro.ir.model import (
    Branch,
    Call,
    CommCall,
    CommOp,
    Function,
    Node,
    Program,
    Stmt,
)
from repro.ir.static_analysis import analyze


# ---------------------------------------------------------------------------
# decomposition helpers
# ---------------------------------------------------------------------------
def dims_2d(nprocs: int) -> Tuple[int, int]:
    """Near-square 2D process grid (px * py == nprocs)."""
    px = int(math.sqrt(nprocs))
    while nprocs % px:
        px -= 1
    return px, nprocs // px


def dims_3d(nprocs: int) -> Tuple[int, int, int]:
    """Near-cubic 3D process grid."""
    px = max(1, round(nprocs ** (1.0 / 3.0)))
    while nprocs % px:
        px -= 1
    py, pz = dims_2d(nprocs // px)
    return px, py, pz


def neighbors_3d(rank: int, nprocs: int) -> List[int]:
    """The six face neighbors of ``rank`` on a periodic 3D grid.

    Ordered as ±x, ±y, ±z pairs so that any *even-length prefix* is a
    symmetric neighbor relation — truncated halo exchanges (e.g. CG's
    2-neighbor transpose) stay deadlock-free.
    """
    px, py, pz = dims_3d(nprocs)
    x = rank % px
    y = (rank // px) % py
    z = rank // (px * py)

    def enc(i: int, j: int, k: int) -> int:
        return (i % px) + (j % py) * px + (k % pz) * px * py

    out = []
    for axis in range(3):
        for d in (-1, 1):
            out.append(
                enc(x + d, y, z) if axis == 0
                else enc(x, y + d, z) if axis == 1
                else enc(x, y, z + d)
            )
    return out


def halo_exchange(
    nbytes,
    tag_base: int = 0,
    neighbor_count: int = 6,
    neighbor_fn: Callable[[ExecContext, int], int] = None,
    waitall_name: str = "MPI_Waitall",
    line: int = 0,
) -> List[Node]:
    """Isend/Irecv to each neighbor plus a closing Waitall.

    ``neighbor_fn(ctx, i)`` maps neighbor index to a rank; default is the
    periodic 3D face neighborhood truncated/extended to
    ``neighbor_count``.
    """

    def default_fn(ctx: ExecContext, i: int) -> int:
        nbrs = neighbors_3d(ctx.rank, ctx.nprocs)
        return nbrs[i % len(nbrs)]

    fn = neighbor_fn or default_fn
    nodes: List[Node] = []
    # All exchanges share tag_base: the pairing is symmetric (each side
    # posts one send and one recv per shared neighbor slot) and FIFO
    # matching pairs them deterministically, so no per-direction tags are
    # needed and the pattern is deadlock-free by construction.
    for i in range(neighbor_count):
        peer = (lambda idx: (lambda ctx: fn(ctx, idx) % ctx.nprocs))(i)
        nodes.append(
            CommCall(CommOp.ISEND, peer=peer, nbytes=nbytes, tag=tag_base, line=line)
        )
        nodes.append(
            CommCall(CommOp.IRECV, peer=peer, nbytes=nbytes, tag=tag_base, line=line + 1)
        )
    nodes.append(CommCall(CommOp.WAITALL, name=waitall_name, line=line + 2))
    return nodes


def ring_shift(nbytes, tag: int = 0, line: int = 0) -> List[Node]:
    """Deadlock-free ring shift: send to rank+1, receive from rank-1."""
    return [
        CommCall(
            CommOp.SENDRECV,
            peer=lambda ctx: (ctx.rank + 1) % ctx.nprocs,
            source=lambda ctx: (ctx.rank - 1) % ctx.nprocs,
            nbytes=nbytes,
            tag=tag,
            line=line,
        )
    ]


def hypercube_exchange(rounds: int, nbytes, tag_base: int = 100, line: int = 0) -> List[Node]:
    """Recursive-doubling exchange: round i pairs rank with rank XOR 2^i.

    This is how CG implements its reductions "with three point-to-point
    communications" — the pattern that makes its dynamic overhead the
    highest in Table 1.  XOR pairing is symmetric, so each round is
    deadlock-free; ranks whose partner falls outside the communicator
    (non-power-of-two sizes) sit the round out, as real recursive
    doubling does.
    """
    nodes: List[Node] = []
    for i in range(rounds):
        bit = 1 << i
        peer = (lambda b: (lambda ctx: ctx.rank ^ b))(bit)
        exchange = CommCall(
            CommOp.SENDRECV, peer=peer, nbytes=nbytes, tag=tag_base + i, line=line + i
        )
        cond = (lambda b: (lambda ctx: (ctx.rank ^ b) < ctx.nprocs))(bit)
        nodes.append(
            Branch(cond, then_body=[exchange], name=f"hcube_round_{i}", line=line + i)
        )
    return nodes


# ---------------------------------------------------------------------------
# structure padding
# ---------------------------------------------------------------------------
def pad_to_target(program: Program, target_vertices: int, source_file: str = "") -> Program:
    """Grow the top-down view to ``target_vertices`` (Table 2 calibration).

    Adds an always-false branch to ``main`` containing filler functions
    (8 statements each) plus loose statements for the remainder — the
    code a real binary of that size would contain but that the modelled
    run never enters.  Idempotent when the target is already met.
    """
    if "__phase_0" in program.functions:
        return program  # already padded
    current = analyze(program).pag.num_vertices
    deficit = target_vertices - current
    if deficit <= 1:
        return program
    sf = source_file or program.entry_function.source_file
    body: List[Node] = []
    remaining = deficit - 1  # the branch vertex itself
    idx = 0
    while remaining >= 10:
        fname = f"__phase_{idx}"
        program.add_function(
            Function(
                fname,
                [Stmt(f"{fname}_s{j}", cost=0.0, line=1000 + idx * 16 + j) for j in range(8)],
                source_file=sf,
                line=1000 + idx * 16,
            )
        )
        body.append(Call(fname, line=900 + idx))
        remaining -= 10
        idx += 1
    for j in range(remaining):
        body.append(Stmt(f"__pad_s{j}", cost=0.0, line=990))
    branch = Branch(condition=lambda ctx: False, then_body=body, name="init_once", line=899)
    program.register_nodes([branch])
    program.entry_function.body.append(branch)
    return program


def jitter(rank: int, salt: int = 0, amplitude: float = 0.02) -> float:
    """Deterministic per-rank multiplicative noise in [1-a, 1+a].

    A cheap hash keeps run-to-run determinism while breaking exact
    symmetry between ranks (real machines are never perfectly uniform).
    """
    h = (rank * 2654435761 + salt * 40503) & 0xFFFFFFFF
    return 1.0 + amplitude * ((h / 0xFFFFFFFF) * 2.0 - 1.0)

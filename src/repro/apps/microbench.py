"""Pthreads micro-benchmark (artifact appendix A.3.2).

A single-process multi-threaded program with deliberately unequal
thread workloads: thread T-1 does ~3× the work of thread 0.  The
critical-path detection task run on it must pass through the heaviest
thread's work and the join that waits for it — the expected answer the
artifact's ``pass_validation.py`` checks.
"""

from __future__ import annotations

from repro.apps._common import pad_to_target
from repro.ir.context import ExecContext
from repro.ir.model import (
    Function,
    Loop,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)

TARGET_VERTICES = 64
DEFAULT_THREADS = 4


def _thread_work(ctx: ExecContext) -> float:
    """Unequal per-thread cost: linear ramp, heaviest thread last."""
    nthreads = max(int(ctx.params.get("nthreads", ctx.nthreads)), 1)
    return 0.01 * (1.0 + 2.0 * ctx.thread / max(nthreads - 1, 1))


def build() -> Program:
    p = Program(
        name="pthread_microbench",
        entry="main",
        code_kloc=0.2,
        language="C",
        models=["Pthreads"],
        metadata={"target_vertices": TARGET_VERTICES},
    )
    p.add_function(
        Function(
            "main",
            [
                Stmt("setup", cost=0.001, line=12),
                ThreadCall(
                    ThreadOp.CREATE,
                    count=lambda ctx: max(int(ctx.params.get("nthreads", ctx.nthreads)), 1),
                    body=[
                        Loop(
                            trips=4,
                            name="loop_1",
                            line=30,
                            body=[Stmt("busy_work", cost=_thread_work, line=31)],
                        )
                    ],
                    name="pthread_create",
                    line=20,
                ),
                ThreadCall(ThreadOp.JOIN, name="pthread_join", line=40),
                Stmt("teardown", cost=0.001, line=45),
            ],
            source_file="micro.c",
            line=10,
        )
    )
    return pad_to_target(p, TARGET_VERTICES)

"""Model of ZeusMP — case study A (paper §5.3).

ZeusMP is a 3D astrophysical CFD code (MPI, Fortran).  The paper's
diagnosis, which this model reproduces:

* ``loop_10.1`` in ``bvald`` (*bvald.F:358*) is load-imbalanced — some
  ranks apply many more boundary-condition updates;
* ``bvald`` posts non-blocking halo sends/recvs (*bvald.F:391/399*);
* ``nudt`` waits on them at *nudt.F:227*, *:269*, *:328* — the delay of
  the imbalanced ranks propagates through three ``mpi_waitall_`` calls;
* the propagated delay finally surfaces as synchronization time in
  ``mpi_allreduce_`` at *nudt.F:361*, which is what naive profiling
  blames;
* ``loop_1.1.1`` in ``newdt`` is the second imbalanced site.

``optimized=True`` models the paper's fix (hybrid MPI+OpenMP: idle
processors share the imbalanced loops' work), removing the per-rank
skew while keeping everything else identical — speedup at 2,048 ranks
improves from ~72.6× to ~77.7× (16-rank baseline), i.e. ~7% faster.

Fortran naming is preserved (``mpi_waitall_``, ``mpi_allreduce_``) so
reports read like the paper's.
"""

from __future__ import annotations

from repro.apps._common import jitter, pad_to_target
from repro.ir.context import ExecContext
from repro.ir.model import (
    Call,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
)

#: Table 2 values for ZeusMP.
TARGET_VERTICES = 11_981
CODE_KLOC = 44.1
BINARY_BYTES = 2_200_000

#: Fraction of ranks that carry the extra boundary work, and how much.
#: Calibrated so the imbalance costs ~7% of step time at 2,048 ranks
#: (the gain the paper's fix realizes) while barely showing at 16.
IMBALANCED_FRACTION = 1.0 / 16.0
IMBALANCE_FACTOR = 1.40
NEWDT_IMBALANCE_FACTOR = 1.12

#: Problem size of the case study.
DEFAULT_PROBLEM = 256


def _is_heavy(rank: int, nprocs: int) -> bool:
    """Ranks owning the physical boundary slab do the extra work."""
    stride = max(1, int(1.0 / IMBALANCED_FRACTION))
    return rank % stride == 0


def _bvald_cost(ctx: ExecContext, base: float) -> float:
    """Per-rank cost of loop_10.1's boundary updates."""
    n = ctx.params.get("problem", DEFAULT_PROBLEM)
    work = base * (n / 256.0) ** 2 / max(ctx.nprocs, 1) ** (2.0 / 3.0)
    if not ctx.params.get("optimized", False) and _is_heavy(ctx.rank, ctx.nprocs):
        work *= IMBALANCE_FACTOR
    return work * jitter(ctx.rank, 41)


def _newdt_cost(ctx: ExecContext, base: float) -> float:
    n = ctx.params.get("problem", DEFAULT_PROBLEM)
    work = base * (n / 256.0) ** 3 / max(ctx.nprocs, 1)
    if not ctx.params.get("optimized", False) and _is_heavy(ctx.rank + 1, ctx.nprocs):
        work *= NEWDT_IMBALANCE_FACTOR
    return work * jitter(ctx.rank, 43)


def _compute_cost(ctx: ExecContext, base: float, salt: int) -> float:
    """Perfectly decomposed hydro work: scales as N^3 / P."""
    n = ctx.params.get("problem", DEFAULT_PROBLEM)
    return base * (n / 256.0) ** 3 / max(ctx.nprocs, 1) * jitter(ctx.rank, salt)


def _bvald_body(tag: int):
    """bvald: boundary-value loops plus non-blocking j-slice exchange."""
    return [
        Loop(
            trips=4,
            name="loop_10",
            line=357,
            body=[
                Loop(
                    trips=1,
                    name="loop_10.1",
                    line=358,
                    body=[
                        Stmt(
                            "bc_update",
                            cost=lambda ctx: _bvald_cost(ctx, 0.00334),
                            line=360,
                        )
                    ],
                ),
            ],
        ),
        CommCall(
            CommOp.IRECV,
            peer=lambda ctx: (ctx.rank - 1) % ctx.nprocs,
            nbytes=lambda ctx: 8 * ctx.params.get("problem", DEFAULT_PROBLEM) ** 2
            // max(ctx.nprocs, 1),
            tag=tag,
            name="mpi_irecv_",
            line=391,
        ),
        CommCall(
            CommOp.ISEND,
            peer=lambda ctx: (ctx.rank + 1) % ctx.nprocs,
            nbytes=lambda ctx: 8 * ctx.params.get("problem", DEFAULT_PROBLEM) ** 2
            // max(ctx.nprocs, 1),
            tag=tag,
            name="mpi_isend_",
            line=399,
        ),
    ]


def build(steps: int = 5) -> Program:
    """Build the ZeusMP model.

    Run parameters (``params`` of :func:`repro.runtime.run_program`):

    * ``problem`` — cube edge length (default 256, the case study's),
    * ``optimized`` — apply the hybrid MPI+OpenMP fix.
    """
    p = Program(
        name="zeusmp",
        entry="main",
        code_kloc=CODE_KLOC,
        language="Fortran",
        models=["MPI"],
        metadata={"binary_bytes": BINARY_BYTES, "target_vertices": TARGET_VERTICES},
    )
    p.add_function(Function("bvald", _bvald_body(tag=7), source_file="bvald.F", line=300))
    p.add_function(
        Function(
            "newdt",
            [
                Loop(
                    trips=2,
                    name="loop_1",
                    line=100,
                    body=[
                        Loop(
                            trips=2,
                            name="loop_1.1",
                            line=101,
                            body=[
                                Loop(
                                    trips=1,
                                    name="loop_1.1.1",
                                    line=102,
                                    body=[
                                        Stmt(
                                            "dt_local",
                                            cost=lambda ctx: _newdt_cost(ctx, 0.10),
                                            line=103,
                                        )
                                    ],
                                )
                            ],
                        )
                    ],
                ),
            ],
            source_file="newdt.F",
            line=90,
        )
    )
    p.add_function(
        Function(
            "nudt",
            [
                Call("bvald", line=207),
                CommCall(CommOp.WAITALL, name="mpi_waitall_", line=227),
                Call("bvald", line=242),
                CommCall(CommOp.WAITALL, name="mpi_waitall_", line=269),
                Call("bvald", line=284),
                CommCall(CommOp.WAITALL, name="mpi_waitall_", line=328),
                Stmt("dt_bookkeeping", cost=lambda ctx: 1.75e-4, line=335),
                Call("newdt", line=340),
                CommCall(CommOp.ALLREDUCE, nbytes=8, name="mpi_allreduce_", line=361),
            ],
            source_file="nudt.F",
            line=200,
        )
    )
    p.add_function(
        Function(
            "srcstep",
            [Stmt("hydro_src", cost=lambda ctx: _compute_cost(ctx, 0.70, 47), line=60)],
            source_file="srcstep.F",
            line=50,
        )
    )
    p.add_function(
        Function(
            "transprt",
            [Stmt("advect", cost=lambda ctx: _compute_cost(ctx, 0.90, 53), line=80)],
            source_file="transprt.F",
            line=70,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Stmt("setup", cost=lambda ctx: 0.0008, line=20),
                Loop(
                    trips=steps,
                    name="loop_1",
                    line=30,
                    body=[
                        Call("srcstep", line=31),
                        Call("transprt", line=32),
                        Call("nudt", line=33),
                    ],
                ),
                CommCall(CommOp.ALLREDUCE, nbytes=8, name="mpi_allreduce_", line=40),
            ],
            source_file="zeusmp.F",
            line=10,
        )
    )
    return pad_to_target(p, TARGET_VERTICES)

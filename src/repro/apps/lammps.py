"""Model of LAMMPS — case study B (paper §5.4).

LAMMPS runs molecular dynamics timesteps; the paper's diagnosis:

* ``loop_1.1`` in ``PairLJCut::compute`` (*pair_lj_cut.cpp:102-137*) is
  imbalanced — processes 0, 1, 2 own denser sub-domains and run longer;
* ``CommBrick::reverse_comm`` (*comm_brick.cpp:544/547*) exchanges
  per-swap buffers with **blocking** ``MPI_Send`` + ``MPI_Wait`` — the
  blocking communication propagates the slow ranks' delay to their
  neighbors, which then show up as communication hotspots (MPI_Send
  7.70% and MPI_Wait 7.42% of total time; ~28.9% total communication);
* the root cause is the loop, not the communication.

``params={"balanced": True}`` models the paper's fix (``balance``
commands re-shaping sub-domains every 250 steps): the pair-loop skew
disappears and throughput improves ~13.8%.
"""

from __future__ import annotations

from repro.apps._common import jitter, pad_to_target
from repro.ir.context import ExecContext
from repro.runtime.machine import MachineModel
from repro.ir.model import (
    Branch,
    Call,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
)

TARGET_VERTICES = 85_230
CODE_KLOC = 704.8
BINARY_BYTES = 14_670_000

#: Ranks with denser sub-domains, and their extra pair-loop work.
HEAVY_RANKS = (0, 1, 2)
HEAVY_FACTOR = 1.27

#: Per-step cost structure (seconds; shares follow §5.4's measurements).
PAIR_COST = 0.058
OTHER_COMPUTE = 0.013
NEIGHBOR_BUILD = 0.012
#: per-swap buffer (bytes): 6 swaps ≈ 7.7% of the step in transfers.
SWAP_BYTES = 1.45e7
#: atom-migration exchange payload.
EXCHANGE_BYTES = 4.0e7
NSWAP = 3

#: LAMMPS's large per-swap buffers ride the eager path (the real library
#: is configured with a large buffered-send threshold for these), which
#: splits the per-swap cost between MPI_Send (the buffer copy) and
#: MPI_Wait (the network transfer) as §5.4 reports.  Run the model with
#: this machine: ``run_program(prog, ..., machine=lammps.MACHINE)``.
MACHINE = MachineModel(
    bandwidth=1.10e10, copy_bandwidth=0.98e10, eager_threshold=2.0e7
)


def _pair_cost(ctx: ExecContext) -> float:
    work = PAIR_COST * jitter(ctx.rank, 61)
    if not ctx.params.get("balanced", False) and ctx.rank in HEAVY_RANKS:
        work *= HEAVY_FACTOR
    return work


def _comm_brick(direction: str, base_line: int):
    """CommBrick::forward_comm / reverse_comm — per-swap Irecv + blocking
    Send + Wait, exactly Listing 9's structure."""
    sign = 1 if direction == "forward" else -1
    return [
        Loop(
            trips=NSWAP,
            name=f"loop_swap_{direction}",
            line=base_line,
            body=[
                CommCall(
                    CommOp.IRECV,
                    peer=lambda ctx, s=sign: (ctx.rank - s) % ctx.nprocs,
                    nbytes=SWAP_BYTES,
                    tag=5 if direction == "forward" else 6,
                    req="swap",
                    name="MPI_Irecv",
                    line=base_line + 2,
                ),
                CommCall(
                    CommOp.SEND,
                    peer=lambda ctx, s=sign: (ctx.rank + s) % ctx.nprocs,
                    nbytes=SWAP_BYTES,
                    tag=5 if direction == "forward" else 6,
                    name="MPI_Send",
                    line=base_line + 3,
                ),
                CommCall(
                    CommOp.WAIT,
                    requests=("swap",),
                    name="MPI_Wait",
                    line=base_line + 4,
                ),
            ],
        )
    ]


def build(steps: int = 4) -> Program:
    """Build the LAMMPS model (in.clock.static-like workload).

    Run parameters: ``balanced`` — apply the sub-domain balance fix.
    """
    p = Program(
        name="lammps",
        entry="main",
        code_kloc=CODE_KLOC,
        language="C++",
        models=["MPI", "OpenMP"],
        metadata={"binary_bytes": BINARY_BYTES, "target_vertices": TARGET_VERTICES},
    )
    p.add_function(
        Function(
            "PairLJCut::compute",
            [
                Loop(
                    trips=2,
                    name="loop_1",
                    line=102,
                    body=[
                        Loop(
                            trips=1,
                            name="loop_1.1",
                            line=104,
                            body=[
                                Stmt(
                                    "lj_kernel",
                                    cost=lambda ctx: _pair_cost(ctx) / 2.0,
                                    line=110,
                                )
                            ],
                        )
                    ],
                ),
            ],
            source_file="pair_lj_cut.cpp",
            line=100,
        )
    )
    p.add_function(
        Function(
            "CommBrick::forward_comm",
            _comm_brick("forward", 480),
            source_file="comm_brick.cpp",
            line=478,
        )
    )
    p.add_function(
        Function(
            "CommBrick::reverse_comm",
            _comm_brick("reverse", 540),
            source_file="comm_brick.cpp",
            line=538,
        )
    )
    p.add_function(
        Function(
            "CommBrick::exchange",
            [
                CommCall(
                    CommOp.SENDRECV,
                    peer=lambda ctx: (ctx.rank + 1) % ctx.nprocs,
                    source=lambda ctx: (ctx.rank - 1) % ctx.nprocs,
                    nbytes=EXCHANGE_BYTES,
                    tag=9,
                    name="MPI_Sendrecv",
                    line=610,
                ),
                CommCall(
                    CommOp.SENDRECV,
                    peer=lambda ctx: (ctx.rank - 1) % ctx.nprocs,
                    source=lambda ctx: (ctx.rank + 1) % ctx.nprocs,
                    nbytes=EXCHANGE_BYTES,
                    tag=10,
                    name="MPI_Sendrecv",
                    line=615,
                ),
                CommCall(
                    CommOp.SENDRECV,
                    peer=lambda ctx: (ctx.rank + 2) % ctx.nprocs,
                    source=lambda ctx: (ctx.rank - 2) % ctx.nprocs,
                    nbytes=EXCHANGE_BYTES,
                    tag=11,
                    name="MPI_Sendrecv",
                    line=620,
                ),
            ],
            source_file="comm_brick.cpp",
            line=600,
        )
    )
    p.add_function(
        Function(
            "Neighbor::build",
            [Stmt("bin_atoms", cost=lambda ctx: NEIGHBOR_BUILD * jitter(ctx.rank, 67), line=710)],
            source_file="neighbor.cpp",
            line=700,
        )
    )
    p.add_function(
        Function(
            "Verlet::run",
            [
                Call("CommBrick::forward_comm", line=810),
                Call("PairLJCut::compute", line=815),
                Call("CommBrick::reverse_comm", line=820),
                Call("CommBrick::exchange", line=825),
                Call("Neighbor::build", line=830),
                Stmt("final_integrate", cost=lambda ctx: OTHER_COMPUTE * jitter(ctx.rank, 71), line=835),
                # thermo output only every few steps, as in the real input deck
                Branch(
                    lambda ctx: ctx.iteration % 4 == 0,
                    then_body=[
                        CommCall(CommOp.ALLREDUCE, nbytes=48, name="MPI_Allreduce", line=841)
                    ],
                    name="thermo",
                    line=840,
                ),
            ],
            source_file="verlet.cpp",
            line=800,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Stmt("read_input", cost=lambda ctx: 0.001, line=20),
                Loop(trips=steps, name="loop_1", line=30, body=[Call("Verlet::run", line=31)]),
            ],
            source_file="main.cpp",
            line=10,
        )
    )
    return pad_to_target(p, TARGET_VERTICES)


def timesteps_per_second(elapsed: float, steps: int) -> float:
    """Throughput metric of §5.4 (timesteps/s)."""
    return steps / elapsed if elapsed > 0 else 0.0

"""Concurrency-bug demonstration app for the PF1xx lint tier.

A deliberately broken ring program with three injected defects — each
detectable statically by :mod:`repro.lint.concurrency` and confirmable
from a recorded run trace — plus one correctly-synchronized pattern the
analyzer must *not* flag:

* **PF101** — every rank issues a blocking ``MPI_Send`` to its right
  neighbour before posting the matching receive.  The 1 MiB payload is
  far above the engine's eager threshold, so every send rendezvous-blocks
  and the ring forms a wait-for cycle.
* **PF103** — the two worker threads funnel into ``phase_even`` /
  ``phase_odd``, which acquire ``order_a`` and ``order_b`` in opposite
  orders (the inversion spans function boundaries).
* **PF104** — both workers increment ``ring_counter`` with no lock:
  a happens-before data race in any recorded trace.
* **benign** — both workers also update ``hist`` under ``hist_lock``,
  and the main thread reads it only after the join: fully ordered by
  lock chains and the join edge, so no PF104 finding.

``python -m repro run deadlock_ring --record-trace ring.json`` records
the deadlocking run; ``python -m repro lint deadlock_ring --trace
ring.json`` then confirms the static findings against it.
"""

from __future__ import annotations

from repro.apps._common import pad_to_target
from repro.ir.context import ExecContext
from repro.ir.model import (
    Branch,
    Call,
    CommCall,
    CommOp,
    Function,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)

TARGET_VERTICES = 48
#: 1 MiB — far above MachineModel.eager_threshold (64 KiB), forcing the
#: blocking ring sends into rendezvous so the cycle actually deadlocks.
RING_NBYTES = 1 << 20
RING_TAG = 7
WORKERS = 2


def _right(ctx: ExecContext) -> int:
    return (ctx.rank + 1) % ctx.nprocs


def _left(ctx: ExecContext) -> int:
    return (ctx.rank - 1) % ctx.nprocs


def build() -> Program:
    p = Program(
        name="deadlock_ring",
        entry="main",
        code_kloc=0.3,
        language="C",
        models=["MPI", "Pthreads"],
        metadata={"target_vertices": TARGET_VERTICES, "demo": True},
    )
    p.add_function(
        Function(
            "phase_even",
            [
                ThreadCall(ThreadOp.MUTEX_LOCK, lock="order_a", hold=0.002,
                           name="pthread_mutex_lock", line=61),
                ThreadCall(ThreadOp.MUTEX_LOCK, lock="order_b", hold=0.001,
                           name="pthread_mutex_lock", line=62),
                Stmt("even_critical", cost=0.001, line=63),
                ThreadCall(ThreadOp.MUTEX_UNLOCK, lock="order_b",
                           name="pthread_mutex_unlock", line=64),
                ThreadCall(ThreadOp.MUTEX_UNLOCK, lock="order_a",
                           name="pthread_mutex_unlock", line=65),
            ],
            source_file="ring.c",
            line=60,
        )
    )
    p.add_function(
        Function(
            "phase_odd",
            [
                ThreadCall(ThreadOp.MUTEX_LOCK, lock="order_b", hold=0.002,
                           name="pthread_mutex_lock", line=71),
                ThreadCall(ThreadOp.MUTEX_LOCK, lock="order_a", hold=0.001,
                           name="pthread_mutex_lock", line=72),
                Stmt("odd_critical", cost=0.001, line=73),
                ThreadCall(ThreadOp.MUTEX_UNLOCK, lock="order_a",
                           name="pthread_mutex_unlock", line=74),
                ThreadCall(ThreadOp.MUTEX_UNLOCK, lock="order_b",
                           name="pthread_mutex_unlock", line=75),
            ],
            source_file="ring.c",
            line=70,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Stmt("setup", cost=0.001, line=12),
                ThreadCall(
                    ThreadOp.CREATE,
                    count=WORKERS,
                    body=[
                        # Unsynchronized shared counter: the PF104 race.
                        Stmt("tally", cost=0.001, line=22,
                             touches=(("ring_counter", "w"),)),
                        Branch(
                            lambda ctx: ctx.thread % 2 == 1,
                            then_body=[Call("phase_even", line=25)],
                            else_body=[Call("phase_odd", line=27)],
                            name="phase_select",
                            line=24,
                        ),
                        # Correctly-synchronized: hist is only ever
                        # touched under hist_lock (and read after join).
                        ThreadCall(ThreadOp.MUTEX_LOCK, lock="hist_lock",
                                   hold=0.001, name="pthread_mutex_lock",
                                   line=30),
                        Stmt("hist_update", cost=0.001, line=31,
                             touches=(("hist", "w"),)),
                        ThreadCall(ThreadOp.MUTEX_UNLOCK, lock="hist_lock",
                                   name="pthread_mutex_unlock", line=32),
                    ],
                    name="pthread_create",
                    line=20,
                ),
                ThreadCall(ThreadOp.JOIN, name="pthread_join", line=40),
                Stmt("reduce_hist", cost=0.001, line=41,
                     touches=(("hist", "r"),)),
                # Everyone sends right before receiving from the left:
                # with rendezvous sends this is a full ring deadlock.
                CommCall(CommOp.SEND, peer=_right, nbytes=RING_NBYTES,
                         tag=RING_TAG, name="MPI_Send", line=50),
                CommCall(CommOp.RECV, peer=_left, nbytes=RING_NBYTES,
                         tag=RING_TAG, name="MPI_Recv", line=52),
                Stmt("teardown", cost=0.001, line=55),
            ],
            source_file="ring.c",
            line=10,
        )
    )
    return pad_to_target(p, TARGET_VERTICES)

"""Models of the NAS Parallel Benchmarks (BT, CG, EP, FT, IS, LU, MG, SP).

Each ``build_*`` function returns a :class:`~repro.ir.model.Program`
whose communication pattern matches the real kernel's character:

* **BT / SP** — ADI solvers: per-timestep face exchanges on a 3D
  decomposition (BT exchanges once per direction sweep, SP twice).
* **CG** — conjugate gradient: halo exchange for the sparse matvec plus
  reductions implemented with point-to-point recursive doubling ("CG
  implements collective communications with three point-to-point
  communications", §5.2) — the densest communication pattern, hence the
  highest dynamic overhead in Table 1.
* **EP** — embarrassingly parallel: pure compute, three closing
  reductions.
* **FT** — 3D FFT: an all-to-all transpose per iteration.
* **IS** — integer sort: bucket exchange (alltoall) plus a key-extent
  allreduce, very few calls overall (lowest overhead in Table 1).
* **LU** — SSOR: blocking pipelined wavefront sweeps.
* **MG** — multigrid V-cycles: halo exchanges on every level.

Structure is padded to Table 2's top-down |V|; code/binary sizes are
pinned to the paper's values.  Problem classes scale iteration counts
and payloads (CLASS C is the paper's configuration; tests use S/W for
speed).
"""

from __future__ import annotations

from typing import Dict

from repro.apps._common import (
    halo_exchange,
    hypercube_exchange,
    jitter,
    pad_to_target,
)
from repro.ir.model import (
    Branch,
    Call,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
)

#: iteration / payload multipliers per problem class.
CLASS_SCALE: Dict[str, float] = {"S": 0.1, "W": 0.25, "A": 0.5, "B": 0.75, "C": 1.0}

#: Table 2 calibration: program -> (top-down |V|, code KLoC, binary bytes)
TABLE2 = {
    "bt": (3283, 11.3, 490_000),
    "cg": (321, 2.0, 97_000),
    "ep": (111, 0.6, 60_000),
    "ft": (2904, 2.5, 222_000),
    "mg": (4701, 2.8, 270_000),
    "sp": (2252, 6.3, 357_000),
    "lu": (1566, 7.7, 325_000),
    "is": (325, 1.3, 37_000),
}


#: Per-kernel compute-cost factors calibrated so the overhead model
#: reproduces Table 1's dynamic-overhead shape (CG highest, EP/IS lowest).
COST_SCALE = {'bt': 0.95, 'cg': 1.525, 'ep': 0.4, 'ft': 0.125, 'is': 13.75, 'lu': 0.005, 'mg': 10.5, 'sp': 2.0}

def _scale(problem_class: str) -> float:
    try:
        return CLASS_SCALE[problem_class.upper()]
    except KeyError:
        raise ValueError(
            f"unknown NPB class {problem_class!r}; expected one of {sorted(CLASS_SCALE)}"
        ) from None


def _new_program(key: str, name: str) -> Program:
    nv, kloc, nbytes = TABLE2[key]
    return Program(
        name=name,
        code_kloc=kloc,
        language="Fortran" if key not in ("is",) else "C",
        models=["MPI"],
        metadata={"binary_bytes": nbytes, "suite": "NPB", "target_vertices": nv},
    )


def _finish(key: str, program: Program) -> Program:
    return pad_to_target(program, TABLE2[key][0])


# ---------------------------------------------------------------------------
# BT — block tridiagonal ADI
# ---------------------------------------------------------------------------
def build_bt(problem_class: str = "C", iterations: int = 8) -> Program:
    s = _scale(problem_class)
    c = s * COST_SCALE["bt"]
    p = _new_program("bt", "bt")
    for axis in ("x", "y", "z"):
        p.add_function(
            Function(
                f"{axis}_solve",
                [
                    Loop(
                        trips=2,
                        body=[
                            Stmt(
                                f"{axis}_backsubstitute",
                                cost=lambda ctx, c=c: 0.018 * c * jitter(ctx.rank, 7) / 1.0,
                                line=120,
                            )
                        ],
                        line=118,
                    ),
                ],
                source_file=f"{axis}_solve.f",
                line=100,
            )
        )
    p.add_function(
        Function(
            "copy_faces",
            halo_exchange(nbytes=lambda ctx, s=s: 160_000 * s, tag_base=10, line=200),
            source_file="copy_faces.f",
            line=190,
        )
    )
    p.add_function(
        Function(
            "adi",
            [
                Call("copy_faces", line=301),
                Stmt("compute_rhs", cost=lambda ctx, c=c: 0.012 * c * jitter(ctx.rank, 3), line=302),
                Call("x_solve", line=303),
                Call("y_solve", line=304),
                Call("z_solve", line=305),
                Stmt("add", cost=lambda ctx, c=c: 0.003 * c, line=306),
            ],
            source_file="adi.f",
            line=300,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Stmt("initialize", cost=lambda ctx, c=c: 0.002 * c, line=20),
                Loop(trips=iterations, body=[Call("adi", line=31)], name="loop_1", line=30),
                CommCall(CommOp.ALLREDUCE, nbytes=40, name="MPI_Allreduce", line=40),
            ],
            source_file="bt.f",
            line=10,
        )
    )
    return _finish("bt", p)


# ---------------------------------------------------------------------------
# SP — scalar pentadiagonal ADI (two exchanges per step)
# ---------------------------------------------------------------------------
def build_sp(problem_class: str = "C", iterations: int = 8) -> Program:
    s = _scale(problem_class)
    c = s * COST_SCALE["sp"]
    p = _new_program("sp", "sp")
    p.add_function(
        Function(
            "copy_faces",
            halo_exchange(nbytes=lambda ctx, s=s: 120_000 * s, tag_base=10, line=200),
            source_file="copy_faces.f",
            line=190,
        )
    )
    p.add_function(
        Function(
            "exch_qbc",
            halo_exchange(nbytes=lambda ctx, s=s: 60_000 * s, tag_base=20, line=240),
            source_file="exch_qbc.f",
            line=230,
        )
    )
    p.add_function(
        Function(
            "adi",
            [
                Call("copy_faces", line=301),
                Stmt("txinvr", cost=lambda ctx, c=c: 0.02 * c * jitter(ctx.rank, 5), line=302),
                Call("exch_qbc", line=303),
                Stmt("tzetar", cost=lambda ctx, c=c: 0.025 * c * jitter(ctx.rank, 9), line=304),
            ],
            source_file="adi.f",
            line=300,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Loop(trips=iterations, body=[Call("adi", line=31)], name="loop_1", line=30),
                CommCall(CommOp.ALLREDUCE, nbytes=40, name="MPI_Allreduce", line=40),
            ],
            source_file="sp.f",
            line=10,
        )
    )
    return _finish("sp", p)


# ---------------------------------------------------------------------------
# CG — conjugate gradient with point-to-point reductions
# ---------------------------------------------------------------------------
def build_cg(problem_class: str = "C", iterations: int = 15) -> Program:
    s = _scale(problem_class)
    c = s * COST_SCALE["cg"]
    p = _new_program("cg", "cg")
    p.add_function(
        Function(
            "conj_grad",
            [
                Stmt("matvec", cost=lambda ctx, c=c: 0.011 * c * jitter(ctx.rank, 11), line=410),
                # halo for the matvec: transpose-exchange with the row/col partner
                *halo_exchange(
                    nbytes=lambda ctx, s=s: 30_000 * s,
                    neighbor_count=2,
                    tag_base=30,
                    line=420,
                ),
                # rho = dot(r, z): recursive-doubling reduction (3 p2p rounds)
                *hypercube_exchange(3, nbytes=8, tag_base=40, line=430),
                Stmt("axpy", cost=lambda ctx, c=c: 0.004 * c, line=440),
                # alpha denominator reduction
                *hypercube_exchange(3, nbytes=8, tag_base=50, line=450),
                # residual norm reduction
                *hypercube_exchange(3, nbytes=8, tag_base=60, line=460),
            ],
            source_file="cg.f",
            line=400,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Stmt("makea", cost=lambda ctx, c=c: 0.003 * c, line=20),
                Loop(trips=iterations, body=[Call("conj_grad", line=31)], name="loop_1", line=30),
                CommCall(CommOp.ALLREDUCE, nbytes=8, name="MPI_Allreduce", line=40),
            ],
            source_file="cg.f",
            line=10,
        )
    )
    return _finish("cg", p)


# ---------------------------------------------------------------------------
# EP — embarrassingly parallel
# ---------------------------------------------------------------------------
def build_ep(problem_class: str = "C", iterations: int = 6) -> Program:
    s = _scale(problem_class)
    c = s * COST_SCALE["ep"]
    p = _new_program("ep", "ep")
    p.add_function(
        Function(
            "main",
            [
                Loop(
                    trips=iterations,
                    body=[
                        Stmt(
                            "gaussian_pairs",
                            cost=lambda ctx, c=c: 0.05 * c * jitter(ctx.rank, 13),
                            line=31,
                        )
                    ],
                    name="loop_1",
                    line=30,
                ),
                CommCall(CommOp.ALLREDUCE, nbytes=8, name="MPI_Allreduce", line=41),
                CommCall(CommOp.ALLREDUCE, nbytes=8, name="MPI_Allreduce", line=42),
                CommCall(CommOp.ALLREDUCE, nbytes=80, name="MPI_Allreduce", line=43),
            ],
            source_file="ep.f",
            line=10,
        )
    )
    return _finish("ep", p)


# ---------------------------------------------------------------------------
# FT — 3D FFT with all-to-all transpose
# ---------------------------------------------------------------------------
def build_ft(problem_class: str = "C", iterations: int = 6) -> Program:
    s = _scale(problem_class)
    c = s * COST_SCALE["ft"]
    p = _new_program("ft", "ft")
    p.add_function(
        Function(
            "fft3d",
            [
                Stmt("cffts1", cost=lambda ctx, c=c: 0.009 * c * jitter(ctx.rank, 17), line=210),
                CommCall(
                    CommOp.ALLTOALL,
                    nbytes=lambda ctx, s=s: 64_000 * s / max(ctx.nprocs, 1),
                    name="MPI_Alltoall",
                    line=220,
                ),
                Stmt("cffts2", cost=lambda ctx, c=c: 0.009 * c * jitter(ctx.rank, 19), line=230),
            ],
            source_file="ft.f",
            line=200,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Stmt("compute_initial_conditions", cost=lambda ctx, c=c: 0.002 * c, line=20),
                Loop(
                    trips=iterations,
                    body=[Call("fft3d", line=31), Stmt("evolve", cost=lambda ctx, c=c: 0.002 * c, line=32)],
                    name="loop_1",
                    line=30,
                ),
                CommCall(CommOp.REDUCE, nbytes=16, name="MPI_Reduce", line=40),
            ],
            source_file="ft.f",
            line=10,
        )
    )
    return _finish("ft", p)


# ---------------------------------------------------------------------------
# IS — integer sort
# ---------------------------------------------------------------------------
def build_is(problem_class: str = "C", iterations: int = 6) -> Program:
    s = _scale(problem_class)
    c = s * COST_SCALE["is"]
    p = _new_program("is", "is")
    p.add_function(
        Function(
            "rank_keys",
            [
                Stmt("bucket_count", cost=lambda ctx, c=c: 0.08 * c * jitter(ctx.rank, 23), line=110),
                CommCall(CommOp.ALLREDUCE, nbytes=4096, name="MPI_Allreduce", line=120),
                CommCall(
                    CommOp.ALLTOALL,
                    nbytes=lambda ctx, s=s: 16_000 * s / max(ctx.nprocs, 1),
                    name="MPI_Alltoall",
                    line=130,
                ),
                Stmt("local_sort", cost=lambda ctx, c=c: 0.04 * c, line=140),
            ],
            source_file="is.c",
            line=100,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Loop(trips=iterations, body=[Call("rank_keys", line=31)], name="loop_1", line=30),
            ],
            source_file="is.c",
            line=10,
        )
    )
    return _finish("is", p)


# ---------------------------------------------------------------------------
# LU — SSOR pipelined wavefront
# ---------------------------------------------------------------------------
def build_lu(problem_class: str = "C", iterations: int = 8) -> Program:
    s = _scale(problem_class)
    c = s * COST_SCALE["lu"]
    p = _new_program("lu", "lu")

    def sweep(direction: str, base_line: int):
        # Pipelined wavefront: receive from the upstream rank, compute,
        # send downstream.  Blocking (the real LU uses MPI_Send/MPI_Recv).
        if direction == "down":
            up = lambda ctx: ctx.rank - 1
            down = lambda ctx: ctx.rank + 1
            has_up = lambda ctx: ctx.rank > 0
            has_down = lambda ctx: ctx.rank < ctx.nprocs - 1
        else:
            up = lambda ctx: ctx.rank + 1
            down = lambda ctx: ctx.rank - 1
            has_up = lambda ctx: ctx.rank < ctx.nprocs - 1
            has_down = lambda ctx: ctx.rank > 0
        return [
            Branch(
                has_up,
                then_body=[
                    CommCall(
                        CommOp.RECV,
                        peer=up,
                        nbytes=lambda ctx, s=s: 8_000 * s,
                        tag=70 if direction == "down" else 71,
                        name="MPI_Recv",
                        line=base_line,
                    )
                ],
                name=f"recv_{direction}",
                line=base_line,
            ),
            Stmt(
                f"{direction}_sweep_compute",
                cost=lambda ctx, c=c: 0.009 * c * jitter(ctx.rank, 29),
                line=base_line + 2,
            ),
            Branch(
                has_down,
                then_body=[
                    CommCall(
                        CommOp.SEND,
                        peer=down,
                        nbytes=lambda ctx, s=s: 8_000 * s,
                        tag=70 if direction == "down" else 71,
                        name="MPI_Send",
                        line=base_line + 4,
                    )
                ],
                name=f"send_{direction}",
                line=base_line + 4,
            ),
        ]

    p.add_function(
        Function(
            "ssor",
            [
                *sweep("down", 510),
                *sweep("up", 530),
                Stmt("rhs_update", cost=lambda ctx, c=c: 0.004 * c, line=550),
            ],
            source_file="ssor.f",
            line=500,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Loop(trips=iterations, body=[Call("ssor", line=31)], name="loop_1", line=30),
                CommCall(CommOp.ALLREDUCE, nbytes=40, name="MPI_Allreduce", line=40),
            ],
            source_file="lu.f",
            line=10,
        )
    )
    return _finish("lu", p)


# ---------------------------------------------------------------------------
# MG — multigrid V-cycle
# ---------------------------------------------------------------------------
def build_mg(problem_class: str = "C", iterations: int = 5, levels: int = 8) -> Program:
    s = _scale(problem_class)
    c = s * COST_SCALE["mg"]
    p = _new_program("mg", "mg")
    for lvl in range(levels):
        p.add_function(
            Function(
                f"level_{lvl}",
                [
                    Stmt(
                        f"smooth_{lvl}",
                        cost=lambda ctx, c=c, lvl=lvl: 0.02 * c * jitter(ctx.rank, 31 + lvl) / (2 ** lvl),
                        line=600 + 10 * lvl,
                    ),
                    *halo_exchange(
                        nbytes=lambda ctx, s=s, lvl=lvl: max(64.0, 40_000 * s / (4 ** lvl)),
                        tag_base=80 + lvl,
                        line=602 + 10 * lvl,
                    ),
                ],
                source_file="mg.f",
                line=600 + 10 * lvl,
            )
        )
    p.add_function(
        Function(
            "vcycle",
            [Call(f"level_{lvl}", line=700 + lvl) for lvl in range(levels)],
            source_file="mg.f",
            line=700,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Loop(trips=iterations, body=[Call("vcycle", line=31)], name="loop_1", line=30),
                CommCall(CommOp.ALLREDUCE, nbytes=8, name="MPI_Allreduce", line=40),
                CommCall(CommOp.ALLREDUCE, nbytes=8, name="MPI_Allreduce", line=41),
            ],
            source_file="mg.f",
            line=10,
        )
    )
    return _finish("mg", p)


#: builder registry used by the benchmarks.
BUILDERS = {
    "bt": build_bt,
    "cg": build_cg,
    "ep": build_ep,
    "ft": build_ft,
    "is": build_is,
    "lu": build_lu,
    "mg": build_mg,
    "sp": build_sp,
}

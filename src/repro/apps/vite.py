"""Model of Vite — case study C (paper §5.5).

Vite is a distributed (MPI + OpenMP) Louvain community-detection code.
The paper's diagnosis, reproduced here:

* each thread's per-iteration hash-table work
  (``distExecuteLouvainIteration``) allocates heavily —
  ``allocate`` / ``_M_realloc_insert`` / ``_M_emplace`` /
  ``deallocate`` all funnel through the process-wide allocator lock
  (thread-unsafe memory allocation);
* total allocation work *grows with the thread count* (each thread owns
  hash tables), so the serialized allocator section expands as threads
  are added while the parallel compute shrinks — the run gets *slower*
  from 2 to 8 threads (speedup 0.56× at 8 threads, 2-thread baseline);
* the fix (static thread-local variables + a vector-based hashmap for
  tiny objects) removes almost all allocator traffic: ~25× faster at 8
  threads, and thread-scaling turns positive (1.46×).

Run parameters: ``nthreads`` (set by ``run_program``'s argument) and
``optimized`` (apply the fix).
"""

from __future__ import annotations

from repro.apps._common import jitter, pad_to_target
from repro.ir.context import ExecContext
from repro.ir.model import (
    Call,
    CommCall,
    CommOp,
    Function,
    Loop,
    Program,
    Stmt,
    ThreadCall,
    ThreadOp,
)

TARGET_VERTICES = 7_118
CODE_KLOC = 15.9
BINARY_BYTES = 2_800_000

#: Per-phase totals (seconds), calibrated to the paper's thread-scaling
#: shape: original t(8)/t(2) ≈ 1.8 (speedup 0.56×), optimized 25× faster
#: at 8 threads with 1.46× thread speedup.
PHASE_COMPUTE = 0.39
#: per-thread allocator ops per phase and per-op lock hold (original).
ALLOC_TRIPS = 15
ALLOC_HOLD = 1.05e-3
#: optimized: only the residual small-object allocations remain.
OPT_COMPUTE = 0.05
OPT_ALLOC_HOLD = 3.6e-5

#: Evaluation graph of §5.5.
GRAPH_VERTICES = 600_000
GRAPH_EDGES = 11_520_982


def _nthreads(ctx: ExecContext) -> int:
    return max(int(ctx.params.get("nthreads", ctx.nthreads)), 1)


def _compute_cost(ctx: ExecContext, salt: int) -> float:
    t = _nthreads(ctx)
    base = OPT_COMPUTE if ctx.params.get("optimized", False) else PHASE_COMPUTE
    return base / (t * ALLOC_TRIPS * 2) * jitter(ctx.rank * 8 + ctx.thread, salt)


def _hold(ctx: ExecContext) -> float:
    """Per-op lock hold: rehash spikes make it vary per (thread, trip).

    Real hash-table growth reallocates in bursts, so hold times are far
    from uniform — the variance also shuffles the allocator-lock queue,
    producing the many-to-many wait pattern Fig. 16's contention
    subgraphs match.
    """
    base = OPT_ALLOC_HOLD if ctx.params.get("optimized", False) else ALLOC_HOLD
    return base * jitter(ctx.thread * 977 + ctx.iteration * 131, salt=97, amplitude=0.6)


def _thread_body():
    """Per-thread Louvain iteration work (the body of the OpenMP region)."""
    return [
        Loop(
            trips=ALLOC_TRIPS,
            name="loop_1",
            line=120,
            body=[
                Stmt("_Hashtable::find", cost=lambda ctx: _compute_cost(ctx, 73), line=121),
                ThreadCall(ThreadOp.ALLOC, hold=_hold, name="allocate", line=122),
                ThreadCall(ThreadOp.REALLOC, hold=_hold, name="_M_realloc_insert", line=123),
                ThreadCall(ThreadOp.ALLOC, hold=_hold, name="_M_emplace", line=124),
                Stmt("_Hashtable::operator[]", cost=lambda ctx: _compute_cost(ctx, 79), line=125),
                ThreadCall(ThreadOp.DEALLOC, hold=_hold, name="deallocate", line=126),
            ],
        )
    ]


def build(phases: int = 2) -> Program:
    """Build the Vite model (distributed Louvain, MPI + OpenMP)."""
    p = Program(
        name="vite",
        entry="main",
        code_kloc=CODE_KLOC,
        language="C++",
        models=["MPI", "OpenMP"],
        metadata={
            "binary_bytes": BINARY_BYTES,
            "target_vertices": TARGET_VERTICES,
            "graph": {"vertices": GRAPH_VERTICES, "edges": GRAPH_EDGES},
        },
    )
    p.add_function(
        Function(
            "distBuildLocalMapCounter",
            [
                Stmt(
                    "count_edges",
                    cost=lambda ctx: 0.004 * jitter(ctx.rank, 83),
                    line=210,
                ),
            ],
            source_file="distComms.cpp",
            line=200,
        )
    )
    p.add_function(
        Function(
            "distExecuteLouvainIteration",
            [
                Call("distBuildLocalMapCounter", line=310),
                ThreadCall(
                    ThreadOp.CREATE,
                    count=lambda ctx: _nthreads(ctx),
                    body=_thread_body(),
                    name="omp_parallel",
                    line=315,
                ),
                ThreadCall(ThreadOp.JOIN, name="omp_join", line=340),
                Stmt(
                    "distUpdateLocalCinfo",
                    cost=lambda ctx: 0.002 * jitter(ctx.rank, 89),
                    line=345,
                ),
            ],
            source_file="louvain.cpp",
            line=300,
        )
    )
    p.add_function(
        Function(
            "distComputeModularity",
            [
                CommCall(CommOp.ALLREDUCE, nbytes=16, name="MPI_Allreduce", line=410),
            ],
            source_file="louvain.cpp",
            line=400,
        )
    )
    p.add_function(
        Function(
            "exchangeGhosts",
            [
                CommCall(
                    CommOp.SENDRECV,
                    peer=lambda ctx: (ctx.rank + 1) % ctx.nprocs,
                    source=lambda ctx: (ctx.rank - 1) % ctx.nprocs,
                    nbytes=200_000,
                    tag=3,
                    name="MPI_Sendrecv",
                    line=510,
                ),
            ],
            source_file="distComms.cpp",
            line=500,
        )
    )
    p.add_function(
        Function(
            "main",
            [
                Stmt("load_graph", cost=lambda ctx: 0.003, line=20),
                Loop(
                    trips=phases,
                    name="loop_1",
                    line=30,
                    body=[
                        Call("exchangeGhosts", line=31),
                        Call("distExecuteLouvainIteration", line=32),
                        Call("distComputeModularity", line=33),
                    ],
                ),
            ],
            source_file="main.cpp",
            line=10,
        )
    )
    return pad_to_target(p, TARGET_VERTICES)

"""§5.3's tool comparison on ZeusMP.

* **mpiP** reports mpi_allreduce_ growing from a negligible share at 16
  ranks to a large one at 2,048 (paper: 0.06% → 7.93%) — but only as a
  statistic, localization is manual;
* **HPCToolkit** flags scalability losses on mpi_allreduce_/mpi_waitall_
  nodes but provides no causal edges;
* **Scalasca** finds wait states automatically but costs ~56.7% runtime
  overhead and ~57.6 GB of traces at 128 ranks, where PerFlow pays
  ~1.56% and a few MB;
* implementation effort: the PerFlow paradigm is ~27 lines vs ScalAna's
  thousands (covered in test_case_zeusmp).
"""

import pytest

from repro.pag.serialize import storage_size
from repro.pag.views import build_top_down_view
from repro.runtime.executor import run_program
from repro.runtime.sampler import dynamic_overhead_percent
from repro.tools import hpctoolkit_profile, mpip_profile, scalasca_trace
from repro.tools.hpctoolkit import scalability_issues

from benchmarks.conftest import print_table

PAPER_MPIP_ALLREDUCE = (0.06, 7.93)  # % at 16 and 2048 ranks
PAPER_SCALASCA = (56.72, 57.64)  # overhead %, storage GB @128
PAPER_PERFLOW = (1.56, 2.4e6)  # overhead %, storage bytes @128


def test_mpip_allreduce_growth(benchmark, zeusmp_runs):
    prog = zeusmp_runs["program"]

    def profiles():
        small = mpip_profile(prog, 16, run=zeusmp_runs[16])
        large = mpip_profile(prog, 2048, run=zeusmp_runs[2048])
        return small.pct_of("mpi_allreduce_"), large.pct_of("mpi_allreduce_")

    p16, p2048 = benchmark.pedantic(profiles, rounds=1, iterations=1)
    print_table(
        "mpiP: mpi_allreduce_ share of total time (%)",
        ["ranks", "paper", "measured"],
        [[16, PAPER_MPIP_ALLREDUCE[0], f"{p16:.2f}"], [2048, PAPER_MPIP_ALLREDUCE[1], f"{p2048:.2f}"]],
    )
    assert p16 < 3.0  # negligible-to-small at 16 ranks
    assert p2048 > 3 * p16  # the share explodes with scale
    assert p2048 == pytest.approx(PAPER_MPIP_ALLREDUCE[1], rel=0.6)


def test_hpctoolkit_flags_without_causes(benchmark, zeusmp_runs):
    prog = zeusmp_runs["program"]

    def analyze():
        small = hpctoolkit_profile(prog, 16, run=zeusmp_runs[16])
        large = hpctoolkit_profile(prog, 2048, run=zeusmp_runs[2048])
        return scalability_issues(small, large)

    issues = benchmark.pedantic(analyze, rounds=1, iterations=1)
    names = {n for n, _ in issues}
    print_table(
        "HPCToolkit: flagged scalability losses",
        ["node", "growth x"],
        [[n, f"{g:.1f}"] for n, g in issues[:8]],
    )
    assert names & {"mpi_allreduce_", "mpi_waitall_"}
    # flat (name, growth) pairs only — no root-cause chain in the output
    assert all(len(item) == 2 for item in issues)


def test_scalasca_vs_perflow_costs(benchmark, all_programs):
    prog = all_programs["zeusmp"]

    def measure():
        run = run_program(prog, nprocs=128)
        trace = scalasca_trace(prog, 128, run=run)
        td, _ = build_top_down_view(prog, run)
        return trace, dynamic_overhead_percent(run), storage_size(td)

    trace, pf_overhead, pf_storage = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Scalasca vs PerFlow @128 ranks (ZeusMP)",
        ["metric", "Scalasca(P)", "Scalasca(M)", "PerFlow(P)", "PerFlow(M)"],
        [
            ["overhead %", PAPER_SCALASCA[0], f"{trace.overhead_pct:.2f}", PAPER_PERFLOW[0], f"{pf_overhead:.2f}"],
            ["storage", f"{PAPER_SCALASCA[1]} GB", f"{trace.storage_gb:.2f} GB", "2.4 MB", f"{pf_storage/1e6:.2f} MB"],
        ],
    )
    assert trace.overhead_pct == pytest.approx(PAPER_SCALASCA[0], rel=0.1)
    assert trace.storage_gb == pytest.approx(PAPER_SCALASCA[1], rel=0.5)
    assert pf_overhead == pytest.approx(PAPER_PERFLOW[0], rel=0.3)
    assert 0.2e6 < pf_storage < 10e6
    # the comparison's point: orders of magnitude apart
    assert trace.overhead_pct / pf_overhead > 20
    assert trace.storage_bytes / pf_storage > 1000
    # Scalasca does find causes (it is capable, just expensive)
    assert trace.wait_states


def test_scalana_reaches_same_conclusion(benchmark, zeusmp_runs):
    """ScalAna (the precursor) localizes the same scaling-loss region."""
    from repro.tools import scalana_analyze

    prog = zeusmp_runs["program"]
    rep = benchmark.pedantic(
        scalana_analyze,
        args=(prog, 16, 2048),
        kwargs={"runs": (zeusmp_runs[16], zeusmp_runs[2048]), "max_ranks": 32},
        rounds=1,
        iterations=1,
    )
    loss_names = {n for n, _d, _l in rep.scaling_loss}
    assert loss_names & {"mpi_waitall_", "mpi_allreduce_", "nudt", "loop_1"}
    assert rep.root_causes

"""PAG-core performance: columnar storage vs per-element dict baseline.

The columnar refactor's acceptance numbers, measured on the largest
modelled application (LAMMPS, 85k top-down vertices) with its parallel
view built at a scaled-down rank count (16 flows ≈ 1.36M instance
vertices):

* parallel-view construction and the hotspot→imbalance pipeline must
  finish inside generous wall-time budgets (they run in well under a
  second; budgets are ~10× to absorb CI noise),
* per-vertex memory must beat a per-element ``dict`` representation of
  the same data by ≥3×,
* bulk column reads/sorts must beat the equivalent per-element handle
  loops by ≥2×.

Each test prints one JSON line (run with ``-s`` to capture) so the
numbers can be tracked across commits by the CI perf-smoke job.
"""

from __future__ import annotations

import json
import sys
import time

import pytest

import repro.dataflow  # noqa: F401 - resolves the passes/dataflow import cycle
from repro.apps import lammps, registry
from repro.passes.hotspot import hotspot_detection
from repro.passes.imbalance import imbalance_analysis
from repro.pag.views import build_parallel_view, build_top_down_view
from repro.runtime.executor import run_program

#: Wall-time budgets (seconds): ~10x the measured times on a laptop-class
#: core, so a slow CI runner does not flake while a 10x regression fails.
BUDGET_PARALLEL_VIEW = 10.0
BUDGET_TD_PIPELINE = 1.0
BUDGET_PV_HOTSPOT = 2.0

SCALED_RANKS = 16  #: flows materialized in the parallel view


def _emit(name: str, **numbers) -> None:
    print(json.dumps({"benchmark": name, **numbers}), file=sys.stderr)


@pytest.fixture(scope="module")
def lammps_pag():
    prog = registry("C")["lammps"]()
    run = run_program(prog, nprocs=64, machine=lammps.MACHINE)
    td, static_result = build_top_down_view(prog, run)
    return prog, run, td, static_result


def test_parallel_view_construction_budget(lammps_pag):
    _prog, run, td, static_result = lammps_pag
    t0 = time.perf_counter()
    pv = build_parallel_view(td, static_result, run, max_ranks=SCALED_RANKS)
    elapsed = time.perf_counter() - t0
    assert pv.num_vertices == td.num_vertices * SCALED_RANKS
    _emit(
        "parallel_view_construction",
        vertices=pv.num_vertices,
        edges=pv.num_edges,
        seconds=round(elapsed, 4),
        budget=BUDGET_PARALLEL_VIEW,
    )
    assert elapsed < BUDGET_PARALLEL_VIEW


def test_hotspot_imbalance_pipeline_budget(lammps_pag):
    _prog, run, td, static_result = lammps_pag
    t0 = time.perf_counter()
    hot = hotspot_detection(td.V, n=20)
    imb = imbalance_analysis(hot)
    td_elapsed = time.perf_counter() - t0
    assert len(hot) == 20 and len(imb) >= 1

    pv = build_parallel_view(td, static_result, run, max_ranks=SCALED_RANKS)
    t1 = time.perf_counter()
    hot_pv = hotspot_detection(pv.V, n=50)
    pv_elapsed = time.perf_counter() - t1
    assert len(hot_pv) == 50
    _emit(
        "hotspot_imbalance_pipeline",
        td_seconds=round(td_elapsed, 4),
        pv_vertices=pv.num_vertices,
        pv_hotspot_seconds=round(pv_elapsed, 4),
    )
    assert td_elapsed < BUDGET_TD_PIPELINE
    assert pv_elapsed < BUDGET_PV_HOTSPOT


def test_memory_vs_dict_baseline(lammps_pag):
    """Columnar per-vertex footprint beats per-element dicts >= 3x."""
    _prog, run, td, static_result = lammps_pag
    pv = build_parallel_view(td, static_result, run, max_ranks=SCALED_RANKS)
    stats = pv.memory_stats()
    total_bytes = (
        sum(stats["structural"].values())
        + stats["strings"]
        + sum(stats["vertex_columns"].values())
        + sum(stats["edge_columns"].values())
    )
    # vertex-side storage only — the baseline below also counts only
    # vertices, so edge arrays/columns are excluded from both sides
    columnar_bytes = (
        stats["structural"]["v_label"]
        + stats["structural"]["v_kind"]
        + stats["structural"]["v_name"]
        + stats["strings"]
        + sum(stats["vertex_columns"].values())
    )
    per_vertex_columnar = columnar_bytes / pv.num_vertices

    # Baseline: the pre-columnar layout — one slotted element object per
    # vertex (id/label/name/call_kind/properties/_pag), a per-element
    # properties dict, and the graph's list pointer to the object —
    # measured on a real sample.  Interned key strings and shared name
    # strings are generously NOT charged.
    class DictVertex:  # mirrors the old Vertex's storage exactly
        __slots__ = ("id", "label", "name", "call_kind", "properties", "_pag")

        def __init__(self, vid, label, name, call_kind, properties):
            self.id = vid
            self.label = label
            self.name = name
            self.call_kind = call_kind
            self.properties = properties
            self._pag = None

    sample = pv.vs[:50_000]
    objs = [
        DictVertex(v.id, v.label, v.name, v.call_kind, dict(v.properties))
        for v in sample
    ]
    baseline = 0
    for o in objs:
        baseline += sys.getsizeof(o) + 8  # the object + the list slot
        baseline += sys.getsizeof(o.properties)
        for val in o.properties.values():
            if isinstance(val, (int, float)):
                baseline += sys.getsizeof(val)
    per_vertex_baseline = baseline / len(objs)
    ratio = per_vertex_baseline / per_vertex_columnar
    _emit(
        "memory_per_vertex",
        columnar_bytes=round(per_vertex_columnar, 1),
        dict_baseline_bytes=round(per_vertex_baseline, 1),
        ratio=round(ratio, 2),
        whole_graph_bytes=total_bytes,
    )
    assert ratio >= 3.0, (
        f"columnar layout saves only {ratio:.2f}x over per-element dicts "
        f"({per_vertex_columnar:.0f} vs {per_vertex_baseline:.0f} B/vertex)"
    )


def test_bulk_reads_beat_per_element_loops(lammps_pag):
    """values()/sort_by() beat the equivalent per-handle loops >= 2x."""
    _prog, run, td, static_result = lammps_pag
    pv = build_parallel_view(td, static_result, run, max_ranks=SCALED_RANKS)
    V = pv.vs[:300_000]

    def best_of(fn, repeat=3):
        times = []
        for _ in range(repeat):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    bulk_values = best_of(lambda: V.values("time"))
    loop_values = best_of(lambda: [v["time"] for v in V])
    bulk_sort = best_of(lambda: V.sort_by("time"))
    loop_sort = best_of(
        lambda: sorted(
            V,
            key=lambda v: v["time"] if isinstance(v["time"], (int, float)) else 0.0,
            reverse=True,
        )
    )
    values_speedup = loop_values / bulk_values
    sort_speedup = loop_sort / bulk_sort
    _emit(
        "bulk_vs_per_element",
        n=len(V),
        bulk_values_s=round(bulk_values, 4),
        loop_values_s=round(loop_values, 4),
        values_speedup=round(values_speedup, 1),
        bulk_sort_s=round(bulk_sort, 4),
        loop_sort_s=round(loop_sort, 4),
        sort_speedup=round(sort_speedup, 1),
    )
    assert values_speedup >= 2.0
    assert sort_speedup >= 2.0

"""Table 1 — The overhead of PerFlow.

Regenerates the three rows (static seconds, dynamic %, space bytes) for
all 11 evaluated programs at 128 ranks and checks the paper's shape:
static cost tracks binary size (LAMMPS worst, ~5 s), dynamic overhead
tracks communication density (CG highest at ~3.7%, EP/IS/Vite at the
sampling floor, 1.11% average), and space stays in the KB-MB range
(LAMMPS largest).
"""

import pytest

from repro.ir.static_analysis import analyze, static_analysis_cost
from repro.pag.serialize import storage_size
from repro.pag.views import build_top_down_view
from repro.runtime.sampler import dynamic_overhead_percent

from benchmarks.conftest import print_table

#: Paper Table 1 (programs in column order).
PAPER = {
    "bt": (0.20, 0.44, 346_000),
    "cg": (0.06, 3.73, 57_000),
    "ep": (0.03, 0.13, 35_000),
    "ft": (0.09, 1.83, 215_000),
    "mg": (0.12, 0.92, 464_000),
    "sp": (0.19, 1.08, 449_000),
    "lu": (0.23, 1.42, 184_000),
    "is": (0.04, 0.03, 28_000),
    "zeusmp": (1.50, 1.56, 2_400_000),
    "lammps": (5.34, 0.71, 22_000_000),
    "vite": (0.73, 0.03, 1_600_000),
}


def _build_table1(all_programs, runs_128):
    rows = {}
    for name, prog in all_programs.items():
        run = runs_128[name]
        td, _sr = build_top_down_view(prog, run)
        rows[name] = {
            "static_modeled": static_analysis_cost(prog),
            "dynamic_pct": dynamic_overhead_percent(run),
            "space_bytes": storage_size(td),
        }
    return rows


def test_table1_rows(benchmark, all_programs, runs_128):
    table1 = benchmark.pedantic(
        _build_table1, args=(all_programs, runs_128), rounds=1, iterations=1
    )
    out = []
    for name, paper in PAPER.items():
        m = table1[name]
        out.append(
            [
                name,
                f"{paper[0]:.2f}",
                f"{m['static_modeled']:.2f}",
                f"{paper[1]:.2f}",
                f"{m['dynamic_pct']:.2f}",
                f"{paper[2]/1000:.0f}K",
                f"{m['space_bytes']/1000:.0f}K",
            ]
        )
    print_table(
        "Table 1: PerFlow overhead (paper vs measured)",
        ["program", "static(P)", "static(M)", "dyn%(P)", "dyn%(M)", "space(P)", "space(M)"],
        out,
    )
    # --- shape assertions ---
    # static: within 2x of the paper everywhere; LAMMPS is the worst case
    for name, paper in PAPER.items():
        assert table1[name]["static_modeled"] == pytest.approx(paper[0], rel=1.0), name
    assert max(table1, key=lambda n: table1[n]["static_modeled"]) == "lammps"
    # dynamic: CG highest among NPB; EP/IS/Vite at the floor; all under 5%
    npb = ["bt", "cg", "ep", "ft", "mg", "sp", "lu", "is"]
    assert max(npb, key=lambda n: table1[n]["dynamic_pct"]) == "cg"
    for name in ("is", "vite"):
        assert table1[name]["dynamic_pct"] < 0.15
    for name, paper in PAPER.items():
        assert table1[name]["dynamic_pct"] == pytest.approx(paper[1], rel=0.6, abs=0.1), name
    # average close to the paper's 1.11%
    avg = sum(r["dynamic_pct"] for r in table1.values()) / len(table1)
    assert 0.5 < avg < 2.0
    # space: right order of magnitude per program, LAMMPS the largest
    for name, paper in PAPER.items():
        ratio = table1[name]["space_bytes"] / paper[2]
        assert 0.2 < ratio < 5.0, (name, ratio)
    assert max(table1, key=lambda n: table1[n]["space_bytes"]) == "lammps"


def test_bench_static_analysis(benchmark, all_programs):
    """Timed: static structure extraction for the largest binary (LAMMPS)."""
    prog = all_programs["lammps"]
    res = benchmark(analyze, prog)
    assert res.pag.num_vertices == 85_230


def test_bench_storage_serialization(benchmark, all_programs, runs_128):
    """Timed: PAG serialization (the space-cost measurement itself)."""
    td, _ = build_top_down_view(all_programs["zeusmp"], runs_128["zeusmp"])
    nbytes = benchmark(storage_size, td)
    assert nbytes > 100_000

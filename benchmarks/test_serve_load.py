"""Serving-tier load benchmark: cold vs warm vs collapsed latency.

The acceptance benchmark for ``repro serve``: 8 concurrent clients
drive an in-process :class:`~repro.serve.client.ServerThread` through
three phases against a pipeline carrying a simulated ~80 ms analysis
cost:

* **cold** — 8 distinct requests: every one executes the pipeline.
* **warm** — the same 8 requests again: every one answers from the
  shared content-addressed cache, and p50 must come in **≥ 5× lower**
  than cold p50.
* **collapsed** — 8 *identical* concurrent requests on a fresh key:
  single-flight collapses them onto **exactly one** execution; the
  other seven reuse the leader's result.

Each phase prints one JSON line (run with ``-s`` to capture) so req/s
and p50/p99 can be tracked across commits by the CI perf-smoke job.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List

import pytest

from repro.dataflow.api import PerFlow
from repro.dataflow.graph import PerFlowGraph
from repro.obs import metrics as obs_metrics
from repro.pag.formats import pag_to_dict
from repro.pag.sets import VertexSet
from repro.serve import PipelineSpec, register_pipeline, unregister_pipeline
from repro.serve.client import ServerThread, analyze
from repro.serve.server import ServerConfig
from tests.conftest import make_ring_program

PASS_LATENCY = 0.08  # seconds of simulated analysis cost per request
MIN_WARM_SPEEDUP = 5.0  # warm p50 must be >= 5x lower than cold p50
CLIENTS = 8

EXECUTIONS: List[int] = []  # salts actually executed (thread backend: in-process)


def _emit(name: str, **numbers) -> None:
    print(json.dumps({"benchmark": name, **numbers}), file=sys.stderr)


# Module-level pass body (stable identity); the per-request ``salt``
# reaches it through a lambda closure, so distinct salts are distinct
# cache keys and repeated salts are cache hits.
def _slow_rows(V: VertexSet, salt: int) -> List[Dict[str, Any]]:
    EXECUTIONS.append(salt)
    time.sleep(PASS_LATENCY)
    return [{"salt": salt, "vertices": len(V)}]


def _build_bench(params: Dict[str, Any]) -> PerFlowGraph:
    salt = int(params["salt"])
    g = PerFlowGraph("serve-load-bench")
    V = g.input("V", VertexSet)
    g.add_pass(
        lambda s: _slow_rows(s, salt),
        V,
        name="result",
        signature=((VertexSet,), ("any",)),
    )
    return g


@pytest.fixture(scope="module")
def bench_server(tmp_path_factory):
    register_pipeline(
        PipelineSpec(
            name="bench_slow",
            description="slow pass for the load benchmark",
            build=_build_bench,
            defaults={"salt": 0},
        )
    )
    cache_dir = tmp_path_factory.mktemp("serve-load-cache")
    # thread backend pinned: EXECUTIONS is module state the forked
    # process backend could not report back
    config = ServerConfig(
        port=0,
        backend="thread",
        max_concurrent=CLIENTS,
        max_queue=CLIENTS * 4,
        cache_dir=str(cache_dir),
        ledger=False,
    )
    try:
        with ServerThread(config) as st:
            yield st
    finally:
        unregister_pipeline("bench_slow")


@pytest.fixture(scope="module")
def pag_doc():
    pag = PerFlow().run(bin=make_ring_program(), nprocs=4)
    return pag_to_dict(pag, include_per_rank=True)


def _fire(st, pag_doc, salts) -> List[float]:
    """Issue one request per salt concurrently; returns per-request wall."""

    def one(salt: int) -> float:
        t0 = time.perf_counter()
        status, events = analyze(
            st.host,
            st.port,
            {"pipeline": "bench_slow", "params": {"salt": salt}, "pag": pag_doc},
        )
        wall = time.perf_counter() - t0
        assert status == 200, events
        assert events[-1]["event"] == "result", events[-1]
        assert events[-1]["result"][0]["salt"] == salt
        return wall

    with ThreadPoolExecutor(max_workers=len(salts)) as pool:
        return list(pool.map(one, salts))


def _stats(walls: List[float]) -> Dict[str, float]:
    ordered = sorted(walls)
    return {
        "p50_ms": round(statistics.median(ordered) * 1e3, 1),
        "p99_ms": round(ordered[max(0, int(len(ordered) * 0.99) - 1)] * 1e3, 1),
        "req_s": round(len(ordered) / sum(ordered) * len(ordered), 1),
    }


def test_serve_load_cold_warm_collapsed(bench_server, pag_doc):
    st = bench_server
    collapsed0 = obs_metrics.counter("serve.collapsed").value

    # cold: 8 distinct requests, every one executes
    cold_salts = list(range(1, CLIENTS + 1))
    cold = _fire(st, pag_doc, cold_salts)
    assert sorted(EXECUTIONS) == cold_salts

    # warm: the same 8 requests answer from the shared cache
    warm = _fire(st, pag_doc, cold_salts)
    assert sorted(EXECUTIONS) == cold_salts, "warm phase must not re-execute"

    # collapsed: 8 identical concurrent requests, exactly one execution
    collapse_salt = 777
    collapsed = _fire(st, pag_doc, [collapse_salt] * CLIENTS)
    assert EXECUTIONS.count(collapse_salt) == 1, (
        f"single-flight must collapse to one execution, saw "
        f"{EXECUTIONS.count(collapse_salt)}"
    )
    n_collapsed = obs_metrics.counter("serve.collapsed").value - collapsed0
    assert n_collapsed == CLIENTS - 1

    cold_stats, warm_stats, coll_stats = _stats(cold), _stats(warm), _stats(collapsed)
    _emit("serve_load_cold", clients=CLIENTS, pass_latency_s=PASS_LATENCY, **cold_stats)
    _emit("serve_load_warm", clients=CLIENTS, **warm_stats)
    _emit(
        "serve_load_collapsed",
        clients=CLIENTS,
        executions=EXECUTIONS.count(collapse_salt),
        collapsed=n_collapsed,
        **coll_stats,
    )

    speedup = cold_stats["p50_ms"] / warm_stats["p50_ms"]
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm p50 {warm_stats['p50_ms']} ms only {speedup:.1f}x below cold "
        f"p50 {cold_stats['p50_ms']} ms (floor {MIN_WARM_SPEEDUP}x)"
    )
    # Collapsed followers wait on the leader, not the worker pool: the
    # whole identical batch lands in about one execution's latency.
    assert coll_stats["p99_ms"] / 1e3 < PASS_LATENCY * 4

"""Warm-vs-cold acceptance benchmark for the incremental linter.

The contract of ``repro lint --incremental`` (see
:mod:`repro.lint.incremental`): on a warm run over an unchanged
program — including a *rebuilt* instance of the same model, so node
``uid``\\ s differ — the per-function cache must answer **≥ 90%** of the
function-scope rule work, the whole-program entry must hit, and the
resulting report must be byte-identical to both the cold incremental
run and a plain full ``lint_program``.

ZeusMP is the subject: at ~1,200 functions it is the largest modelled
program, so per-function reuse is where the time actually is.  Each
test prints one JSON line (run with ``-s`` to capture) so the CI
perf-smoke job can track the timings across commits.
"""

from __future__ import annotations

import json
import sys
import time

from repro.apps import zeusmp
from repro.lint import lint_program
from repro.lint.incremental import lint_program_incremental
from repro.obs import metrics as obs_metrics

MIN_HIT_RATIO = 0.90


def _emit(name: str, **numbers) -> None:
    print(json.dumps({"benchmark": name, **numbers}), file=sys.stderr)


def test_warm_incremental_lint_reuses_function_results(tmp_path):
    cache_dir = str(tmp_path / "lintcache")
    prog = zeusmp.build()

    obs_metrics.registry.reset()
    t0 = time.perf_counter()
    cold_report, cold = lint_program_incremental(prog, cache_dir=cache_dir)
    cold_s = time.perf_counter() - t0
    assert cold.function_hits == 0
    assert cold.function_misses > 0
    hit_counter = obs_metrics.registry.counter("lint.cache.functions.hit")
    miss_counter = obs_metrics.registry.counter("lint.cache.functions.miss")
    assert (hit_counter.value, miss_counter.value) == (0, cold.function_misses)

    # Rebuild the model from scratch: same content, different object
    # graph and uids — exactly the "nothing changed" PR scenario.
    t0 = time.perf_counter()
    warm_report, warm = lint_program_incremental(
        zeusmp.build(), cache_dir=cache_dir
    )
    warm_s = time.perf_counter() - t0

    ratio = warm.hit_ratio
    assert ratio >= MIN_HIT_RATIO, f"warm hit ratio {ratio:.2%}"
    assert warm.program_hit, "whole-program entry missed on a warm run"
    assert warm.function_misses == 0

    # Byte-identical reports: cached vs fresh vs the plain full linter.
    full = lint_program(prog)
    assert warm_report.to_json() == cold_report.to_json() == full.to_json()
    assert warm_report.to_text() == full.to_text()

    _emit(
        "lint_incremental_zeusmp",
        functions=warm.functions,
        warm_hit_ratio=round(ratio, 4),
        cold_s=round(cold_s, 4),
        warm_s=round(warm_s, 4),
        speedup=round(cold_s / warm_s, 2) if warm_s else float("inf"),
    )


def test_changed_function_is_the_only_function_miss(tmp_path):
    cache_dir = str(tmp_path / "lintcache")
    prog = zeusmp.build()
    _, cold = lint_program_incremental(prog, cache_dir=cache_dir)

    changed = zeusmp.build()
    fname = sorted(changed.functions)[0]
    changed.function(fname).body[0].line += 1000  # content edit

    report, warm = lint_program_incremental(changed, cache_dir=cache_dir)
    assert warm.function_misses == 1
    assert warm.function_hits == cold.function_misses - 1
    assert not warm.program_hit  # program key folds in every function fp
    assert report.to_json() == lint_program(changed).to_json()
    _emit(
        "lint_incremental_single_edit",
        misses=warm.function_misses,
        hits=warm.function_hits,
    )

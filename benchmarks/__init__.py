"""Reproduction benchmarks: one module per paper table/figure."""
